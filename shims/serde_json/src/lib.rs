//! Workspace-local JSON serialization over the serde shim's `Content`
//! tree.
//!
//! Floats are written with Rust's shortest-roundtrip `Display`, so
//! `from_str(to_string(x)) == x` holds bit-for-bit for finite values —
//! the property the workspace's serde contract tests and the shard
//! byte-identity checks rely on. Non-finite floats serialize as `null`
//! (matching upstream serde_json).

use serde::{de::DeserializeOwned, Content, Serialize};

pub use serde::Error;

/// `Result` alias matching upstream's `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Re-export of the data model under upstream's `Value` name.
pub type Value = Content;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_content())
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_content(&content)
}

pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_content(&value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => write_f64(*x, out),
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display is shortest-roundtrip; integral values print
    // without a fraction ("3"), which parses back as an integer content
    // — the numeric Deserialize impls accept that cross-type.
    out.push_str(&format!("{x}"));
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(pairs)),
                _ => {
                    return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos)))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => {
                    let esc = self.bump().ok_or_else(|| Error::new("unterminated escape"))?;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[test]
    fn float_bits_roundtrip() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-10, 98.60000000000001] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\ ünïcode 🎉 \u{01}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn nested_collections_roundtrip() {
        let v: Vec<Option<Vec<u32>>> = vec![Some(vec![1, 2]), None, Some(vec![])];
        let back: Vec<Option<Vec<u32>>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, String)> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("3 x").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }

    #[test]
    fn integral_float_roundtrips_via_integer_token() {
        let x = 3.0f64;
        let s = to_string(&x).unwrap();
        assert_eq!(s, "3");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 3.0);
    }

    #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
    struct Demo {
        id: u64,
        label: String,
        scale: f64,
        tags: Vec<String>,
        note: Option<String>,
    }

    #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
    enum Kind {
        Plain,
        Weighted(f64),
        Pair(u32, u32),
        Tagged { name: String, level: i32 },
    }

    #[test]
    fn derived_struct_roundtrips() {
        let d = Demo {
            id: 7,
            label: "pump".into(),
            scale: 0.125,
            tags: vec!["a".into(), "b".into()],
            note: None,
        };
        let back: Demo = from_str(&to_string(&d).unwrap()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn derived_enum_roundtrips() {
        for k in [
            Kind::Plain,
            Kind::Weighted(2.5),
            Kind::Pair(3, 4),
            Kind::Tagged { name: "x".into(), level: -2 },
        ] {
            let s = to_string(&k).unwrap();
            let back: Kind = from_str(&s).unwrap();
            assert_eq!(k, back, "{s}");
        }
    }
}
