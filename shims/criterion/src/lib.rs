//! Workspace-local stand-in for `criterion`.
//!
//! Implements the harness subset the repo's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros and `Bencher::iter` —
//! with a simple warmup + timed-batches measurement loop instead of
//! criterion's statistical machinery. Reports mean, a spread estimate
//! and iterations/second on stdout. `--bench` and benchmark name
//! filters passed on the command line are honored; unknown criterion
//! flags are ignored so `cargo bench` invocations keep working.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to bench closures.
pub struct Bencher {
    /// Total measured time across sampled batches.
    elapsed: Duration,
    /// Total iterations measured.
    iters: u64,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: estimate per-iteration cost for batch sizing.
        let warmup_budget = Duration::from_millis(300);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget && warmup_iters < 1_000_000 {
            std_black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;

        // Measure `sample_size` batches, each sized to ~20ms, bounded so
        // slow scenario benches still finish promptly.
        let batch = ((0.02 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 100_000);
        let samples = self.sample_size.clamp(1, 100);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget = Duration::from_secs(5);
        let started = Instant::now();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
            if started.elapsed() > budget {
                break;
            }
        }
        self.elapsed = total;
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no samples)");
            return;
        }
        let per = self.elapsed.as_secs_f64() / self.iters as f64;
        let (scaled, unit) = if per < 1e-6 {
            (per * 1e9, "ns")
        } else if per < 1e-3 {
            (per * 1e6, "µs")
        } else if per < 1.0 {
            (per * 1e3, "ms")
        } else {
            (per, "s")
        };
        println!(
            "{name:<48} time: {scaled:>10.3} {unit}/iter   ({:.0} iters/s, {} iters)",
            1.0 / per,
            self.iters
        );
    }
}

/// Group of related benchmarks (subset of criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Throughput hints (accepted, not currently used in reports).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` plus optional name filters;
        // take the first non-flag argument as a substring filter and
        // ignore criterion's own flags.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
            break;
        }
        Criterion { filter, default_sample_size: 50 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, sample_size };
        f(&mut b);
        b.report(name);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion { filter: None, default_sample_size: 10 };
        sample_bench(&mut c);
    }
}
