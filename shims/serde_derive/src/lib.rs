//! Derive macros for the workspace-local `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline). The parser extracts only what code generation
//! needs — type name, struct shape, field names / arities, enum
//! variants — and the generated impls target the shim's `Content` tree.
//!
//! Supported shapes (everything the workspace derives): unit / tuple /
//! named structs and enums whose variants are unit, tuple or struct.
//! Not supported (panics with a clear message): generic parameters and
//! `#[serde(...)]` attributes, neither of which the workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Shape {
    Struct(Body),
    Enum(Vec<(String, Body)>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]`, including doc comments) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if let TokenTree::Group(inner) = &tokens[i + 1] {
                    let txt = inner.stream().to_string();
                    if txt.starts_with("serde") {
                        panic!("serde shim derive: #[serde(...)] attributes are not supported");
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advances past a type (or any token run) to the next comma at
/// angle-bracket depth zero. Parens/brackets/braces arrive as single
/// `Group` tokens, so only `<`/`>` depth needs tracking.
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses `{ field: Type, ... }` field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        }
        i += 1; // field name
        i += 1; // ':'
        i = skip_to_comma(&tokens, i);
        i += 1; // ','
    }
    fields
}

/// Counts `( Type, ... )` tuple fields.
fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        i = skip_to_comma(&tokens, i);
        i += 1;
    }
    arity
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<(String, Body)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(parse_tuple_arity(g))
            }
            _ => Body::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separator.
        i = skip_to_comma(&tokens, i);
        i += 1;
        variants.push((name, body));
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Body::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Body::Tuple(parse_tuple_arity(g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Body::Unit),
            other => panic!("serde shim derive: unsupported struct body `{other:?}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g))
            }
            other => panic!("serde shim derive: unsupported enum body `{other:?}`"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Body::Unit) => "::serde::Content::Null".to_string(),
        Shape::Struct(Body::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Struct(Body::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Struct(Body::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, body)| match body {
                    Body::Unit => format!(
                        "{name}::{v} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    ),
                    Body::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_content(f0))]),"
                    ),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Content::Seq(::std::vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        )
                    }
                    Body::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Content::Map(::std::vec![{items}]))]),",
                            items = items.join(", "),
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_content(&self) -> ::serde::Content {{ {body} }} }}"
    )
}

fn gen_named_ctor(path: &str, fields: &[String], map_expr: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(::serde::field({map_expr}, \"{f}\")?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", items.join(", "))
}

fn gen_seq_ctor(path: &str, n: usize, seq_expr: &str) -> String {
    let items: Vec<String> =
        (0..n).map(|i| format!("::serde::Deserialize::from_content(&{seq_expr}[{i}])?")).collect();
    format!("{path}({})", items.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Body::Unit) => format!(
            "match c {{ ::serde::Content::Null => ::std::result::Result::Ok({name}), \
             other => ::std::result::Result::Err(::serde::Error::expected(\"unit struct {name}\", other)) }}"
        ),
        Shape::Struct(Body::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"
        ),
        Shape::Struct(Body::Tuple(n)) => format!(
            "{{ let seq = c.as_seq().ok_or_else(|| \
             ::serde::Error::expected(\"tuple struct {name}\", c))?; \
             if seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::new(\
             \"wrong tuple length for {name}\")); }} \
             ::std::result::Result::Ok({ctor}) }}",
            ctor = gen_seq_ctor(name, *n, "seq"),
        ),
        Shape::Struct(Body::Named(fields)) => format!(
            "{{ let m = c.as_map().ok_or_else(|| \
             ::serde::Error::expected(\"struct {name}\", c))?; \
             ::std::result::Result::Ok({ctor}) }}",
            ctor = gen_named_ctor(name, fields, "m"),
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, b)| matches!(b, Body::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, body)| match body {
                    Body::Unit => None,
                    Body::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(v_content)?)),"
                    )),
                    Body::Tuple(n) => Some(format!(
                        "\"{v}\" => {{ let seq = v_content.as_seq().ok_or_else(|| \
                         ::serde::Error::expected(\"tuple variant {name}::{v}\", v_content))?; \
                         if seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::new(\"wrong tuple length for {name}::{v}\")); }} \
                         ::std::result::Result::Ok({ctor}) }},",
                        ctor = gen_seq_ctor(&format!("{name}::{v}"), *n, "seq"),
                    )),
                    Body::Named(fields) => Some(format!(
                        "\"{v}\" => {{ let vm = v_content.as_map().ok_or_else(|| \
                         ::serde::Error::expected(\"struct variant {name}::{v}\", v_content))?; \
                         ::std::result::Result::Ok({ctor}) }},",
                        ctor = gen_named_ctor(&format!("{name}::{v}"), fields, "vm"),
                    )),
                })
                .collect();
            format!(
                "match c {{ \
                 ::serde::Content::Str(s) => match s.as_str() {{ \
                   {unit_arms} \
                   other => ::std::result::Result::Err(::serde::Error::new(\
                   ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                 }}, \
                 ::serde::Content::Map(m) if m.len() == 1 => {{ \
                   let (k, v_content) = &m[0]; \
                   match k.as_str() {{ \
                     {payload_arms} \
                     other => ::std::result::Result::Err(::serde::Error::new(\
                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                   }} \
                 }}, \
                 other => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"enum {name}\", other)), \
                 }}",
                unit_arms = unit_arms.join(" "),
                payload_arms = payload_arms.join(" "),
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde shim derive: generated invalid Deserialize impl")
}
