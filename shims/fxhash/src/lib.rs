//! Workspace-local stand-in for `fxhash` / `rustc-hash`.
//!
//! The Fx hash is the non-cryptographic multiply-rotate hash used by
//! rustc and Firefox: a few cycles per word, no per-hasher allocation,
//! and excellent distribution on the small dense keys (state ids,
//! packed word vectors) the model checker feeds it. The workspace uses
//! it where SipHash's DoS resistance buys nothing — hot visited-set
//! lookups keyed by data the process generated itself.
//!
//! The build environment has no registry access, so this crate
//! implements the API subset the workspace needs: [`FxHasher`],
//! [`FxBuildHasher`], and the [`FxHashMap`]/[`FxHashSet`] aliases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplier (a random odd constant with good bit mix).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Builds [`FxHasher`]s (zero-sized, no random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Fx streaming hasher: `hash = (hash rotl 5 ^ word) * SEED` per
/// machine word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Hashes one `u64` slice without constructing a hasher at the call
/// site — the form the checker's interned visited set uses.
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.add_to_hash(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"packed state");
        b.write(b"packed state");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn word_hash_matches_streaming_u64s() {
        let words = [3u64, 1 << 40, u64::MAX];
        let mut h = FxHasher::default();
        for &w in &words {
            h.write_u64(w);
        }
        assert_eq!(hash_words(&words), h.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_words(&[0, 1]), hash_words(&[1, 0]));
        assert_ne!(hash_words(&[1]), hash_words(&[1, 0]));
        assert_ne!(hash_words(&[42]), hash_words(&[43]));
        // Known Fx property, relied on nowhere: an all-zero prefix
        // hashes to 0 regardless of length. Tables using this hash must
        // compare keys on collision (ours do).
        assert_eq!(hash_words(&[0]), hash_words(&[0, 0]));
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn partial_tail_bytes_hash() {
        // 11 bytes: one full chunk + 3-byte remainder.
        let mut h = FxHasher::default();
        h.write(b"elevenbytes");
        let full = h.finish();
        let mut g = FxHasher::default();
        g.write(b"elevenbytez");
        assert_ne!(full, g.finish());
    }
}
