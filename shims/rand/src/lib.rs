//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: the `RngCore` / `SeedableRng` / `Rng` traits, uniform sampling
//! over primitive ranges, and `gen`/`gen_bool`. Determinism matters more
//! than statistical sophistication here — every generator in the
//! workspace is a seeded ChaCha8 stream (see the `rand_chacha` shim) and
//! every distribution is built from `next_u64`.

use std::ops::Range;

/// Low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64, matching the
    /// upstream crate's intent (a stable, well-mixed expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen` can produce (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the (exclusive) end.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Namespace parity with upstream `rand::rngs` (unused algorithms
    //! are intentionally absent; the workspace only uses ChaCha8).
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Lcg(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Lcg(2);
        for _ in 0..10_000 {
            let x = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let n = r.gen_range(3u64..17);
            assert!((3..17).contains(&n));
            let m = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn min_positive_range_stays_positive() {
        let mut r = Lcg(3);
        for _ in 0..10_000 {
            let x = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
        }
    }
}
