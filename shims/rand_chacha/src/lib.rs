//! Workspace-local ChaCha8 generator.
//!
//! A genuine ChaCha8 keystream (RFC 7539 block function at 8 rounds)
//! driving the `rand` shim's `RngCore`/`SeedableRng` traits. The
//! workspace depends on this stream being *stable across platforms and
//! releases* — every scenario seed, every regression fixture, and the
//! shard-determinism contract assume `seed -> byte stream` never
//! changes. Do not alter the block function or the output order.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const BLOCK_BYTES: usize = 64;
const ROUNDS: usize = 8;
/// Blocks generated per refill. Batching amortises the refill and lets
/// the vectorised kernel run independent block computations in
/// parallel; the keystream byte order is exactly the sequential block
/// order, so the stream is identical to one-block-at-a-time generation.
const BUF_BLOCKS: usize = 4;
const BUF_BYTES: usize = BLOCK_BYTES * BUF_BLOCKS;

/// ChaCha with 8 rounds, 64-bit word-oriented output.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter/nonce state fed to the block function.
    state: [u32; BLOCK_WORDS],
    /// Buffered keystream (`BUF_BLOCKS` consecutive blocks).
    buf: [u8; BUF_BYTES],
    /// Next unread byte in `buf`.
    idx: usize,
}

impl PartialEq for ChaCha8Rng {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && self.idx == other.idx && self.buf == other.buf
    }
}
impl Eq for ChaCha8Rng {}

#[cfg(any(test, not(target_arch = "x86_64")))]
#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(any(test, not(target_arch = "x86_64")))]
fn chacha_block_scalar(input: &[u32; BLOCK_WORDS]) -> [u8; BLOCK_BYTES] {
    let mut x = *input;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_BYTES];
    for (i, word) in x.iter().enumerate() {
        let sum = word.wrapping_add(input[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&sum.to_le_bytes());
    }
    out
}

/// Fills `buf` with `BUF_BLOCKS` consecutive blocks (counters
/// `c, c+1, …`), computed on SSE2 vectors — always available on
/// `x86_64`. The state's four rows are four lanes-of-four vectors; a
/// column round is one lane-wise quarter round, and the diagonal round
/// is the same after rotating rows 1–3 by 1–3 lanes. Two independent
/// blocks are interleaved per pass so their dependency chains overlap.
/// Output is bit-identical to the scalar block function — asserted by
/// the `simd_batch_matches_scalar` test.
#[cfg(target_arch = "x86_64")]
fn fill_buf(state: &[u32; BLOCK_WORDS], buf: &mut [u8; BUF_BYTES]) {
    use std::arch::x86_64::*;

    macro_rules! rotl {
        ($v:expr, $n:literal) => {
            _mm_or_si128(_mm_slli_epi32($v, $n), _mm_srli_epi32($v, 32 - $n))
        };
    }
    // One quarter-round step applied to two interleaved blocks.
    macro_rules! qr2 {
        ($a0:ident, $b0:ident, $c0:ident, $d0:ident,
         $a1:ident, $b1:ident, $c1:ident, $d1:ident) => {
            $a0 = _mm_add_epi32($a0, $b0);
            $a1 = _mm_add_epi32($a1, $b1);
            $d0 = rotl!(_mm_xor_si128($d0, $a0), 16);
            $d1 = rotl!(_mm_xor_si128($d1, $a1), 16);
            $c0 = _mm_add_epi32($c0, $d0);
            $c1 = _mm_add_epi32($c1, $d1);
            $b0 = rotl!(_mm_xor_si128($b0, $c0), 12);
            $b1 = rotl!(_mm_xor_si128($b1, $c1), 12);
            $a0 = _mm_add_epi32($a0, $b0);
            $a1 = _mm_add_epi32($a1, $b1);
            $d0 = rotl!(_mm_xor_si128($d0, $a0), 8);
            $d1 = rotl!(_mm_xor_si128($d1, $a1), 8);
            $c0 = _mm_add_epi32($c0, $d0);
            $c1 = _mm_add_epi32($c1, $d1);
            $b0 = rotl!(_mm_xor_si128($b0, $c0), 7);
            $b1 = rotl!(_mm_xor_si128($b1, $c1), 7);
        };
    }

    // SAFETY: SSE2 is part of the x86_64 baseline; loads/stores use
    // unaligned variants on properly sized buffers.
    unsafe {
        let p = state.as_ptr().cast::<__m128i>();
        let r0 = _mm_loadu_si128(p);
        let r1 = _mm_loadu_si128(p.add(1));
        let r2 = _mm_loadu_si128(p.add(2));
        // Row 3 as 64-bit lanes is [counter, nonce]: adding `k` to lane
        // 0 with `_mm_add_epi64` is exactly the scalar counter bump,
        // carry into word 13 included.
        let r3 = _mm_loadu_si128(p.add(3));
        for pair in 0..(BUF_BLOCKS / 2) as i64 {
            let e0 = _mm_add_epi64(r3, _mm_set_epi64x(0, pair * 2));
            let e1 = _mm_add_epi64(r3, _mm_set_epi64x(0, pair * 2 + 1));
            let (mut a0, mut b0, mut c0, mut d0) = (r0, r1, r2, e0);
            let (mut a1, mut b1, mut c1, mut d1) = (r0, r1, r2, e1);
            for _ in 0..ROUNDS / 2 {
                // Column round: QR(0,4,8,12) … QR(3,7,11,15), lane-wise.
                qr2!(a0, b0, c0, d0, a1, b1, c1, d1);
                // Diagonalise: lane i of rows 1/2/3 becomes lane
                // i+1/i+2/i+3, so the same lane-wise QR computes
                // QR(0,5,10,15) ….
                b0 = _mm_shuffle_epi32(b0, 0b00_11_10_01);
                b1 = _mm_shuffle_epi32(b1, 0b00_11_10_01);
                c0 = _mm_shuffle_epi32(c0, 0b01_00_11_10);
                c1 = _mm_shuffle_epi32(c1, 0b01_00_11_10);
                d0 = _mm_shuffle_epi32(d0, 0b10_01_00_11);
                d1 = _mm_shuffle_epi32(d1, 0b10_01_00_11);
                qr2!(a0, b0, c0, d0, a1, b1, c1, d1);
                // Undo the lane rotation.
                b0 = _mm_shuffle_epi32(b0, 0b10_01_00_11);
                b1 = _mm_shuffle_epi32(b1, 0b10_01_00_11);
                c0 = _mm_shuffle_epi32(c0, 0b01_00_11_10);
                c1 = _mm_shuffle_epi32(c1, 0b01_00_11_10);
                d0 = _mm_shuffle_epi32(d0, 0b00_11_10_01);
                d1 = _mm_shuffle_epi32(d1, 0b00_11_10_01);
            }
            let q = buf.as_mut_ptr().add(pair as usize * 2 * BLOCK_BYTES).cast::<__m128i>();
            _mm_storeu_si128(q, _mm_add_epi32(a0, r0));
            _mm_storeu_si128(q.add(1), _mm_add_epi32(b0, r1));
            _mm_storeu_si128(q.add(2), _mm_add_epi32(c0, r2));
            _mm_storeu_si128(q.add(3), _mm_add_epi32(d0, e0));
            _mm_storeu_si128(q.add(4), _mm_add_epi32(a1, r0));
            _mm_storeu_si128(q.add(5), _mm_add_epi32(b1, r1));
            _mm_storeu_si128(q.add(6), _mm_add_epi32(c1, r2));
            _mm_storeu_si128(q.add(7), _mm_add_epi32(d1, e1));
        }
    }
}

/// Scalar batch generation: `BUF_BLOCKS` sequential blocks.
#[cfg(not(target_arch = "x86_64"))]
fn fill_buf(state: &[u32; BLOCK_WORDS], buf: &mut [u8; BUF_BYTES]) {
    let mut s = *state;
    for k in 0..BUF_BLOCKS {
        buf[k * BLOCK_BYTES..(k + 1) * BLOCK_BYTES].copy_from_slice(&chacha_block_scalar(&s));
        let counter = u64::from(s[12]) | (u64::from(s[13]) << 32);
        let counter = counter.wrapping_add(1);
        s[12] = counter as u32;
        s[13] = (counter >> 32) as u32;
    }
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        fill_buf(&self.state, &mut self.buf);
        // 64-bit block counter in words 12..14.
        let counter = u64::from(self.state[12]) | (u64::from(self.state[13]) << 32);
        let counter = counter.wrapping_add(BUF_BLOCKS as u64);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[i * 4],
                seed[i * 4 + 1],
                seed[i * 4 + 2],
                seed[i * 4 + 3],
            ]);
        }
        // Counter and nonce start at zero.
        let mut rng = ChaCha8Rng { state, buf: [0u8; BUF_BYTES], idx: BUF_BYTES };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // Fast path: enough unread keystream in the current block.
        // Byte-identical to the fill_bytes route, just without the
        // copy loop — this is the single hottest call in QoS sampling.
        if self.idx + 4 <= BUF_BYTES {
            let v =
                u32::from_le_bytes(self.buf[self.idx..self.idx + 4].try_into().expect("4 bytes"));
            self.idx += 4;
            return v;
        }
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.idx + 8 <= BUF_BYTES {
            let v =
                u64::from_le_bytes(self.buf[self.idx..self.idx + 8].try_into().expect("8 bytes"));
            self.idx += 8;
            return v;
        }
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.idx == BUF_BYTES {
                self.refill();
            }
            let n = (dest.len() - written).min(BUF_BYTES - self.idx);
            dest[written..written + n].copy_from_slice(&self.buf[self.idx..self.idx + n]);
            self.idx += n;
            written += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..17 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        // Byte stream must be independent of read granularity.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut big = [0u8; 200];
        a.fill_bytes(&mut big);
        let mut small = [0u8; 200];
        for chunk in small.chunks_mut(7) {
            b.fill_bytes(chunk);
        }
        assert_eq!(big, small);
    }

    #[test]
    fn simd_batch_matches_scalar() {
        // The batch kernel must be bit-identical to sequential scalar
        // block generation for arbitrary states — including counter
        // values about to carry into the high word.
        let mut state = [0u32; BLOCK_WORDS];
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for trial in 0..256u64 {
            for w in state.iter_mut() {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(trial | 1);
                *w = (h >> 32) as u32;
            }
            if trial % 3 == 0 {
                state[12] = u32::MAX - (trial % 5) as u32; // force carries
            }
            let mut batch = [0u8; BUF_BYTES];
            fill_buf(&state, &mut batch);
            let mut s = state;
            for k in 0..BUF_BLOCKS {
                assert_eq!(
                    batch[k * BLOCK_BYTES..(k + 1) * BLOCK_BYTES],
                    chacha_block_scalar(&s),
                    "trial {trial}, block {k}"
                );
                let counter = u64::from(s[12]) | (u64::from(s[13]) << 32);
                let counter = counter.wrapping_add(1);
                s[12] = counter as u32;
                s[13] = (counter >> 32) as u32;
            }
        }
    }

    #[test]
    fn keystream_spans_blocks() {
        // Reading past 64 bytes must advance the counter, not repeat.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut first = [0u8; 64];
        r.fill_bytes(&mut first);
        let mut second = [0u8; 64];
        r.fill_bytes(&mut second);
        assert_ne!(first, second);
    }
}
