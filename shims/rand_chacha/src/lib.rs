//! Workspace-local ChaCha8 generator.
//!
//! A genuine ChaCha8 keystream (RFC 7539 block function at 8 rounds)
//! driving the `rand` shim's `RngCore`/`SeedableRng` traits. The
//! workspace depends on this stream being *stable across platforms and
//! releases* — every scenario seed, every regression fixture, and the
//! shard-determinism contract assume `seed -> byte stream` never
//! changes. Do not alter the block function or the output order.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const BLOCK_BYTES: usize = 64;
const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, 64-bit word-oriented output.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter/nonce state fed to the block function.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buf: [u8; BLOCK_BYTES],
    /// Next unread byte in `buf`.
    idx: usize,
}

impl PartialEq for ChaCha8Rng {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && self.idx == other.idx && self.buf == other.buf
    }
}
impl Eq for ChaCha8Rng {}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; BLOCK_WORDS]) -> [u8; BLOCK_BYTES] {
    let mut x = *input;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_BYTES];
    for (i, word) in x.iter().enumerate() {
        let sum = word.wrapping_add(input[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&sum.to_le_bytes());
    }
    out
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buf = chacha_block(&self.state);
        // 64-bit block counter in words 12..14.
        let counter = u64::from(self.state[12]) | (u64::from(self.state[13]) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[i * 4],
                seed[i * 4 + 1],
                seed[i * 4 + 2],
                seed[i * 4 + 3],
            ]);
        }
        // Counter and nonce start at zero.
        let mut rng = ChaCha8Rng { state, buf: [0u8; BLOCK_BYTES], idx: BLOCK_BYTES };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.idx == BLOCK_BYTES {
                self.refill();
            }
            let n = (dest.len() - written).min(BLOCK_BYTES - self.idx);
            dest[written..written + n].copy_from_slice(&self.buf[self.idx..self.idx + n]);
            self.idx += n;
            written += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..17 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        // Byte stream must be independent of read granularity.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut big = [0u8; 200];
        a.fill_bytes(&mut big);
        let mut small = [0u8; 200];
        for chunk in small.chunks_mut(7) {
            b.fill_bytes(chunk);
        }
        assert_eq!(big, small);
    }

    #[test]
    fn keystream_spans_blocks() {
        // Reading past 64 bytes must advance the counter, not repeat.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut first = [0u8; 64];
        r.fill_bytes(&mut first);
        let mut second = [0u8; 64];
        r.fill_bytes(&mut second);
        assert_ne!(first, second);
    }
}
