//! Workspace-local stand-in for `proptest`.
//!
//! Generates random test cases from composable [`Strategy`] values and
//! runs each test body N times (default 64, override with the
//! `PROPTEST_CASES` env var or `ProptestConfig::with_cases`). Unlike
//! upstream proptest there is **no shrinking** — a failing case panics
//! with the generating seed so it can be replayed — and generation is
//! fully deterministic: the stream is ChaCha8 seeded from the test
//! function's name, so a given test sees the same cases on every run
//! and every machine.

use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::ops::Range;

/// Per-case RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Drives the per-test case loop; constructed by the `proptest!` macro.
pub struct TestRunner {
    cases: u32,
    case: u64,
    seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name: a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { cases: config.cases, case: 0, seed: h }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn case_seed(&self) -> u64 {
        self.seed ^ self.case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    pub fn next_rng(&mut self) -> TestRng {
        let rng = TestRng::seed_from_u64(self.case_seed());
        self.case += 1;
        rng
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy (upstream `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+ $(,)?),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0,),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broadly ranged values (upstream biases similarly away
        // from NaN/inf in `any::<f64>()`'s default).
        let mag = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.gen::<u64>() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

// String patterns: a `&str` literal like "[a-z]{1,12}" is itself a
// strategy producing `String`s from the character class.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    if bytes.first() != Some(&b'[') {
        // Not a class pattern: treat as a literal.
        return pattern.to_string();
    }
    let close = pattern.find(']').expect("proptest shim: unterminated character class");
    let class = &pattern[1..close];
    let mut chars: Vec<char> = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
            for c in lo..=hi {
                chars.push(char::from_u32(c).unwrap());
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "proptest shim: empty character class");
    let rest = &pattern[close + 1..];
    let (min, max) = if let Some(rep) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        match rep.split_once(',') {
            Some((a, b)) => (
                a.parse().expect("proptest shim: bad repeat min"),
                b.parse().expect("proptest shim: bad repeat max"),
            ),
            None => {
                let n: usize = rep.parse().expect("proptest shim: bad repeat count");
                (n, n)
            }
        }
    } else if rest == "+" {
        (1usize, 16usize)
    } else if rest == "*" {
        (0usize, 16usize)
    } else if rest.is_empty() {
        (1usize, 1usize)
    } else {
        panic!("proptest shim: unsupported pattern `{pattern}`");
    };
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)` — `None` about a quarter of the
    /// time, mirroring upstream's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left, right, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// The `proptest! { ... }` block: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for _ in 0..runner.cases() {
                let case_seed = runner.case_seed();
                let mut rng = runner.next_rng();
                $(let $pat = $crate::Strategy::generate(&$strategy, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case failed (replay seed {:#x}): {}",
                        case_seed, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test_name() {
        let mut r1 = crate::TestRunner::new(ProptestConfig::with_cases(4), "x");
        let mut r2 = crate::TestRunner::new(ProptestConfig::with_cases(4), "x");
        let s = crate::collection::vec((0u64..100, any::<u32>()), 1..20);
        for _ in 0..4 {
            let a = s.generate(&mut r1.next_rng());
            let b = s.generate(&mut r2.next_rng());
            assert_eq!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn vec_lengths_respect_bounds(
            xs in crate::collection::vec(0u64..10, 3..7),
        ) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            for x in &xs {
                prop_assert!(*x < 10);
            }
        }

        fn string_pattern_class(label in "[a-z]{1,12}") {
            prop_assert!(!label.is_empty() && label.len() <= 12);
            prop_assert!(label.chars().all(|c| c.is_ascii_lowercase()), "{label}");
        }

        fn option_of_produces_both(picks in crate::collection::vec(
            crate::option::of(0u32..5), 32..33,
        )) {
            // With 32 draws at 1/4 None probability, both arms show up
            // essentially always under a deterministic stream.
            prop_assert!(picks.iter().any(Option::is_some));
        }

        fn prop_map_applies(n in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }
    }
}
