//! Workspace-local stand-in for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this shim uses a
//! concrete intermediate tree ([`Content`]): `Serialize` lowers a value
//! into a `Content`, `Deserialize` rebuilds a value from one, and
//! `serde_json` (the sibling shim) renders/parses `Content` as JSON
//! text. The workspace only relies on *roundtrip self-consistency*
//! (`from_str(to_string(x)) == x`), which this model provides for every
//! derivable type used in the repo; it makes no attempt at wire-format
//! compatibility with upstream serde_json beyond ordinary JSON.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Ordered key/value pairs (JSON object). Order is preserved so
    /// serialization is deterministic.
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String form used when this content is a map *key*.
    pub fn key_string(&self) -> Result<String, Error> {
        match self {
            Content::Str(s) => Ok(s.clone()),
            Content::Bool(b) => Ok(b.to_string()),
            Content::U64(n) => Ok(n.to_string()),
            Content::I64(n) => Ok(n.to_string()),
            Content::F64(x) => Ok(format!("{x}")),
            _ => Err(Error::new("map key must be a primitive")),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    pub fn expected(what: &str, got: &Content) -> Self {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        };
        Error(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Rebuilds a value from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

pub mod de {
    //! Namespace parity with upstream `serde::de`.
    pub use crate::Error;

    /// Upstream's `DeserializeOwned` marker; with no borrowed
    /// deserialization in the shim it is just an alias bound.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Namespace parity with upstream `serde::ser`.
    pub use crate::Error;
}

/// Fetches a required struct field from a map.
pub fn field<'c>(map: &'c [(String, Content)], name: &str) -> Result<&'c Content, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{name}`")))
}

/// Fetches an optional struct field (absent => None).
pub fn field_opt<'c>(map: &'c [(String, Content)], name: &str) -> Option<&'c Content> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            Content::Str(s) => s.parse().map_err(|_| Error::expected("bool", c)),
            _ => Err(Error::expected("bool", c)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::U64(n) => *n,
                    Content::I64(n) if *n >= 0 => *n as u64,
                    Content::F64(x) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    Content::Str(s) => {
                        return s.parse().map_err(|_| Error::expected("unsigned integer", c))
                    }
                    _ => return Err(Error::expected("unsigned integer", c)),
                };
                <$t>::try_from(v).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: i64 = match c {
                    Content::I64(n) => *n,
                    Content::U64(n) => {
                        i64::try_from(*n).map_err(|_| Error::new("integer out of range"))?
                    }
                    Content::F64(x) if x.fract() == 0.0 => *x as i64,
                    Content::Str(s) => {
                        return s.parse().map_err(|_| Error::expected("integer", c))
                    }
                    _ => return Err(Error::expected("integer", c)),
                };
                <$t>::try_from(v).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(x) => Ok(*x),
            Content::U64(n) => Ok(*n as f64),
            Content::I64(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null; accept the
            // reverse mapping so roundtrips fail softly, as upstream does.
            Content::Null => Ok(f64::NAN),
            Content::Str(s) => s.parse().map_err(|_| Error::expected("float", c)),
            _ => Err(Error::expected("float", c)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", c)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}
impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", c)),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let seq = c.as_seq().ok_or_else(|| Error::expected("sequence", c))?;
        if seq.len() != N {
            return Err(Error::new(format!("expected array of length {N}, got {}", seq.len())));
        }
        let items: Vec<T> = seq.iter().map(T::from_content).collect::<Result<_, _>>()?;
        items.try_into().map_err(|_| Error::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let seq = c.as_seq().ok_or_else(|| Error::expected("tuple", c))?;
                let expected = [$(stringify!($idx)),+].len();
                if seq.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of length {expected}, found {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content().key_string().expect("map key"), v.to_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let m = c.as_map().ok_or_else(|| Error::expected("map", c))?;
        m.iter()
            .map(|(k, v)| {
                let key = K::from_content(&Content::Str(k.clone()))?;
                Ok((key, V::from_content(v)?))
            })
            .collect()
    }
}

impl<K: Serialize + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output.
        let mut pairs: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content().key_string().expect("map key"), v.to_content()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(pairs)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let m = c.as_map().ok_or_else(|| Error::expected("map", c))?;
        m.iter()
            .map(|(k, v)| {
                let key = K::from_content(&Content::Str(k.clone()))?;
                Ok((key, V::from_content(v)?))
            })
            .collect()
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(()),
            _ => Err(Error::expected("null", c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_and_maps_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), Some(3u32));
        m.insert("b".to_string(), None);
        let c = m.to_content();
        let back: BTreeMap<String, Option<u32>> = Deserialize::from_content(&c).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn integer_keys_roundtrip_via_strings() {
        let mut m = BTreeMap::new();
        m.insert(5u64, 1.5f64);
        m.insert(9u64, -2.0);
        let c = m.to_content();
        let back: BTreeMap<u64, f64> = Deserialize::from_content(&c).unwrap();
        assert_eq!(m, back);
    }
}
