//! X-ray / ventilator synchronization: automated ICE coordination vs
//! the manual clinical workflow.
//!
//! ```sh
//! cargo run --example xray_vent_sync
//! ```

use mcps::core::scenarios::xray::{run_xray_scenario, XRayScenarioConfig};

fn main() {
    println!("Taking 20 chest x-rays of a ventilated patient.");
    println!("A sharp image needs the chest motion-free for the whole 0.8 s exposure;");
    println!("the ventilator will auto-resume after at most 20 s of pause.\n");

    let automated = run_xray_scenario(&XRayScenarioConfig::automated(1));
    println!("== ICE-coordinated (automated) ==");
    println!(
        "  {} of {} exposures blur-free ({:.0}%), {} pause-budget exhaustions, mean pause {:.1}s",
        automated.blur_free,
        automated.requested,
        automated.blur_free_rate() * 100.0,
        automated.auto_resumes,
        automated.mean_pause_secs
    );

    for delay in [3.0, 6.0, 10.0] {
        let manual = run_xray_scenario(&XRayScenarioConfig::manual(1, delay));
        println!("\n== manual workflow (median {delay}s per human step) ==");
        println!(
            "  {} of {} exposures blur-free ({:.0}%), {} pause-budget exhaustions, mean pause {:.1}s",
            manual.blur_free,
            manual.requested,
            manual.blur_free_rate() * 100.0,
            manual.auto_resumes,
            manual.mean_pause_secs
        );
    }

    println!("\nEvery blurred film is a retake: another radiation dose and another breath-hold.");
}
