//! Serve mode, live: a supervisor host and a PCA bed client running
//! cooperatively over an in-memory transport, on wall-clock time.
//!
//! The same [`SupervisorCore`] that the simulator drives is hosted here
//! by [`ServeHost`] against a [`PcaBedClient`] whose pump is the real
//! device model (fail-safe watchdog and all) while its monitors are
//! scripted. The script: associate, run healthy, then let SpO₂ slide
//! below the danger threshold and watch the interlock land a stop on
//! the pump — printing the live danger→stop latency on the protocol
//! timeline.
//!
//! Run with: `cargo run --example serve_live`

use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::{PcaSafetyApp, SupervisorCore};
use mcps_patient::vitals::VitalKind;
use mcps_serve::client::{PcaBedClient, SUP_EP};
use mcps_serve::host::{ServeConfig, ServeHost};
use mcps_serve::transport::ChannelTransport;
use mcps_sim::time::SimDuration;
use std::time::{Duration, Instant};

/// 60 protocol seconds play out in about a wall second.
const SPEED: f64 = 60.0;

fn main() {
    let config = InterlockConfig {
        strategy: InterlockStrategy::Command,
        detector: DetectorKind::Threshold,
        resume_holdoff: SimDuration::from_secs(10),
        ..InterlockConfig::default()
    };
    let core = SupervisorCore::new(PcaSafetyApp::new(config), SUP_EP, SimDuration::from_secs(2));
    let (server_t, client_t) = ChannelTransport::pair();
    let mut host = ServeHost::new(
        core,
        server_t,
        ServeConfig {
            speed: SPEED,
            ingress_capacity: 128,
            trace: false,
            seed: 9,
            ..Default::default()
        },
    );
    let mut client = PcaBedClient::new(client_t, SPEED);

    println!("serve_live: supervisor and bed on one clock, {SPEED}x wall speed\n");
    client.announce_monitors();

    // Both sides share the thread: the bed holds Rc patient state and
    // is deliberately not Send, so serve mode's in-process form is a
    // cooperative loop — host round, client round, repeat.
    let run = |client: &mut PcaBedClient<ChannelTransport>,
               host: &mut ServeHost<ChannelTransport>,
               spo2: f64,
               until: &dyn Fn(&PcaBedClient<ChannelTransport>) -> bool|
     -> bool {
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(20) {
            client.send_vital(VitalKind::Spo2, spo2);
            client.send_vital(VitalKind::RespRate, 14.0);
            host.poll();
            client.step();
            if until(client) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    };

    assert!(run(&mut client, &mut host, 97.0, &|c| c.is_permitted()), "bed never associated");
    println!(
        "[{:6.1}s] associated: oximeter + capnograph + pump, boluses permitted",
        client.sim_now().as_secs_f64()
    );

    client.press_button();
    client.step();
    println!("[{:6.1}s] patient presses the demand button", client.sim_now().as_secs_f64());

    // SpO₂ slides into danger (< 90).
    let danger_at = client.sim_now();
    println!("[{:6.1}s] SpO2 drops to 85 — danger threshold crossed", danger_at.as_secs_f64());
    assert!(
        run(&mut client, &mut host, 85.0, &|c| c.first_stop_at_or_after(danger_at).is_some()),
        "no stop arrived"
    );
    let stop_at = client.first_stop_at_or_after(danger_at).unwrap();
    println!(
        "[{:6.1}s] pump stopped by the interlock — danger→stop latency {:.2}s (protocol time)",
        stop_at.as_secs_f64(),
        stop_at.saturating_since(danger_at).as_secs_f64()
    );
    assert!(!client.is_permitted());

    // Recovery: SpO₂ restored, and after the resume holdoff the
    // supervisor resumes the pump.
    assert!(run(&mut client, &mut host, 97.0, &|c| c.is_permitted()), "pump never resumed");
    println!(
        "[{:6.1}s] SpO2 recovered; holdoff elapsed; pump resumed",
        client.sim_now().as_secs_f64()
    );

    let stats = host.stats();
    println!(
        "\nhost: {} frames in, {} out, {} ticks, {} vitals shed, {} trace strings built (tracing off)",
        stats.frames_in,
        stats.frames_out,
        stats.ticks_fired,
        stats.vitals_shed,
        host.outputs().traces_built()
    );
}
