//! Model-based verification of the PCA interlock before deployment:
//! check the design, catch seeded defects, and assemble the assurance
//! artefacts (hazard log + GSN case) a regulator would review.
//!
//! ```sh
//! cargo run --release --example verify_pump
//! ```

use mcps::safety::assurance::build_assurance_case;
use mcps::safety::checker::CheckOutcome;
use mcps::safety::hazard::pca_hazard_log;
use mcps::safety::models::{check_pca_variant, PcaModelVariant};
use mcps::safety::requirements::pca_requirements;

fn main() {
    println!("== 1. model-check the interlock designs ==\n");
    let mut evidence = Vec::new();
    for variant in PcaModelVariant::ALL {
        let outcome = check_pca_variant(variant, 5_000_000);
        match &outcome {
            CheckOutcome::Holds { states } => {
                println!("  HOLDS    ({states:>6} states)  {}", variant.description());
            }
            CheckOutcome::Violated { trace, states } => {
                println!(
                    "  VIOLATED ({states:>6} states)  {} — counterexample, {} time units:",
                    variant.description(),
                    trace.elapsed()
                );
                for line in trace.to_string().lines() {
                    println!("      {line}");
                }
            }
            CheckOutcome::Exhausted { budget } => {
                println!("  EXHAUSTED at {budget} states  {}", variant.description());
            }
        }
        evidence.push((variant, outcome));
    }

    println!("\n== 2. hazard log ==\n");
    let log = pca_hazard_log();
    print!("{}", log.render_table());
    println!(
        "\nreleasable: {} (no hazard left at unacceptable residual risk)",
        log.is_acceptable()
    );

    println!("\n== 3. requirements traceability ==\n");
    let matrix = pca_requirements();
    print!("{}", matrix.render_table());
    let trace_issues = matrix.check(&log);
    println!(
        "\ntraceability: {}",
        if trace_issues.is_empty() { "complete".to_owned() } else { format!("{trace_issues:?}") }
    );

    println!("\n== 4. assurance case (GSN) ==\n");
    let ac = build_assurance_case("The PCA closed-loop MCPS", &log, &matrix, &evidence);
    let issues = ac.validate();
    print!("{}", ac.render_text());
    if issues.is_empty() {
        println!("\nassurance case is structurally complete (no undeveloped goals, no cycles).");
    } else {
        println!("\nassurance case issues:");
        for i in issues {
            println!("  - {i}");
        }
    }
}
