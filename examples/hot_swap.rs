//! Bedside hot-swap: the primary pulse oximeter dies mid-therapy and a
//! backup unit takes over — the "assembled on demand" property under
//! failure.
//!
//! ```sh
//! cargo run --release --example hot_swap
//! ```

use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::device::faults::{FaultKind, FaultPlan};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::{SimDuration, SimTime};

fn main() {
    let cohort = CohortGenerator::new(5, CohortConfig::default());
    let crash_at = SimTime::from_mins(20);

    for (label, backup) in [("WITHOUT a backup oximeter", false), ("WITH a backup oximeter", true)]
    {
        let mut cfg = PcaScenarioConfig::baseline(5, cohort.params(0));
        cfg.duration = SimDuration::from_mins(60);
        cfg.backup_oximeter = backup;
        cfg.oximeter_fault = FaultPlan::none().with_fault(FaultKind::Crash, crash_at, None);
        let out = run_pca_scenario(&cfg);

        println!("== {label} ==");
        println!("  primary oximeter crashes at t=20:00");
        match out.stop_after(crash_at) {
            Some(lat) => println!("  fail-safe: pump self-stopped {lat:.0}s after the crash"),
            None => println!("  !! pump never stopped"),
        }
        let resume = out
            .permit_transitions_secs
            .iter()
            .find(|&&(t, p)| p && t > crash_at.as_secs_f64() + 1.0)
            .map(|&(t, _)| t);
        match resume {
            Some(t) => println!(
                "  hot-swap: backup associated, therapy resumed at t={:.0}:{:02.0} \
                 ({:.0}s after the crash)",
                t / 60.0,
                t % 60.0,
                t - crash_at.as_secs_f64()
            ),
            None => println!("  therapy never resumed (no replacement device)"),
        }
        println!(
            "  associations completed: {}  |  drug delivered: {:.1} mg  |  mean pain {:.1}\n",
            out.associations_completed, out.total_drug_mg, out.patient.mean_pain
        );
    }
    println!("The slot-based device manager treats devices as fungible capabilities:");
    println!("any announcing device whose profile satisfies the slot can serve it.");
}
