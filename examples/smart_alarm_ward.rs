//! A monitored post-operative ward: conventional threshold alarms vs
//! the multi-parameter fusion alarm, scored against physiological
//! ground truth.
//!
//! ```sh
//! cargo run --release --example smart_alarm_ward
//! ```

use mcps::core::scenarios::ward::{run_ward_scenario, WardConfig};
use mcps::sim::time::SimDuration;

fn main() {
    let cfg = WardConfig {
        seed: 11,
        patients: 12,
        duration: SimDuration::from_mins(6 * 60),
        ..WardConfig::default()
    };
    println!(
        "{} monitored beds, {:.0} h, artifact-rich SpO2/HR/RR/EtCO2 sensors\n",
        cfg.patients, 6.0
    );
    let out = run_ward_scenario(&cfg);

    println!("ground-truth adverse episodes on the ward: {}\n", out.episodes);
    for (name, s) in [("threshold alarms", &out.threshold), ("fusion alarm   ", &out.fusion)] {
        println!(
            "{name}:  sensitivity {:.2}   false alarms/patient-hour {:.2}   precision {:.2}",
            s.sensitivity(),
            s.false_alarm_rate_per_hour(),
            s.precision()
        );
    }
    let ratio = out.threshold.false_alarm_rate_per_hour()
        / out.fusion.false_alarm_rate_per_hour().max(1e-9);
    println!(
        "\nthe fusion alarm cut the false-alarm burden {ratio:.1}x — \
         that is the difference between\nalarms nurses answer and alarms nurses silence."
    );
}
