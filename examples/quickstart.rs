//! Quickstart: assemble an on-demand MCPS at a virtual bedside and run
//! it for 30 simulated minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::SimDuration;

fn main() {
    // 1. A reproducible virtual patient (same seed ⇒ same patient).
    let cohort = CohortGenerator::new(42, CohortConfig::default());
    let patient = cohort.params(0);
    println!(
        "patient: {:.0} kg, baseline pain {:.1}/10, risk group {:?}",
        patient.weight_kg, patient.pain_baseline, patient.risk
    );

    // 2. The paper's flagship closed loop: PCA pump + pulse oximeter +
    //    capnograph + supervisor with a fail-safe ticket interlock,
    //    wired together over a simulated clinical network.
    let mut config = PcaScenarioConfig::baseline(42, patient);
    config.duration = SimDuration::from_mins(30);

    // 3. Run it.
    let outcome = run_pca_scenario(&config);

    // 4. Inspect what happened — physiological ground truth plus
    //    system telemetry.
    println!("\nafter {:.0} simulated minutes:", outcome.patient.observed_secs / 60.0);
    println!("  app associated:        {}", outcome.associated);
    println!("  vitals received:       {}", outcome.data_received);
    println!("  permission tickets:    {}", outcome.grants_issued);
    println!("  demand presses:        {} (+{} by proxy)", outcome.presses, outcome.proxy_presses);
    println!("  bolus decisions:       {:?}", outcome.bolus_decisions);
    println!("  opioid delivered:      {:.2} mg", outcome.total_drug_mg);
    println!("  lowest true SpO2:      {:.1} %", outcome.patient.min_spo2);
    println!("  severe hypox events:   {}", outcome.patient.severe_hypox_events);
    println!("  mean pain:             {:.1}/10", outcome.patient.mean_pain);
    println!("  network delivery:      {}/{} messages", outcome.net_delivered, outcome.net_sent);
}
