//! No single point of failure: the supervisor hosting the PCA interlock
//! crashes mid-therapy. Without a standby the pump's device-local watchdog
//! drops to basal-only until supervision returns; with a redundant standby
//! the interlock fails over in seconds and therapy never pauses.
//!
//! ```sh
//! cargo run --release --example supervisor_failover
//! ```

use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::device::faults::{FaultKind, FaultPlan};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::{SimDuration, SimTime};

fn hms(secs: f64) -> String {
    format!("{:.0}:{:04.1}", (secs / 60.0).floor(), secs % 60.0)
}

fn main() {
    let cohort = CohortGenerator::new(8, CohortConfig::default());
    let crash_at = SimTime::from_mins(10);

    for (label, standby) in
        [("WITHOUT a standby supervisor", false), ("WITH a standby supervisor", true)]
    {
        let mut cfg = PcaScenarioConfig::baseline(3, cohort.params(3));
        cfg.duration = SimDuration::from_mins(30);
        cfg.proxy_rate_per_hour = 12.0;
        cfg.standby_supervisor = standby;
        cfg.supervisor_fault =
            FaultPlan::none().with_fault(FaultKind::SupervisorCrash, crash_at, None);
        let out = run_pca_scenario(&cfg);

        println!("== {label} ==");
        println!("  t={}  primary supervisor crashes (never restarts)", hms(600.0));
        for &(t, latched) in &out.failsafe_transitions_secs {
            if latched {
                println!(
                    "  t={}  pump watchdog: no supervision for 15s -> basal-only fail-safe",
                    hms(t)
                );
            } else {
                println!("  t={}  pump watchdog: supervision restored -> bolus re-enabled", hms(t));
            }
        }
        if out.failovers > 0 {
            println!(
                "  standby promoted itself: {} failover(s), commands now fenced at epoch {}",
                out.failovers, out.supervisor_epoch
            );
        } else {
            println!("  nobody took over: epoch stayed at {}", out.supervisor_epoch);
        }
        let suspended = out.bolus_decisions.get("suspended").copied().unwrap_or(0);
        let started = out.bolus_decisions.get("started").copied().unwrap_or(0);
        println!(
            "  boluses delivered: {started}  |  presses refused while unsupervised: {suspended}"
        );
        println!(
            "  fail-safe latches: {}  |  drug delivered: {:.2} mg  |  mean pain {:.1}\n",
            out.local_failsafe_entries, out.total_drug_mg, out.patient.mean_pain
        );
    }

    println!(
        "The watchdog guarantees the pump never free-runs a bolus while no supervisor\n\
         is alive to stop it; the standby pair makes that safe state a transient\n\
         instead of the rest of the infusion."
    );
}
