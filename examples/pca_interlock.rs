//! The PCA overdose story, three ways.
//!
//! One opioid-sensitive patient, an over-helpful relative pressing the
//! demand button (PCA-by-proxy), and three system designs: no
//! supervision, a command interlock, and the fail-safe ticket
//! interlock. Prints the physiological outcome of each.
//!
//! ```sh
//! cargo run --release --example pca_interlock
//! ```

use mcps::control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::SimDuration;

fn main() {
    // An enriched cohort: this patient is opioid-sensitive.
    let cohort = CohortGenerator::new(
        7,
        CohortConfig { frac_opioid_sensitive: 1.0, frac_sleep_apnea: 0.0, variability_sigma: 0.2 },
    );
    let patient = cohort.params(3);
    println!(
        "patient: {:.0} kg, opioid-sensitive (EC50 {:.3} mg/L), pain {:.1}/10",
        patient.weight_kg, patient.physio.ec50_depression, patient.pain_baseline
    );
    println!("hazard: proxy presses the PCA button 12x/hour, even while the patient sleeps\n");

    let arms: [(&str, Option<InterlockConfig>); 3] = [
        ("open loop (no supervision)", None),
        (
            "command interlock",
            Some(InterlockConfig {
                strategy: InterlockStrategy::Command,
                detector: DetectorKind::Fusion,
                ..InterlockConfig::default()
            }),
        ),
        ("ticket interlock (fail-safe)", Some(InterlockConfig::default())),
    ];

    for (name, interlock) in arms {
        let mut cfg = match interlock {
            Some(il) => {
                let mut c = PcaScenarioConfig::baseline(7, patient);
                c.interlock = Some(il);
                c.pump.ticket_mode = matches!(il.strategy, InterlockStrategy::Ticket { .. });
                c
            }
            None => PcaScenarioConfig::open_loop(7, patient),
        };
        cfg.duration = SimDuration::from_mins(180);
        cfg.proxy_rate_per_hour = 12.0;
        let out = run_pca_scenario(&cfg);
        println!("== {name} ==");
        println!(
            "  min SpO2 {:.1}%  |  severe events {}  |  time below 85%: {:.0}s",
            out.patient.min_spo2, out.patient.severe_hypox_events, out.patient.secs_below_severe
        );
        println!(
            "  drug {:.1} mg  |  mean pain {:.1}  |  analgesia-adequate {:.0}% of time",
            out.total_drug_mg,
            out.patient.mean_pain,
            out.patient.frac_adequate_analgesia * 100.0
        );
        if let (Some(onset), Some(lat)) = (out.danger_onset_secs, out.stop_latency_secs) {
            println!("  true danger at t={:.0}s; pump delivery cut {:.0}s after onset", onset, lat);
        } else if out.danger_onset_secs.is_some() {
            println!("  true danger occurred and the pump was NEVER stopped");
        } else {
            println!("  no true danger developed");
        }
        println!();
    }
}
