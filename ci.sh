#!/usr/bin/env bash
# Repo CI gate. Run from anywhere; fails fast on the first broken step.
#
#   1. cargo fmt --check                        — formatting (rustfmt.toml)
#   2. cargo clippy --workspace -D warnings     — lints, all targets
#   3. cargo build --release && cargo test -q   — the tier-1 gate (ROADMAP.md)
#
# Extras the tier-1 gate does not cover:
#   4. cargo test --workspace -q                — every crate incl. shims
#   5. cargo build --benches                    — criterion benches compile
#   5a. scheduler conformance                   — timer-wheel engine ==
#      reference heap engine in lockstep (pop-for-pop, seq-exact)
#   5b. scheduler golden pins                   — the fabric_golden
#      baseline hashes must be the pre-wheel constants (the wheel must
#      reproduce them, never re-record them), and the pinned test passes
#   5c. runtime scheduler smoke budget          — bench_runtime --quick
#      fails if wheel/heap pop streams diverge, if the steady-state
#      dispatch path allocates, or past its wall-clock ceiling
#   6. checker conformance tests                — packed engine ==
#      reference engine, serial == parallel (bit-identical)
#   7. checker smoke + property gate            — bench_checker fails if
#      state_space_bound20 regresses past a generous wall-clock ceiling
#      or if ANY E13 failover property verdict is wrong (the three
#      protocol properties must hold, the seeded mutants must violate)
#   8. network fabric smoke budget              — bench_fabric fails if
#      the routing/256 fan-out workload regresses past its ceiling, and
#      BENCH_net.json must be emitted
#   9. fault-campaign smoke                     — bench_faults --quick
#      fails on ANY invariant violation in the reduced fault grid
#      (no-overdose, plus failover/split-brain for the supervisor-crash
#      and partition cells), or if the campaign blows its ceiling
#   9a. campus-scale smoke                      — bench_campus --quick
#      fails on any admission/association invariant violation in the
#      reduced campus, under an events/s floor, or past its ceiling
#  10. serve-mode smoke                          — the serve crate's
#      crash harness (kill -9 the live supervisor mid-bolus; the
#      device-local fail-safe must latch), then bench_serve --quick
#      (live ingest throughput + danger-to-stop cycles, zero trace
#      allocations with tracing disabled), emitting BENCH_serve.json
#  11. crash/soak smoke                          — journal + wire
#      recovery tests (torn tails, corrupt records, every-offset frame
#      truncation, chaos reconnect), then bench_soak --quick: kill -9 /
#      restart cycles under chaos with a durable journal; fails on ANY
#      fault-campaign invariant violation (epoch must climb, danger→stop
#      ≤ 30 protocol-s across a restart, watchdog latch on long outages,
#      zero double actuations), emitting BENCH_soak.json

set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== benches compile =="
cargo build --benches

echo "== scheduler conformance (timer wheel vs reference heap, lockstep) =="
cargo test -q -p mcps-runtime --release --test wheel_lockstep

echo "== scheduler golden pins (wheel must not re-record fabric baselines) =="
grep -q "0x4d92_0ea0_52ae_358b" tests/fabric_golden.rs \
    || { echo "E4 grid golden hash pin was altered"; exit 1; }
grep -q "0x8af6_1fb4_7ea4_288a" tests/fabric_golden.rs \
    || { echo "multibed golden hash pin was altered"; exit 1; }
cargo test -q --release --test fabric_golden

echo "== runtime scheduler smoke budget =="
cargo build --release -q -p mcps-bench --bin bench_runtime
./target/release/bench_runtime --quick --out target/BENCH_runtime.json --max-ms 30000 > /dev/null
test -s target/BENCH_runtime.json || { echo "BENCH_runtime.json missing"; exit 1; }
echo "wheel/heap conformance hashes match, zero steady-state allocs (target/BENCH_runtime.json)"

echo "== checker conformance (packed vs reference, serial vs parallel) =="
cargo test -q -p mcps-safety --release --test packed_engine

echo "== checker smoke budget + E13 failover property gate =="
cargo build --release -q -p mcps-bench --bin bench_checker
./target/release/bench_checker --out target/BENCH_checker.json --max-ms 10000 > /dev/null
echo "all E13 failover verdicts as proved; state_space_bound20 under the 10s ceiling (target/BENCH_checker.json)"

echo "== network fabric smoke budget =="
cargo build --release -q -p mcps-bench --bin bench_fabric
./target/release/bench_fabric --out target/BENCH_net.json --max-ms 5000 > /dev/null
test -s target/BENCH_net.json || { echo "BENCH_net.json missing"; exit 1; }
echo "routing/256 under the 5s ceiling (target/BENCH_net.json)"

echo "== fault-campaign smoke (no-overdose + failover invariants) =="
cargo build --release -q -p mcps-bench --bin bench_faults
./target/release/bench_faults --quick --out target/BENCH_faults.json --max-ms 60000 > /dev/null
test -s target/BENCH_faults.json || { echo "BENCH_faults.json missing"; exit 1; }
echo "quick fault grid: zero invariant violations (target/BENCH_faults.json)"

echo "== campus-scale smoke (10k-bed scenario engine, reduced census) =="
cargo build --release -q -p mcps-bench --bin bench_campus
./target/release/bench_campus --quick --out target/BENCH_campus.json \
    --max-ms 60000 --min-events-per-sec 100000 > /dev/null
test -s target/BENCH_campus.json || { echo "BENCH_campus.json missing"; exit 1; }
echo "quick campus: zero invariant violations, events/s over floor (target/BENCH_campus.json)"

echo "== serve-mode smoke (live host, crash harness, smoke budget) =="
cargo test -q -p mcps-serve --release --test crash --test live_loop
cargo build --release -q -p mcps-bench --bin bench_serve
./target/release/bench_serve --quick --out target/BENCH_serve.json --max-ms 30000 > /dev/null
test -s target/BENCH_serve.json || { echo "BENCH_serve.json missing"; exit 1; }
echo "live serve loop under the 30s ceiling, zero trace allocations (target/BENCH_serve.json)"

echo "== crash/soak smoke (durable journal, chaos links, kill -9 cycles) =="
cargo test -q -p mcps-serve --release --test journal_recovery --test wire_props --test chaos_reconnect
cargo build --release -q -p mcps-bench --bin bench_soak
cargo build --release -q -p mcps-serve --bin mcps-serve
./target/release/bench_soak --quick --out target/BENCH_soak.json --max-ms 60000 > /dev/null
test -s target/BENCH_soak.json || { echo "BENCH_soak.json missing"; exit 1; }
echo "quick soak: zero invariant violations across kill -9 restarts (target/BENCH_soak.json)"

echo "CI OK"
