//! Cross-crate integration tests: the assembled ICE system behaves as
//! the component contracts promise.

use mcps::control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::device::faults::{FaultKind, FaultPlan};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::{SimDuration, SimTime};

fn patient(seed: u64, idx: u64) -> mcps::patient::PatientParams {
    CohortGenerator::new(seed, CohortConfig::default()).params(idx)
}

#[test]
fn healthy_closed_loop_therapy_is_delivered() {
    let mut cfg = PcaScenarioConfig::baseline(1, patient(1, 0));
    cfg.duration = SimDuration::from_mins(90);
    cfg.proxy_rate_per_hour = 0.0;
    let out = run_pca_scenario(&cfg);
    assert!(out.associated);
    // A patient in pain presses and receives boluses through the loop.
    assert!(out.presses > 0, "{out:?}");
    assert!(out.total_drug_mg > 0.0, "therapy must flow in the healthy case");
    assert_eq!(out.patient.severe_hypox_events, 0);
    // Every network message on a wired fabric is delivered.
    assert_eq!(out.net_sent, out.net_delivered);
}

#[test]
fn monitor_crash_stops_therapy_but_keeps_patient_safe() {
    let mut cfg = PcaScenarioConfig::baseline(2, patient(2, 1));
    cfg.duration = SimDuration::from_mins(60);
    let crash_at = SimTime::from_mins(20);
    cfg.oximeter_fault = FaultPlan::none().with_fault(FaultKind::Crash, crash_at, None);
    cfg.capnograph_fault = FaultPlan::none().with_fault(FaultKind::Crash, crash_at, None);
    let out = run_pca_scenario(&cfg);
    let lat = out.stop_after(crash_at).expect("pump must stop after monitors crash");
    // Freshness timeout (10 s) + ticket validity (15 s) + slack.
    assert!(lat <= 30.0, "fail-safe latency {lat}s");
    // And it must stay stopped: no permit=true transition afterwards.
    let resumed =
        out.permit_transitions_secs.iter().any(|&(t, p)| p && t > crash_at.as_secs_f64() + lat);
    assert!(!resumed, "no data ⇒ no permission, forever: {:?}", out.permit_transitions_secs);
}

#[test]
fn stuck_value_fault_is_the_documented_gap() {
    // A stuck monitor keeps publishing fresh-looking values; the
    // freshness-based fail-safe must NOT engage (this is the known
    // limitation E8 documents, mitigated by H-stuck plausibility work).
    let mut cfg = PcaScenarioConfig::baseline(3, patient(3, 2));
    cfg.duration = SimDuration::from_mins(60);
    let stuck_at = SimTime::from_mins(20);
    cfg.oximeter_fault = FaultPlan::none().with_fault(FaultKind::StuckValue, stuck_at, None);
    cfg.capnograph_fault = FaultPlan::none().with_fault(FaultKind::StuckValue, stuck_at, None);
    let out = run_pca_scenario(&cfg);
    match out.stop_after(stuck_at) {
        None => {}
        Some(lat) => {
            assert!(lat > 120.0, "freshness checking should not catch stuck values, lat={lat}");
        }
    }
}

#[test]
fn command_and_ticket_strategies_both_respond_to_danger() {
    for strategy in [
        InterlockStrategy::Command,
        InterlockStrategy::Ticket {
            validity: SimDuration::from_secs(15),
            period: SimDuration::from_secs(5),
        },
    ] {
        // A very sensitive patient with heavy proxy pressing develops
        // danger; both strategies must cut delivery around onset.
        let sensitive = CohortGenerator::new(
            9,
            CohortConfig {
                frac_opioid_sensitive: 1.0,
                frac_sleep_apnea: 0.0,
                variability_sigma: 0.1,
            },
        )
        .params(0);
        let mut cfg = PcaScenarioConfig::baseline(9, sensitive);
        cfg.duration = SimDuration::from_mins(150);
        cfg.proxy_rate_per_hour = 20.0;
        cfg.interlock = Some(InterlockConfig {
            strategy,
            detector: DetectorKind::Fusion,
            ..InterlockConfig::default()
        });
        cfg.pump.ticket_mode = matches!(strategy, InterlockStrategy::Ticket { .. });
        let out = run_pca_scenario(&cfg);
        if let Some(onset) = out.danger_onset_secs {
            let lat = out
                .stop_latency_secs
                .unwrap_or_else(|| panic!("{strategy:?}: danger at {onset}s but never stopped"));
            assert!(lat <= 60.0, "{strategy:?}: stop latency {lat}s too slow");
        } else {
            // If no danger developed, the interlock must not have
            // starved the patient either.
            assert!(out.total_drug_mg > 0.0);
        }
    }
}

#[test]
fn association_is_robust_to_lossy_networks() {
    let mut cfg = PcaScenarioConfig::baseline(4, patient(4, 3));
    cfg.duration = SimDuration::from_mins(30);
    cfg.qos = mcps::net::qos::LinkQos::wifi().with_loss(0.3);
    let out = run_pca_scenario(&cfg);
    assert!(out.associated, "periodic re-announce must survive 30% loss");
    assert!(out.grants_issued > 0);
}

#[test]
fn open_loop_pump_hard_limits_still_hold() {
    // Even without any supervision, the pump's own hourly cap bounds
    // total delivery.
    let mut cfg = PcaScenarioConfig::open_loop(5, patient(5, 4));
    cfg.duration = SimDuration::from_mins(120);
    cfg.proxy_rate_per_hour = 120.0; // button mashed twice a minute
    let out = run_pca_scenario(&cfg);
    let cap = cfg.pump.max_hourly_mg * 2.0 + cfg.pump.bolus_dose_mg;
    assert!(
        out.total_drug_mg <= cap,
        "2h delivery {} exceeds 2x hourly cap {}",
        out.total_drug_mg,
        cap
    );
    assert!(out.bolus_decisions.contains_key("locked-out"), "{:?}", out.bolus_decisions);
}

#[test]
fn timeline_recording_captures_the_run() {
    let mut cfg = PcaScenarioConfig::baseline(8, patient(8, 0));
    cfg.duration = SimDuration::from_mins(30);
    cfg.timeline_every_secs = 10;
    let out = run_pca_scenario(&cfg);
    // 30 min / 10 s ≈ 180 points.
    assert!((170..=181).contains(&out.timeline.len()), "{}", out.timeline.len());
    // Monotone time, physiological values.
    for w in out.timeline.windows(2) {
        assert!(w[0].t_secs < w[1].t_secs);
    }
    for p in &out.timeline {
        assert!((0.0..=100.0).contains(&p.spo2));
        assert!(p.effect_site >= 0.0);
        assert!((0.0..=10.0).contains(&p.pain));
    }
    // Recording must not perturb the simulation itself.
    let mut plain = cfg.clone();
    plain.timeline_every_secs = 0;
    let out2 = run_pca_scenario(&plain);
    assert_eq!(out.patient, out2.patient);
    assert_eq!(out.total_drug_mg, out2.total_drug_mg);
}
