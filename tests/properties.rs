//! Property-based tests over core invariants, spanning crates.

use mcps::device::pump::{PcaPump, PcaPumpConfig};
use mcps::net::fabric::Fabric;
use mcps::net::qos::LinkQos;
use mcps::patient::patient::{PatientParams, VirtualPatient};
use mcps::patient::physiology::severinghaus_spo2;
use mcps::patient::pk::{PkModel, PkParams};
use mcps::sim::rng::RngFactory;
use mcps::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// The pump never exceeds its hourly cap, no matter the press
    /// pattern or basal programme.
    #[test]
    fn pump_hourly_cap_is_inviolable(
        presses in proptest::collection::vec(0u64..7200, 0..60),
        basal in 0.0f64..6.0,
        bolus in 0.1f64..3.0,
        cap in 1.0f64..6.0,
    ) {
        let mut pump = PcaPump::new(PcaPumpConfig {
            bolus_dose_mg: bolus,
            basal_rate_mg_per_h: basal,
            max_hourly_mg: cap,
            lockout: SimDuration::from_secs(60),
            ..PcaPumpConfig::default()
        });
        let mut presses = presses;
        presses.sort_unstable();
        let mut press_iter = presses.into_iter().peekable();
        for s in 0..7200u64 {
            while press_iter.peek() == Some(&s) {
                press_iter.next();
                let _ = pump.request_bolus(SimTime::from_secs(s));
            }
            pump.delivered_since_last(SimTime::from_secs(s));
            prop_assert!(
                pump.hourly_delivered_mg() <= cap + 1e-6,
                "cap breached: {} > {cap}",
                pump.hourly_delivered_mg()
            );
        }
    }

    /// Integrating delivery in one step or many steps gives the same
    /// total drug (the pump's accounting is step-size independent).
    #[test]
    fn pump_delivery_is_step_size_independent(
        basal in 0.0f64..4.0,
        press_at in 0u64..600,
        horizon in 700u64..3600,
    ) {
        let cfg = PcaPumpConfig { basal_rate_mg_per_h: basal, ..PcaPumpConfig::default() };
        let mut fine = PcaPump::new(cfg);
        let mut coarse = PcaPump::new(cfg);
        let _ = fine.request_bolus(SimTime::from_secs(press_at));
        let _ = coarse.request_bolus(SimTime::from_secs(press_at));
        let mut fine_total = 0.0;
        for s in 0..=horizon {
            fine_total += fine.delivered_since_last(SimTime::from_secs(s));
        }
        let coarse_total = coarse.delivered_since_last(SimTime::from_secs(horizon));
        prop_assert!((fine_total - coarse_total).abs() < 1e-6,
            "fine {fine_total} vs coarse {coarse_total}");
    }

    /// PK: drug never goes negative and total administered is an upper
    /// bound on what remains in the body.
    #[test]
    fn pk_mass_is_sane(
        boluses in proptest::collection::vec((0u64..3600, 0.1f64..5.0), 0..10),
        rate in 0.0f64..0.5,
    ) {
        let mut pk = PkModel::new(PkParams::for_weight_kg(70.0));
        pk.set_infusion_rate(rate);
        let mut boluses = boluses;
        boluses.sort_by_key(|(t, _)| *t);
        let mut iter = boluses.into_iter().peekable();
        for s in 0..3600u64 {
            while iter.peek().is_some_and(|(t, _)| *t == s) {
                let (_, mg) = iter.next().unwrap();
                pk.give_bolus(mg);
            }
            pk.step(1.0);
            let st = pk.state();
            prop_assert!(st.a_central >= 0.0 && st.a_peripheral >= 0.0 && st.ce >= 0.0);
            let in_body = st.a_central + st.a_peripheral;
            prop_assert!(in_body <= pk.total_administered_mg() + 1e-9,
                "body {in_body} > administered {}", pk.total_administered_mg());
        }
    }

    /// The oxyhaemoglobin dissociation curve is monotone and bounded.
    #[test]
    fn severinghaus_is_monotone_bounded(a in 1.0f64..150.0, b in 1.0f64..150.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let s_lo = severinghaus_spo2(lo);
        let s_hi = severinghaus_spo2(hi);
        prop_assert!(s_lo <= s_hi + 1e-12);
        prop_assert!((0.0..=100.0).contains(&s_lo));
        prop_assert!((0.0..=100.0).contains(&s_hi));
    }

    /// Patient physiology never produces impossible vitals, whatever
    /// the dosing pattern.
    #[test]
    fn patient_vitals_stay_physiological(
        boluses in proptest::collection::vec((0u64..1800, 0.5f64..8.0), 0..6),
        seed in 0u64..1000,
    ) {
        let mut p = VirtualPatient::new(PatientParams::default());
        let mut rng = RngFactory::new(seed).stream("prop");
        let mut boluses = boluses;
        boluses.sort_by_key(|(t, _)| *t);
        let mut iter = boluses.into_iter().peekable();
        for s in 0..1800u64 {
            while iter.peek().is_some_and(|(t, _)| *t == s) {
                let (_, mg) = iter.next().unwrap();
                p.give_bolus(mg);
            }
            p.advance(1.0, &mut rng);
            let v = p.vitals();
            prop_assert!((0.0..=100.0).contains(&v.spo2), "spo2 {}", v.spo2);
            prop_assert!((0.0..=300.0).contains(&v.heart_rate));
            prop_assert!((0.0..=80.0).contains(&v.resp_rate));
            prop_assert!(v.etco2 >= 0.0 && v.etco2 <= 150.0);
            prop_assert!(v.bp_systolic >= v.bp_diastolic);
            prop_assert!((0.0..=10.0).contains(&p.perceived_pain()));
        }
    }

    /// Fabric accounting: sent = delivered + dropped, and delivery
    /// timestamps never precede the send.
    #[test]
    fn fabric_accounting_balances(
        loss in 0.0f64..1.0,
        latency_ms in 0u64..500,
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(
            LinkQos::ideal()
                .with_latency(SimDuration::from_millis(latency_ms))
                .with_jitter(SimDuration::from_millis(latency_ms / 2))
                .with_loss(loss),
        );
        let a = fabric.add_endpoint("a");
        let b = fabric.add_endpoint("b");
        let mut rng = RngFactory::new(seed).stream("fabric");
        for i in 0..n {
            let now = SimTime::from_millis(i as u64 * 10);
            if let Some(d) = fabric.unicast(a, b, now, &mut rng) {
                prop_assert!(d.at >= now);
            }
        }
        let stats = fabric.link_stats(a, b);
        prop_assert_eq!(stats.sent, n as u64);
        prop_assert_eq!(stats.delivered + stats.dropped, stats.sent);
    }
}
