//! Cross-drug integration: the interlock must help for every stocked
//! opioid, including fast-onset fentanyl — the hardest timing case.

use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::patient::drugs::OpioidPreset;
use mcps::sim::time::SimDuration;

/// Runs one (preset, closed) arm over a small sensitive cohort and
/// returns total seconds below severe hypoxaemia.
fn severe_secs(preset: OpioidPreset, closed_loop: bool, seed: u64) -> f64 {
    let cohort = CohortGenerator::new(
        seed,
        CohortConfig { frac_opioid_sensitive: 1.0, frac_sleep_apnea: 0.0, variability_sigma: 0.15 },
    );
    let mut total = 0.0;
    for i in 0..6 {
        let params = preset.apply(cohort.params(i));
        let mut cfg = if closed_loop {
            PcaScenarioConfig::baseline(seed.wrapping_add(i), params)
        } else {
            PcaScenarioConfig::open_loop(seed.wrapping_add(i), params)
        };
        // Dose the pump in drug-appropriate units.
        cfg.pump.bolus_dose_mg = preset.typical_bolus_mg();
        cfg.pump.max_hourly_mg = 8.0 / preset.relative_potency();
        cfg.duration = SimDuration::from_mins(120);
        cfg.proxy_rate_per_hour = 10.0;
        total += run_pca_scenario(&cfg).patient.secs_below_severe;
    }
    total
}

#[test]
fn interlock_helps_for_every_stocked_opioid() {
    for preset in OpioidPreset::ALL {
        let open = severe_secs(preset, false, 31);
        let closed = severe_secs(preset, true, 31);
        assert!(
            closed <= open,
            "{preset}: closed loop must not be worse (open {open:.0}s, closed {closed:.0}s)"
        );
        if open > 120.0 {
            assert!(
                closed < open * 0.7,
                "{preset}: expected meaningful reduction (open {open:.0}s, closed {closed:.0}s)"
            );
        }
    }
}

#[test]
fn morphine_is_the_hardest_case_for_the_interlock() {
    // Counter-intuitive but physiologically right (and the reason PCA
    // overdoses are classically a *morphine* story): a slow
    // effect-site equilibration means drug already in plasma keeps
    // flowing to the effect site long after the pump stops, so the
    // interlock cannot prevent the dip already in motion. Fast agents
    // like fentanyl both rise AND fall quickly — stopping the pump
    // clears the danger promptly. Residual severe time under the
    // closed loop should therefore be largest for morphine.
    let mut morphine = 0.0;
    let mut fentanyl = 0.0;
    for seed in [77, 78, 79] {
        morphine += severe_secs(OpioidPreset::Morphine, true, seed);
        fentanyl += severe_secs(OpioidPreset::Fentanyl, true, seed);
    }
    assert!(
        morphine >= fentanyl,
        "slow effect-site lag should be the hard case: morphine {morphine:.0}s vs \
         fentanyl {fentanyl:.0}s"
    );
}
