//! Fault-path invariants: the scripted-fault and outage window engines
//! agree with naive interval oracles, and a mid-run sensor crash
//! fail-safes the closed loop end to end.

use mcps::device::faults::{FaultKind, FaultPlan};
use mcps::net::qos::OutagePlan;
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// The fault kinds, indexable for proptest generation.
fn kind(idx: u8, a: u32, b: u32) -> FaultKind {
    match idx % 7 {
        0 => FaultKind::Crash,
        1 => FaultKind::SilentData,
        2 => FaultKind::StuckValue,
        3 => FaultKind::Drift { bias_milli_per_sec: a as i32 - 500 },
        4 => FaultKind::Intermittent { period_ms: a.max(1), on_ms: b },
        5 => FaultKind::DelayedAck { delay_ms: a },
        _ => FaultKind::DuplicateAck,
    }
}

/// The documented resolution rule, written the slow way: scan the
/// script in insertion order keeping the covering fault with the
/// highest severity, breaking severity ties by earliest onset and
/// onset ties by insertion order.
fn oracle_active(
    script: &[(FaultKind, SimTime, Option<SimTime>)],
    now: SimTime,
) -> Option<FaultKind> {
    let mut best: Option<(FaultKind, SimTime)> = None;
    for &(k, at, until) in script {
        let covers = at <= now && until.is_none_or(|u| now < u);
        if !covers {
            continue;
        }
        best = match best {
            None => Some((k, at)),
            Some((bk, bat)) => {
                if k.severity() > bk.severity() || (k.severity() == bk.severity() && at < bat) {
                    Some((k, at))
                } else {
                    Some((bk, bat))
                }
            }
        };
    }
    best.map(|(k, _)| k)
}

proptest! {
    /// `FaultPlan::active` matches the naive max-severity interval
    /// oracle for arbitrary overlapping scripts and query times.
    #[test]
    fn fault_plan_active_matches_interval_oracle(
        script in proptest::collection::vec(
            (0u8..7, 0u32..20_000, 0u32..20_000, 0u64..600, proptest::option::of(1u64..600)),
            0..8,
        ),
        queries in proptest::collection::vec(0u64..1_300_000, 1..40),
    ) {
        let mut plan = FaultPlan::none();
        let mut naive = Vec::new();
        for (idx, a, b, at_ms, dur_ms) in script {
            let k = kind(idx, a, b);
            let at = SimTime::from_millis(at_ms * 1000);
            let until = dur_ms.map(|d| at + SimDuration::from_millis(d * 1000));
            plan = plan.with_fault(k, at, until);
            naive.push((k, at, until));
        }
        for q_ms in queries {
            let now = SimTime::from_millis(q_ms);
            prop_assert_eq!(
                plan.active(now),
                oracle_active(&naive, now),
                "divergence at {:?} for script {:?}",
                now,
                naive
            );
        }
    }

    /// `OutagePlan::is_down` matches the naive any-window-covers oracle.
    #[test]
    fn outage_plan_is_down_matches_interval_oracle(
        windows in proptest::collection::vec((0u64..500_000, 1u64..200_000), 0..8),
        queries in proptest::collection::vec(0u64..800_000, 1..40),
    ) {
        let mut plan = OutagePlan::none();
        let mut naive = Vec::new();
        for (from_ms, len_ms) in windows {
            let (a, b) = (SimTime::from_millis(from_ms), SimTime::from_millis(from_ms + len_ms));
            plan = plan.with_outage(a, b);
            naive.push((a, b));
        }
        for q_ms in queries {
            let now = SimTime::from_millis(q_ms);
            let expected = naive.iter().any(|&(a, b)| a <= now && now < b);
            prop_assert_eq!(plan.is_down(now), expected);
        }
    }
}

/// End to end: a mid-run oximeter crash silences the vitals stream, so
/// the ticket interlock must stop granting — and the pump must cease
/// delivery — within the freshness timeout (10 s) plus the outstanding
/// ticket's validity (15 s) plus one grant period of slack.
#[test]
fn mid_run_oximeter_crash_stops_granting_within_freshness_timeout() {
    let crash_at = SimTime::from_mins(20);
    let patient = CohortGenerator::new(23, CohortConfig::default()).params(0);
    let mut cfg = mcps::core::scenarios::pca::PcaScenarioConfig::baseline(23, patient);
    cfg.duration = SimDuration::from_mins(35);
    cfg.oximeter_fault = FaultPlan::none().with_fault(FaultKind::Crash, crash_at, None);
    let out = mcps::core::scenarios::pca::run_pca_scenario(&cfg);

    assert!(out.associated, "app must associate before the crash");
    let stop = out.stop_after(crash_at).expect("fail-safe stop must engage after the crash");
    assert!(stop <= 10.0 + 15.0 + 5.0, "fail-safe took {stop}s");
    // No grant can re-permit the pump afterwards: the slot stays silent
    // and there is no backup at the bedside.
    let crash_secs = crash_at.as_secs_f64();
    assert!(
        !out.permit_transitions_secs.iter().any(|&(t, p)| p && t > crash_secs + stop),
        "pump re-permitted without data: {:?}",
        out.permit_transitions_secs
    );
    // The supervisor notices the silent slot and degrades (sensor-silent
    // vacate fires after the 30 s disassociation timeout).
    assert!(
        out.degraded_windows_secs.iter().any(|&(entered, _)| entered >= crash_secs),
        "supervisor must degrade after sensor loss: {:?}",
        out.degraded_windows_secs
    );
}
