//! Serialization contracts: experiment configs and outcomes round-trip
//! through JSON, so runs can be scripted, archived and diffed.

use mcps::control::interlock::InterlockConfig;
use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::core::scenarios::ward::{run_ward_scenario, WardConfig};
use mcps::device::ders::DrugLibrary;
use mcps::device::pump::PcaPumpConfig;
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::patient::patient::PatientParams;
use mcps::safety::hazard::pca_hazard_log;
use mcps::safety::requirements::pca_requirements;
use mcps::sim::time::SimDuration;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn scenario_config_roundtrips() {
    let cohort = CohortGenerator::new(1, CohortConfig::default());
    let cfg = PcaScenarioConfig::baseline(1, cohort.params(0));
    let back = roundtrip(&cfg);
    assert_eq!(cfg, back);
}

#[test]
fn scenario_outcome_roundtrips_and_is_stable() {
    let cohort = CohortGenerator::new(2, CohortConfig::default());
    let mut cfg = PcaScenarioConfig::baseline(2, cohort.params(1));
    cfg.duration = SimDuration::from_mins(10);
    let out = run_pca_scenario(&cfg);
    let back = roundtrip(&out);
    assert_eq!(out, back);
}

#[test]
fn deserialized_config_reproduces_the_same_run() {
    // The JSON form is a complete, faithful description of a run.
    let cohort = CohortGenerator::new(3, CohortConfig::default());
    let mut cfg = PcaScenarioConfig::baseline(3, cohort.params(2));
    cfg.duration = SimDuration::from_mins(10);
    let cfg2: PcaScenarioConfig = roundtrip(&cfg);
    assert_eq!(run_pca_scenario(&cfg), run_pca_scenario(&cfg2));
}

#[test]
fn ward_config_and_outcome_roundtrip() {
    let cfg =
        WardConfig { patients: 2, duration: SimDuration::from_mins(30), ..WardConfig::default() };
    assert_eq!(cfg, roundtrip(&cfg));
    let out = run_ward_scenario(&cfg);
    assert_eq!(out, roundtrip(&out));
}

#[test]
fn component_configs_roundtrip() {
    assert_eq!(PcaPumpConfig::default(), roundtrip(&PcaPumpConfig::default()));
    assert_eq!(InterlockConfig::default(), roundtrip(&InterlockConfig::default()));
    assert_eq!(PatientParams::default(), roundtrip(&PatientParams::default()));
    assert_eq!(CohortConfig::default(), roundtrip(&CohortConfig::default()));
}

#[test]
fn assurance_artifacts_roundtrip() {
    let log = pca_hazard_log();
    let log2: mcps::safety::hazard::HazardLog = roundtrip(&log);
    assert_eq!(log, log2);
    let matrix = pca_requirements();
    let matrix2: mcps::safety::requirements::TraceabilityMatrix = roundtrip(&matrix);
    assert_eq!(matrix, matrix2);
    let lib = DrugLibrary::adult_postop();
    assert_eq!(lib, roundtrip(&lib));
}
