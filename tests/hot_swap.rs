//! On-demand re-association: a backup device takes over a vacated slot
//! at runtime — the "assembled at the bedside" property under failure.

use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::device::faults::{FaultKind, FaultPlan};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::{SimDuration, SimTime};

fn base(seed: u64) -> PcaScenarioConfig {
    let patient = CohortGenerator::new(seed, CohortConfig::default()).params(0);
    let mut cfg = PcaScenarioConfig::baseline(seed, patient);
    cfg.duration = SimDuration::from_mins(60);
    cfg
}

#[test]
fn backup_oximeter_takes_over_after_primary_crash() {
    let crash_at = SimTime::from_mins(20);
    let mut cfg = base(1);
    cfg.backup_oximeter = true;
    cfg.oximeter_fault = FaultPlan::none().with_fault(FaultKind::Crash, crash_at, None);
    let out = run_pca_scenario(&cfg);

    // The fail-safe must engage when the primary dies...
    let stop = out.stop_after(crash_at).expect("fail-safe stop after crash");
    assert!(stop <= 60.0, "stop latency {stop}s");
    // ...and a second association (hot-swap) must complete...
    assert!(
        out.associations_completed >= 2,
        "expected a hot-swap, got {} associations",
        out.associations_completed
    );
    // ...after which permission is restored (tickets flow again).
    let resumed =
        out.permit_transitions_secs.iter().any(|&(t, p)| p && t > crash_at.as_secs_f64() + stop);
    assert!(resumed, "therapy must resume on the backup device: {:?}", out.permit_transitions_secs);
    // Resumption should be prompt: disassociation timeout (30 s) +
    // announce period (10 s) + resume holdoff does not apply (stale
    // data clears instantly when fresh data arrives).
    let resume_at = out
        .permit_transitions_secs
        .iter()
        .find(|&&(t, p)| p && t > crash_at.as_secs_f64() + stop)
        .map(|&(t, _)| t)
        .unwrap();
    assert!(
        resume_at - crash_at.as_secs_f64() <= 120.0,
        "swap took {}s",
        resume_at - crash_at.as_secs_f64()
    );
}

#[test]
fn without_backup_the_system_stays_safe_but_stopped() {
    let crash_at = SimTime::from_mins(20);
    let mut cfg = base(2);
    cfg.backup_oximeter = false;
    cfg.oximeter_fault = FaultPlan::none().with_fault(FaultKind::Crash, crash_at, None);
    let out = run_pca_scenario(&cfg);
    let stop = out.stop_after(crash_at).expect("fail-safe stop");
    let resumed =
        out.permit_transitions_secs.iter().any(|&(t, p)| p && t > crash_at.as_secs_f64() + stop);
    assert!(!resumed, "no backup ⇒ no resumption: {:?}", out.permit_transitions_secs);
    assert_eq!(out.associations_completed, 1);
}

#[test]
fn backup_is_inert_while_primary_is_healthy() {
    let mut cfg = base(3);
    cfg.backup_oximeter = true;
    let out = run_pca_scenario(&cfg);
    assert_eq!(out.associations_completed, 1, "no swap without a failure");
    assert!(out.associated);
    assert!(out.grants_issued > 0);
}

#[test]
fn transient_primary_outage_may_swap_and_must_recover() {
    // Primary goes silent for 2 minutes, then recovers; with a backup
    // available the system must end the run fully associated and
    // granting, whichever device holds the slot.
    let fault_at = SimTime::from_mins(20);
    let mut cfg = base(4);
    cfg.backup_oximeter = true;
    cfg.oximeter_fault = FaultPlan::none().with_fault(
        FaultKind::SilentData,
        fault_at,
        Some(fault_at + SimDuration::from_mins(2)),
    );
    let out = run_pca_scenario(&cfg);
    assert!(out.associated);
    // Permission must be restored after the episode.
    let last = out.permit_transitions_secs.last().copied();
    assert_eq!(last.map(|(_, p)| p), Some(true), "{:?}", out.permit_transitions_secs);
}
