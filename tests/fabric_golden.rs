//! Golden-output pin for the dense-routed fabric refactor.
//!
//! The network fabric's routing core was rebuilt around interned
//! topics and packed link tables (see `mcps-net::fabric`); the rebuild
//! is required to be *byte-identical* on every scenario — same
//! deliveries, same RNG consumption, same statistics. These tests pin
//! the serialized output of a miniature E4 QoS grid and a shared-fabric
//! multi-bed ward to FNV-1a hashes recorded on the pre-refactor
//! (`BTreeMap`-routed) fabric. If routing order, RNG draw order or any
//! link statistic shifts, the serialized JSON — and therefore the hash
//! — changes.

use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::scenarios::multibed::{run_multibed_scenario, MultiBedConfig};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps_net::qos::LinkQos;
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_sim::time::{SimDuration, SimTime};

/// FNV-1a over the serialized output: stable, dependency-free, and any
/// single-byte difference in the JSON changes it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A miniature E4 grid: both interlock strategies over a clean wired
/// link and a lossy congested one (with an outage window), one
/// sensitive patient per cell.
fn e4_mini_grid_json() -> String {
    let cohort = CohortGenerator::new(
        7,
        CohortConfig { frac_opioid_sensitive: 1.0, frac_sleep_apnea: 0.0, variability_sigma: 0.2 },
    );
    let strategies = [
        InterlockStrategy::Command,
        InterlockStrategy::Ticket {
            validity: SimDuration::from_secs(5),
            period: SimDuration::from_secs(2),
        },
    ];
    let qos_points = [LinkQos::wired(), LinkQos::congested()];
    let mut outcomes = Vec::new();
    for (si, strategy) in strategies.iter().enumerate() {
        for (qi, qos) in qos_points.iter().enumerate() {
            let seed = 7 + (si as u64) * 10 + qi as u64;
            let mut cfg = PcaScenarioConfig::baseline(seed, cohort.params(seed));
            cfg.duration = SimDuration::from_mins(30);
            cfg.proxy_rate_per_hour = 8.0;
            cfg.qos = *qos;
            if qi == 1 {
                cfg.outages = vec![(SimTime::from_secs(600), SimTime::from_secs(660))];
            }
            cfg.interlock = Some(InterlockConfig {
                strategy: *strategy,
                detector: DetectorKind::Fusion,
                ..InterlockConfig::default()
            });
            cfg.pump.ticket_mode = matches!(strategy, InterlockStrategy::Ticket { .. });
            outcomes.push(run_pca_scenario(&cfg));
        }
    }
    serde_json::to_string(&outcomes).expect("outcomes serialize")
}

fn multibed_json() -> String {
    let out = run_multibed_scenario(&MultiBedConfig {
        seed: 17,
        beds: 3,
        duration: SimDuration::from_mins(12),
        qos: LinkQos::wifi(),
        bed0_proxy_rate_per_hour: 30.0,
        ..MultiBedConfig::default()
    });
    serde_json::to_string(&out).expect("outcomes serialize")
}

/// Hash pins. Both values were re-recorded after the supervisor
/// redundancy work (periodic heartbeats on the command channel, epoch
/// stamps on every command, failover telemetry in the serialized
/// outcome) deliberately changed supervisor traffic and the outcome
/// schema in every scenario; fabric equivalence itself is still
/// guaranteed bit-exactly by the `dense_vs_reference` proptests in
/// `mcps-net`.
const E4_GRID_HASH: u64 = 0x4d92_0ea0_52ae_358b;
const E4_GRID_LEN: usize = 19184;
const MULTIBED_HASH: u64 = 0x8af6_1fb4_7ea4_288a;
const MULTIBED_LEN: usize = 1127;

#[test]
fn e4_grid_output_is_byte_identical_to_pre_refactor() {
    let json = e4_mini_grid_json();
    let (hash, len) = (fnv1a(json.as_bytes()), json.len());
    assert_eq!(
        (hash, len),
        (E4_GRID_HASH, E4_GRID_LEN),
        "E4 mini-grid output drifted from the pre-refactor baseline \
         (got hash {hash:#018x}, len {len})"
    );
}

#[test]
fn multibed_ward_output_is_byte_identical_to_pre_refactor() {
    let json = multibed_json();
    let (hash, len) = (fnv1a(json.as_bytes()), json.len());
    assert_eq!(
        (hash, len),
        (MULTIBED_HASH, MULTIBED_LEN),
        "multi-bed ward output drifted from the pre-refactor baseline \
         (got hash {hash:#018x}, len {len})"
    );
}
