//! Model-to-implementation conformance: the verified ticket-pump
//! automaton, *executed directly*, must agree with the hand-written
//! `PcaPump` on when delivery is permitted — under arbitrary ticket
//! schedules. This is the paper's model-based-development promise made
//! checkable: what was proved is what runs.

use mcps::device::pump::{PcaPump, PcaPumpConfig};
use mcps::safety::executor::AutomatonExecutor;
use mcps::safety::models::{pump_ticket_model, TICKET_VALIDITY};
use mcps::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Drives both artifacts through the same schedule of grant instants
/// (in whole seconds = model time units) and compares the permission
/// signal each second.
fn conformance_run(grant_at: Vec<u64>, horizon: u64) -> Result<(), String> {
    let mut pump = PcaPump::new(PcaPumpConfig { ticket_mode: true, ..PcaPumpConfig::default() });
    let mut model = AutomatonExecutor::new(pump_ticket_model());
    let validity = SimDuration::from_secs(u64::from(TICKET_VALIDITY));
    let mut grants = grant_at;
    grants.sort_unstable();
    grants.dedup();
    let mut iter = grants.into_iter().peekable();

    // The model starts in Running with clock 0 (as if granted at t=0);
    // mirror that in the pump.
    pump.grant_ticket(SimTime::ZERO, validity);

    for s in 0..horizon {
        let now = SimTime::from_secs(s);
        while iter.peek() == Some(&s) {
            iter.next();
            pump.grant_ticket(now, validity);
            // The model refuses tickets at the exact expiry instant
            // (clock == validity) but accepts them in Stopped
            // (resurrect); `offer` returning NotEnabled can only happen
            // at that boundary instant, where the forced `expire` fires
            // first on the next advance — retry after settling.
            if model.offer("ticket_d").is_err() {
                model.advance(0);
                model.offer("ticket_d").map_err(|e| format!("t={s}: model refused ticket: {e}"))?;
            }
        }
        let model_running = model.in_location("Running");
        let pump_permitted = pump.is_permitted(now);
        if model_running != pump_permitted {
            return Err(format!(
                "t={s}: model {} vs pump {} (model clock {})",
                if model_running { "Running" } else { "Stopped" },
                if pump_permitted { "permitted" } else { "blocked" },
                model.clock("t"),
            ));
        }
        model.advance(1);
    }
    Ok(())
}

#[test]
fn periodic_grants_conform() {
    let grants: Vec<u64> = (0..40).map(|i| i * 5).collect();
    conformance_run(grants, 220).unwrap();
}

#[test]
fn silence_conforms() {
    // One initial grant, then nothing: both stop at validity.
    conformance_run(vec![], 40).unwrap();
}

#[test]
fn resurrection_conforms() {
    // Grant, long silence (expiry), then a late grant: both resume.
    conformance_run(vec![0, 30], 60).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary grant schedules: permission signals agree second by
    /// second.
    #[test]
    fn arbitrary_schedules_conform(
        grants in proptest::collection::vec(0u64..120, 0..30),
    ) {
        if let Err(e) = conformance_run(grants.clone(), 140) {
            prop_assert!(false, "divergence under {grants:?}: {e}");
        }
    }
}
