//! Supervisor-redundancy acceptance tests: a primary crash mid-therapy must
//! hand the safety interlock to the promoted standby without violating the
//! danger-response deadline, and a healed network partition must not let the
//! fenced ex-primary actuate the pump a second time.

use mcps::control::interlock::InterlockStrategy;
use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::device::faults::{FaultKind, FaultPlan};
use mcps::net::qos::LinkQos;
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::sim::time::{SimDuration, SimTime};

/// Fully opioid-sensitive cohort so respiratory danger is reachable within a
/// 25-minute run even though the interlock is working.
fn sensitive_cfg(seed: u64) -> PcaScenarioConfig {
    let cohort = CohortGenerator::new(
        64,
        CohortConfig { frac_opioid_sensitive: 1.0, frac_sleep_apnea: 0.0, variability_sigma: 0.1 },
    );
    let mut cfg = PcaScenarioConfig::baseline(seed, cohort.params(seed));
    cfg.duration = SimDuration::from_mins(25);
    cfg.proxy_rate_per_hour = 30.0;
    cfg.standby_supervisor = true;
    cfg
}

/// The primary supervisor dies at t=600s and never comes back. Danger onset
/// (seed-picked at t≈957s) lands well after the crash, so only the promoted
/// standby can enforce the danger→stop deadline.
#[test]
fn primary_crash_failover_meets_danger_deadline() {
    let mut cfg = sensitive_cfg(24);
    cfg.supervisor_fault =
        FaultPlan::none().with_fault(FaultKind::SupervisorCrash, SimTime::from_secs(600), None);
    let out = run_pca_scenario(&cfg);

    assert_eq!(out.failovers, 1, "standby never promoted after the primary crash");
    assert_eq!(out.supervisor_epoch, 2, "promotion must fence with a higher epoch");
    let danger = out.danger_onset_secs.expect("seed 24 is chosen to reach danger");
    assert!(danger > 600.0, "danger must start after the crash to exercise the standby");
    let stop = out.stop_latency_secs.expect("pump never ceased delivery after danger onset");
    assert!(stop <= 30.0, "danger→stop took {stop:.1}s across the failover (limit 30s)");
    assert_eq!(out.double_actuations, 0);
}

/// A worst-case *clean* failover transiently latches the pump's local
/// fail-safe — by design, not by accident. The E13 timed-automata model
/// proves the worst case is 16 s of supervision silence against the pump's
/// 15 s watchdog (`mcps_safety::timing::WORST_CLEAN_FAILOVER_SECS`): the last
/// pre-crash heartbeat can predate the last checkpoint by almost a full
/// heartbeat period, and promotion needs a further ~11 s of checkpoint
/// silence. This pins the implementation to the model on both halves of the
/// finding: the latch is reachable with adversarial crash timing, and the
/// promoted supervisor's first acked heartbeat releases it within seconds.
///
/// The alignment is deliberately adversarial: heartbeat-only supervision
/// (command strategy, no ticket refresh traffic masking the silence), a
/// crash dropped just after a checkpoint but ~5 s past the last heartbeat,
/// and sub-second link latency. Seed 17 realises it deterministically.
#[test]
fn worst_case_clean_failover_transiently_latches_and_releases() {
    let mut cfg = sensitive_cfg(17);
    cfg.pump.ticket_mode = false;
    cfg.interlock.as_mut().unwrap().strategy = InterlockStrategy::Command;
    cfg.qos = LinkQos::ideal()
        .with_latency(SimDuration::from_millis(700))
        .with_jitter(SimDuration::from_millis(200));
    let crash = SimTime::from_millis(605_300);
    cfg.supervisor_fault = FaultPlan::none().with_fault(FaultKind::SupervisorCrash, crash, None);
    let out = run_pca_scenario(&cfg);

    assert_eq!(out.failovers, 1, "the crash must still fail over cleanly");
    assert_eq!(out.double_actuations, 0);
    let crash_secs = crash.as_secs_f64();
    let latch = out
        .failsafe_transitions_secs
        .iter()
        .find(|(t, on)| *on && *t > crash_secs)
        .map(|(t, _)| *t)
        .expect("worst-case clean failover must transiently latch the local fail-safe");
    assert!(
        latch < crash_secs + 20.0,
        "latch at {latch:.1}s is not part of the failover window (crash {crash_secs:.1}s)"
    );
    let release = out
        .failsafe_transitions_secs
        .iter()
        .find(|(t, on)| !*on && *t > latch)
        .map(|(t, _)| *t)
        .expect("promoted supervisor must release the transient latch");
    assert!(
        release - latch < 5.0,
        "release took {:.1}s; the first acked epoch-2 heartbeat should clear it",
        release - latch
    );
    assert_eq!(out.local_failsafe_entries, 1, "only the failover window may latch");
}

/// A transient partition (t=600..780s) isolates the primary from everything
/// else, including the standby's checkpoint feed. The standby promotes to
/// epoch 2 behind the partition; when the links heal, the stale ex-primary's
/// epoch-1 traffic must be rejected by the pump's epoch fence — never applied
/// as a second actuation — and the ex-primary must step down.
#[test]
fn partition_epoch_fence_prevents_double_actuation() {
    let mut cfg = sensitive_cfg(7);
    cfg.supervisor_fault = FaultPlan::none().with_fault(
        // group_a = the primary supervisor alone; group_b = both vitals
        // devices, the pump, and the standby (endpoint-creation bit order).
        FaultKind::Partition { group_a: 0b00_1000, group_b: 0b11_0111 },
        SimTime::from_secs(600),
        Some(SimTime::from_secs(780)),
    );
    let out = run_pca_scenario(&cfg);

    assert_eq!(out.failovers, 1, "standby must promote while checkpoints are severed");
    assert_eq!(out.supervisor_epoch, 2);
    assert!(
        out.fenced_commands > 0,
        "healed ex-primary's stale epoch-1 traffic was never fenced by the pump"
    );
    assert_eq!(out.double_actuations, 0, "split-brain double actuation");
    assert_eq!(out.supervisor_stepdowns, 1, "ex-primary must step down on seeing epoch 2");
}
