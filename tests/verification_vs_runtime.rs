//! The model checker's verdicts must agree with the runtime system's
//! observed behaviour — the point of model-based development is that
//! the model *predicts* the implementation.

use mcps::control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::safety::models::{check_pca_variant, PcaModelVariant};
use mcps::sim::time::{SimDuration, SimTime};

/// Model says: ticket interlock stops the pump despite total message
/// loss. Runtime must agree: under a network partition the pump stops
/// within the ticket validity.
#[test]
fn ticket_failsafe_model_and_runtime_agree() {
    // Model side.
    let model = check_pca_variant(PcaModelVariant::TicketLossy, 5_000_000);
    assert!(model.holds(), "model: {model:?}");

    // Runtime side.
    let patient = CohortGenerator::new(1, CohortConfig::default()).params(0);
    let mut cfg = PcaScenarioConfig::baseline(1, patient);
    cfg.duration = SimDuration::from_mins(45);
    let partition = SimTime::from_mins(20);
    cfg.outages = vec![(partition, SimTime::from_mins(45))];
    let out = run_pca_scenario(&cfg);
    let lat = out.stop_after(partition).expect("runtime: pump must self-stop in partition");
    // Ticket validity 15 s + one tick of slack.
    assert!(lat <= 16.0, "runtime fail-safe latency {lat}s exceeds ticket validity");
}

/// Model says: the command interlock over a lossy channel has a run in
/// which the pump never stops. Runtime must agree: under a *total*
/// partition (the adversarial schedule the checker found), a
/// command-mode pump keeps its permission.
#[test]
fn command_interlock_partition_model_and_runtime_agree() {
    // Model side: violation exists.
    let model = check_pca_variant(PcaModelVariant::CommandLossy, 5_000_000);
    assert!(model.trace().is_some(), "model: {model:?}");

    // Runtime side: reproduce the adversarial schedule.
    let patient = CohortGenerator::new(2, CohortConfig::default()).params(0);
    let mut cfg = PcaScenarioConfig::baseline(2, patient);
    cfg.duration = SimDuration::from_mins(45);
    cfg.interlock = Some(InterlockConfig {
        strategy: InterlockStrategy::Command,
        detector: DetectorKind::Fusion,
        ..InterlockConfig::default()
    });
    cfg.pump.ticket_mode = false;
    let partition = SimTime::from_mins(20);
    cfg.outages = vec![(partition, SimTime::from_mins(45))];
    let out = run_pca_scenario(&cfg);
    // The pump was permitted when the partition hit and no stop can
    // arrive: permission persists to the end of the run.
    assert!(out.permitted_at_secs(partition.as_secs_f64()), "precondition: pump running");
    assert_eq!(
        out.stop_after(partition),
        None,
        "command-mode pump cannot be stopped across a partition: {:?}",
        out.permit_transitions_secs
    );
}

/// The command interlock on a reliable network meets its end-to-end
/// deadline both in the model and at runtime.
#[test]
fn command_reliable_deadline_model_and_runtime_agree() {
    let model = check_pca_variant(PcaModelVariant::CommandReliable, 5_000_000);
    assert!(model.holds(), "model: {model:?}");

    // Runtime: drive a sensitive patient into danger and check the
    // stop arrives promptly after detection.
    let sensitive = CohortGenerator::new(
        3,
        CohortConfig { frac_opioid_sensitive: 1.0, frac_sleep_apnea: 0.0, variability_sigma: 0.1 },
    )
    .params(1);
    let mut cfg = PcaScenarioConfig::baseline(3, sensitive);
    cfg.duration = SimDuration::from_mins(150);
    cfg.proxy_rate_per_hour = 20.0;
    cfg.interlock = Some(InterlockConfig {
        strategy: InterlockStrategy::Command,
        detector: DetectorKind::Fusion,
        ..InterlockConfig::default()
    });
    cfg.pump.ticket_mode = false;
    let out = run_pca_scenario(&cfg);
    if out.danger_onset_secs.is_some() {
        let lat = out.stop_latency_secs.expect("stop must follow danger");
        assert!(lat <= 30.0, "runtime stop latency {lat}s");
    }
}
