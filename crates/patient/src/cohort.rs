//! Randomized patient cohorts for population-level experiments.
//!
//! Inter-patient variability is what makes fixed, open-loop dosing
//! dangerous and closed-loop supervision valuable: the same PCA
//! programme that is safe for a median patient can overdose an
//! opioid-sensitive one. [`CohortGenerator`] samples physiologically
//! plausible parameter sets, reproducibly per (seed, index).

use crate::patient::{PatientParams, RiskGroup, VirtualPatient};
use crate::physiology::PhysioParams;
use crate::pk::PkParams;
use mcps_sim::rng::{log_normal, normal, triangular, RngFactory};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Population mix and variability knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CohortConfig {
    /// Fraction of opioid-sensitive patients.
    pub frac_opioid_sensitive: f64,
    /// Fraction of sleep-apnoea patients.
    pub frac_sleep_apnea: f64,
    /// Log-scale standard deviation of PK/PD parameter variability.
    pub variability_sigma: f64,
}

impl Default for CohortConfig {
    fn default() -> Self {
        CohortConfig {
            frac_opioid_sensitive: 0.15,
            frac_sleep_apnea: 0.10,
            variability_sigma: 0.25,
        }
    }
}

impl CohortConfig {
    /// Validates fractions and sigma.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.frac_opioid_sensitive)
            || !(0.0..=1.0).contains(&self.frac_sleep_apnea)
            || self.frac_opioid_sensitive + self.frac_sleep_apnea > 1.0
        {
            return Err("risk-group fractions must be in [0,1] and sum to ≤ 1".into());
        }
        if !(self.variability_sigma.is_finite() && self.variability_sigma >= 0.0) {
            return Err(format!("variability_sigma must be ≥ 0, got {}", self.variability_sigma));
        }
        Ok(())
    }
}

/// Deterministic generator of patient parameter sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortGenerator {
    factory: RngFactory,
    config: CohortConfig,
}

impl CohortGenerator {
    /// Creates a generator; identical `(seed, config)` pairs produce
    /// identical cohorts.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`CohortConfig::validate`].
    pub fn new(seed: u64, config: CohortConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid cohort config: {e}");
        }
        CohortGenerator { factory: RngFactory::new(seed), config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &CohortConfig {
        &self.config
    }

    /// Samples the parameters of patient `index`. The same index always
    /// yields the same patient for a given seed.
    pub fn params(&self, index: u64) -> PatientParams {
        let mut rng = self.factory.stream(&format!("cohort-patient-{index}"));
        let cfg = &self.config;

        let weight = normal(&mut rng, 75.0, 14.0).clamp(45.0, 140.0);
        let mut pk = PkParams::for_weight_kg(weight);
        let jig = |rng: &mut mcps_sim::rng::SimRng, sigma: f64| log_normal(rng, 0.0, sigma);
        pk.k10 *= jig(&mut rng, cfg.variability_sigma);
        pk.k12 *= jig(&mut rng, cfg.variability_sigma);
        pk.k21 *= jig(&mut rng, cfg.variability_sigma);
        pk.ke0 *= jig(&mut rng, cfg.variability_sigma);

        let mut physio = PhysioParams::default();
        physio.rr0 = normal(&mut rng, 14.0, 1.5).clamp(10.0, 20.0);
        physio.hr0 = normal(&mut rng, 74.0, 8.0).clamp(50.0, 100.0);
        physio.mv0 = normal(&mut rng, 6.0, 0.7).clamp(4.0, 9.0);
        physio.bp_sys0 = normal(&mut rng, 122.0, 10.0).clamp(95.0, 160.0);
        physio.bp_dia0 = (physio.bp_sys0 - normal(&mut rng, 42.0, 5.0)).clamp(55.0, 100.0);
        physio.ec50_depression *= jig(&mut rng, cfg.variability_sigma);
        physio.ec50_analgesia *= jig(&mut rng, cfg.variability_sigma);
        physio.apnea_ce = physio.ec50_depression * 2.3;

        let u: f64 = rng.gen_range(0.0..1.0);
        let risk = if u < cfg.frac_opioid_sensitive {
            RiskGroup::OpioidSensitive
        } else if u < cfg.frac_opioid_sensitive + cfg.frac_sleep_apnea {
            RiskGroup::SleepApnea
        } else {
            RiskGroup::Standard
        };
        match risk {
            RiskGroup::OpioidSensitive => {
                physio.ec50_depression *= 0.55;
                physio.apnea_ce *= 0.55;
            }
            RiskGroup::SleepApnea => {
                physio.tau_o2_min *= 0.55;
                physio.emax_depression = 0.98;
                physio.apnea_ce *= 0.75;
            }
            RiskGroup::Standard => {}
        }

        let pain_baseline = triangular(&mut rng, 3.0, 6.0, 9.0);

        PatientParams {
            weight_kg: weight,
            pk,
            physio,
            pain_baseline,
            pain_tau_min: normal(&mut rng, 600.0, 120.0).clamp(240.0, 1200.0),
            demand_rate_at_max_pain: triangular(&mut rng, 6.0, 12.0, 20.0),
            risk,
        }
    }

    /// Instantiates patient `index` directly.
    pub fn patient(&self, index: u64) -> VirtualPatient {
        VirtualPatient::new(self.params(index))
    }

    /// Iterator over the first `n` patients.
    pub fn take(&self, n: u64) -> impl Iterator<Item = VirtualPatient> + '_ {
        (0..n).map(|i| self.patient(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_per_index() {
        let g = CohortGenerator::new(42, CohortConfig::default());
        assert_eq!(g.params(7), g.params(7));
        assert_ne!(g.params(7), g.params(8));
    }

    #[test]
    fn different_seeds_different_cohorts() {
        let a = CohortGenerator::new(1, CohortConfig::default());
        let b = CohortGenerator::new(2, CohortConfig::default());
        assert_ne!(a.params(0), b.params(0));
    }

    #[test]
    fn parameters_stay_plausible() {
        let g = CohortGenerator::new(9, CohortConfig::default());
        for i in 0..200 {
            let p = g.params(i);
            assert!((45.0..=140.0).contains(&p.weight_kg), "weight {}", p.weight_kg);
            assert!(p.pk.validate().is_ok(), "pk invalid at {i}");
            assert!(
                p.physio.validate().is_ok(),
                "physio invalid at {i}: {:?}",
                p.physio.validate()
            );
            assert!(p.physio.apnea_ce > p.physio.ec50_depression, "apnoea margin at {i}");
            assert!((3.0..=9.0).contains(&p.pain_baseline));
        }
    }

    #[test]
    fn risk_mix_approximates_config() {
        let cfg = CohortConfig::default();
        let g = CohortGenerator::new(5, cfg);
        let n = 2_000;
        let mut sensitive = 0;
        let mut apnea = 0;
        for i in 0..n {
            match g.params(i).risk {
                RiskGroup::OpioidSensitive => sensitive += 1,
                RiskGroup::SleepApnea => apnea += 1,
                RiskGroup::Standard => {}
            }
        }
        let fs = sensitive as f64 / n as f64;
        let fa = apnea as f64 / n as f64;
        assert!((fs - cfg.frac_opioid_sensitive).abs() < 0.03, "sensitive {fs}");
        assert!((fa - cfg.frac_sleep_apnea).abs() < 0.03, "apnea {fa}");
    }

    #[test]
    fn sensitive_patients_are_more_sensitive() {
        let g = CohortGenerator::new(
            13,
            CohortConfig {
                frac_opioid_sensitive: 0.5,
                frac_sleep_apnea: 0.0,
                variability_sigma: 0.0,
            },
        );
        let mut ec_sensitive = Vec::new();
        let mut ec_standard = Vec::new();
        for i in 0..200 {
            let p = g.params(i);
            match p.risk {
                RiskGroup::OpioidSensitive => ec_sensitive.push(p.physio.ec50_depression),
                RiskGroup::Standard => ec_standard.push(p.physio.ec50_depression),
                _ => {}
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&ec_sensitive) < 0.7 * mean(&ec_standard));
    }

    #[test]
    #[should_panic(expected = "invalid cohort config")]
    fn bad_config_panics() {
        let _ = CohortGenerator::new(
            0,
            CohortConfig {
                frac_opioid_sensitive: 0.9,
                frac_sleep_apnea: 0.9,
                variability_sigma: 0.1,
            },
        );
    }

    #[test]
    fn take_yields_n_patients() {
        let g = CohortGenerator::new(3, CohortConfig::default());
        assert_eq!(g.take(5).count(), 5);
    }
}
