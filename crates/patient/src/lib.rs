//! # mcps-patient — virtual patient physiology
//!
//! The "physical" half of the medical cyber-physical system: a
//! mechanistic virtual patient that devices infuse drugs into and
//! sensors sample vital signs out of.
//!
//! * [`pk`] — two-compartment pharmacokinetics with an effect-site lag.
//! * [`physiology`] — opioid pharmacodynamics, gas exchange, vital signs.
//! * [`patient`] — the assembled [`patient::VirtualPatient`] plus
//!   ground-truth outcome tracking.
//! * [`cohort`] — reproducible randomized populations.
//! * [`drugs`] — opioid presets (morphine, hydromorphone, fentanyl).
//! * [`sensors`] — measurement noise, bias, dropouts and motion
//!   artifacts.
//! * [`vitals`] — the shared vital-sign vocabulary.
//!
//! ## Example
//!
//! ```
//! use mcps_patient::cohort::{CohortConfig, CohortGenerator};
//! use mcps_sim::rng::RngFactory;
//!
//! let cohort = CohortGenerator::new(42, CohortConfig::default());
//! let mut patient = cohort.patient(0);
//! let mut rng = RngFactory::new(42).stream("demo");
//! patient.give_bolus(1.0);
//! for _ in 0..300 {
//!     patient.advance(1.0, &mut rng);
//! }
//! println!("{}", patient.vitals());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohort;
pub mod drugs;
pub mod patient;
pub mod physiology;
pub mod pk;
pub mod sensors;
pub mod vitals;

pub use cohort::{CohortConfig, CohortGenerator};
pub use drugs::OpioidPreset;
pub use patient::{PatientOutcome, PatientParams, RiskGroup, VirtualPatient};
pub use sensors::{SensorReading, SensorSpec, SignalQuality, SimulatedSensor};
pub use vitals::{VitalKind, VitalsFrame};
