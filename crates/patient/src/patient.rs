//! The complete virtual patient: PK + physiology + pain behaviour +
//! ground-truth outcome tracking.
//!
//! A [`VirtualPatient`] is the plant in every closed-loop experiment:
//! devices administer drug into it and sensors sample vitals out of it,
//! while an [`OutcomeTracker`] records what *actually* happened
//! (independently of what any monitor displayed) so experiments can
//! score safety interventions against physiological truth.

use crate::physiology::{PhysioModel, PhysioParams};
use crate::pk::{PkModel, PkParams};
use crate::vitals::VitalsFrame;
use mcps_sim::rng::{bernoulli, normal};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Patient risk stratum, affecting opioid sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RiskGroup {
    /// Typical post-operative adult.
    #[default]
    Standard,
    /// Heightened pharmacodynamic sensitivity (e.g. elderly, opioid-naïve).
    OpioidSensitive,
    /// Obstructive sleep apnoea: faster desaturation, lower apnoea margin.
    SleepApnea,
}

/// Everything needed to instantiate one virtual patient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatientParams {
    /// Body weight, kg.
    pub weight_kg: f64,
    /// Pharmacokinetics.
    pub pk: PkParams,
    /// Physiology/pharmacodynamics.
    pub physio: PhysioParams,
    /// Initial pain drive on the 0–10 scale (before analgesia).
    pub pain_baseline: f64,
    /// Time constant (minutes) of the slow post-operative pain decay.
    pub pain_tau_min: f64,
    /// Patient button presses per hour at pain 10/10 (scales linearly
    /// down with perceived pain).
    pub demand_rate_at_max_pain: f64,
    /// Risk stratum (annotation; sensitivity is baked into `physio`).
    pub risk: RiskGroup,
}

impl Default for PatientParams {
    fn default() -> Self {
        PatientParams {
            weight_kg: 75.0,
            pk: PkParams::for_weight_kg(75.0),
            physio: PhysioParams::default(),
            pain_baseline: 6.0,
            pain_tau_min: 600.0,
            demand_rate_at_max_pain: 12.0,
            risk: RiskGroup::Standard,
        }
    }
}

/// Thresholds defining ground-truth adverse events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventThresholds {
    /// SpO₂ below this is hypoxaemia (%).
    pub hypox_spo2: f64,
    /// SpO₂ below this is *severe* hypoxaemia (%).
    pub severe_spo2: f64,
    /// A dip must persist this long (seconds) to count as an event.
    pub min_duration_secs: f64,
    /// Respiratory rate below this is respiratory depression.
    pub resp_depression_rr: f64,
}

impl Default for EventThresholds {
    fn default() -> Self {
        EventThresholds {
            hypox_spo2: 90.0,
            severe_spo2: 85.0,
            min_duration_secs: 30.0,
            resp_depression_rr: 8.0,
        }
    }
}

/// Accumulated ground-truth outcome of one patient run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PatientOutcome {
    /// Completed hypoxaemia episodes (SpO₂ < threshold, sustained).
    pub hypox_events: u32,
    /// Completed severe-hypoxaemia episodes.
    pub severe_hypox_events: u32,
    /// Completed respiratory-depression episodes (RR < threshold).
    pub resp_depression_events: u32,
    /// Total seconds with true SpO₂ below the hypoxaemia threshold.
    pub secs_below_hypox: f64,
    /// Total seconds with true SpO₂ below the severe threshold.
    pub secs_below_severe: f64,
    /// Lowest true SpO₂ seen, %.
    pub min_spo2: f64,
    /// Total observation time, seconds.
    pub observed_secs: f64,
    /// Time-average perceived pain (0–10).
    pub mean_pain: f64,
    /// Fraction of time with perceived pain ≤ 4 (adequate analgesia).
    pub frac_adequate_analgesia: f64,
}

/// Online detector of ground-truth adverse events.
///
/// Feed it one observation per simulation step; episodes require the
/// configured dwell time, so a single-sample dip does not count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutcomeTracker {
    thresholds: EventThresholds,
    hypox_run_secs: f64,
    severe_run_secs: f64,
    rr_run_secs: f64,
    in_hypox: bool,
    in_severe: bool,
    in_rr: bool,
    outcome: PatientOutcome,
    pain_integral: f64,
    analgesia_secs: f64,
}

impl OutcomeTracker {
    /// Creates a tracker with the given event definitions.
    pub fn new(thresholds: EventThresholds) -> Self {
        OutcomeTracker {
            thresholds,
            hypox_run_secs: 0.0,
            severe_run_secs: 0.0,
            rr_run_secs: 0.0,
            in_hypox: false,
            in_severe: false,
            in_rr: false,
            outcome: PatientOutcome { min_spo2: 100.0, ..PatientOutcome::default() },
            pain_integral: 0.0,
            analgesia_secs: 0.0,
        }
    }

    /// Records one step of `dt_secs` with the given true vitals and
    /// perceived pain.
    pub fn observe(&mut self, dt_secs: f64, vitals: &VitalsFrame, perceived_pain: f64) {
        let t = &self.thresholds;
        let o = &mut self.outcome;
        o.observed_secs += dt_secs;
        o.min_spo2 = o.min_spo2.min(vitals.spo2);
        self.pain_integral += perceived_pain * dt_secs;
        if perceived_pain <= 4.0 {
            self.analgesia_secs += dt_secs;
        }

        let dwell = |below: bool,
                     run: &mut f64,
                     active: &mut bool,
                     events: &mut u32,
                     secs: Option<&mut f64>| {
            if below {
                *run += dt_secs;
                if let Some(s) = secs {
                    *s += dt_secs;
                }
                if !*active && *run >= t.min_duration_secs {
                    *active = true;
                    *events += 1;
                }
            } else {
                *run = 0.0;
                *active = false;
            }
        };

        // Split borrows: copy counters out, write back after.
        let mut hypox_events = o.hypox_events;
        let mut severe_events = o.severe_hypox_events;
        let mut rr_events = o.resp_depression_events;
        dwell(
            vitals.spo2 < t.hypox_spo2,
            &mut self.hypox_run_secs,
            &mut self.in_hypox,
            &mut hypox_events,
            Some(&mut o.secs_below_hypox),
        );
        dwell(
            vitals.spo2 < t.severe_spo2,
            &mut self.severe_run_secs,
            &mut self.in_severe,
            &mut severe_events,
            Some(&mut o.secs_below_severe),
        );
        dwell(
            vitals.resp_rate < t.resp_depression_rr,
            &mut self.rr_run_secs,
            &mut self.in_rr,
            &mut rr_events,
            None,
        );
        o.hypox_events = hypox_events;
        o.severe_hypox_events = severe_events;
        o.resp_depression_events = rr_events;
    }

    /// Finalizes and returns the outcome.
    pub fn outcome(&self) -> PatientOutcome {
        let mut o = self.outcome;
        if o.observed_secs > 0.0 {
            o.mean_pain = self.pain_integral / o.observed_secs;
            o.frac_adequate_analgesia = self.analgesia_secs / o.observed_secs;
        }
        o
    }

    /// Whether a hypoxaemia episode is ongoing right now.
    pub fn in_hypoxemia(&self) -> bool {
        self.in_hypox
    }
}

impl Default for OutcomeTracker {
    fn default() -> Self {
        OutcomeTracker::new(EventThresholds::default())
    }
}

/// A complete simulated patient.
///
/// ```
/// use mcps_patient::patient::{PatientParams, VirtualPatient};
/// use mcps_sim::rng::RngFactory;
///
/// let mut rng = RngFactory::new(1).stream("patient");
/// let mut p = VirtualPatient::new(PatientParams::default());
/// p.give_bolus(1.0);
/// for _ in 0..600 {
///     p.advance(1.0, &mut rng);
/// }
/// assert!(p.vitals().spo2 > 90.0); // a single therapeutic bolus is safe
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualPatient {
    params: PatientParams,
    pk: PkModel,
    physio: PhysioModel,
    pain_drive: f64,
    elapsed_secs: f64,
    tracker: OutcomeTracker,
}

impl VirtualPatient {
    /// Instantiates the patient at drug-free equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if the embedded PK or physiology parameters are invalid.
    pub fn new(params: PatientParams) -> Self {
        VirtualPatient {
            pk: PkModel::new(params.pk),
            physio: PhysioModel::new(params.physio),
            pain_drive: params.pain_baseline,
            elapsed_secs: 0.0,
            tracker: OutcomeTracker::default(),
            params,
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &PatientParams {
        &self.params
    }

    /// Simulated time experienced by this patient, seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Current effect-site concentration, mg/L.
    pub fn effect_site_conc(&self) -> f64 {
        self.pk.effect_site_conc()
    }

    /// Total opioid administered so far, mg.
    pub fn total_drug_mg(&self) -> f64 {
        self.pk.total_administered_mg()
    }

    /// Current perceived pain (0–10 after analgesia).
    pub fn perceived_pain(&self) -> f64 {
        self.physio.perceived_pain(self.pk.effect_site_conc(), self.pain_drive)
    }

    /// Current true vitals.
    pub fn vitals(&self) -> VitalsFrame {
        self.physio.vitals(self.pk.effect_site_conc(), self.pain_drive)
    }

    /// Immediate IV bolus, mg.
    pub fn give_bolus(&mut self, mg: f64) {
        self.pk.give_bolus(mg);
    }

    /// Sets the background infusion rate, mg/min.
    pub fn set_infusion_rate(&mut self, mg_per_min: f64) {
        self.pk.set_infusion_rate(mg_per_min);
    }

    /// Advances physiology by `dt_secs`; `rng` drives the slow pain
    /// fluctuation.
    pub fn advance(&mut self, dt_secs: f64, rng: &mut impl RngCore) {
        self.pk.step(dt_secs);
        self.physio.step(self.pk.effect_site_conc(), dt_secs);
        // Pain: slow exponential recovery toward 1.5/10 plus a small
        // random walk (wound pain waxes and wanes).
        let dt_min = dt_secs / 60.0;
        let floor = 1.5;
        self.pain_drive += (floor - self.pain_drive) * dt_min / self.params.pain_tau_min;
        self.pain_drive += normal(rng, 0.0, 0.03 * dt_min.sqrt().max(0.01));
        self.pain_drive = self.pain_drive.clamp(0.0, 10.0);
        self.elapsed_secs += dt_secs;
        let vitals = self.vitals();
        let pain = self.perceived_pain();
        self.tracker.observe(dt_secs, &vitals, pain);
    }

    /// Whether the patient presses the PCA demand button during a step
    /// of `dt_secs`. Demand is a Poisson process whose rate scales with
    /// perceived pain; a pain-free (or unconscious) patient does not press.
    pub fn wants_bolus(&self, dt_secs: f64, rng: &mut impl RngCore) -> bool {
        let pain = self.perceived_pain();
        if pain < 1.0 || self.is_unconscious() {
            return false;
        }
        let rate_per_hour = self.params.demand_rate_at_max_pain * pain / 10.0;
        let p = rate_per_hour * dt_secs / 3600.0;
        bernoulli(rng, p)
    }

    /// Deeply sedated patients cannot press the button — exactly the
    /// inherent PCA safety feature that *fails* when a proxy presses it
    /// or an infusion stacks doses, which is why the interlock exists.
    pub fn is_unconscious(&self) -> bool {
        self.physio.depression(self.pk.effect_site_conc()) > 0.6
    }

    /// Ground-truth outcome so far.
    pub fn outcome(&self) -> PatientOutcome {
        self.tracker.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;

    fn rng() -> mcps_sim::rng::SimRng {
        RngFactory::new(11).stream("patient-test")
    }

    #[test]
    fn unmedicated_patient_stays_healthy() {
        let mut p = VirtualPatient::new(PatientParams::default());
        let mut r = rng();
        for _ in 0..(2 * 3600) {
            p.advance(1.0, &mut r);
        }
        let o = p.outcome();
        assert_eq!(o.severe_hypox_events, 0);
        assert_eq!(o.hypox_events, 0);
        assert!(o.min_spo2 > 94.0);
        // Untreated pain stays high.
        assert!(o.mean_pain > 4.0);
    }

    #[test]
    fn massive_overdose_causes_severe_event() {
        let mut p = VirtualPatient::new(PatientParams::default());
        let mut r = rng();
        p.give_bolus(15.0); // runaway pump worth of drug
        let mut was_unconscious = false;
        for _ in 0..(30 * 60) {
            p.advance(1.0, &mut r);
            was_unconscious |= p.is_unconscious();
        }
        let o = p.outcome();
        assert!(o.severe_hypox_events >= 1, "expected severe event, outcome {o:?}");
        assert!(o.min_spo2 < 80.0);
        assert!(was_unconscious, "patient should pass through deep sedation");
    }

    #[test]
    fn therapeutic_boluses_relieve_pain_safely() {
        let mut p = VirtualPatient::new(PatientParams::default());
        let mut r = rng();
        // 1 mg every 10 minutes for 2 h — a sane PCA pattern.
        for step in 0..(2 * 3600) {
            if step % 600 == 0 {
                p.give_bolus(1.0);
            }
            p.advance(1.0, &mut r);
        }
        let o = p.outcome();
        assert_eq!(o.severe_hypox_events, 0, "therapy should be safe: {o:?}");
        assert!(p.perceived_pain() < 4.0, "pain should be controlled, got {}", p.perceived_pain());
    }

    #[test]
    fn demand_tracks_pain() {
        let p = VirtualPatient::new(PatientParams::default());
        let mut r = rng();
        // In an hour of high pain, some demands occur.
        let demands = (0..3600).filter(|_| p.wants_bolus(1.0, &mut r)).count();
        assert!(demands >= 1, "painful patient should press the button");
        // A heavily sedated patient never presses.
        let mut sedated = VirtualPatient::new(PatientParams::default());
        sedated.give_bolus(20.0);
        let mut r2 = rng();
        for _ in 0..600 {
            sedated.advance(1.0, &mut r2);
        }
        assert!(sedated.is_unconscious());
        let d2 = (0..3600).filter(|_| sedated.wants_bolus(1.0, &mut r2)).count();
        assert_eq!(d2, 0);
    }

    #[test]
    fn outcome_tracker_requires_dwell() {
        let mut t = OutcomeTracker::default();
        let mut v = VitalsFrame {
            spo2: 97.0,
            heart_rate: 70.0,
            resp_rate: 14.0,
            etco2: 38.0,
            bp_systolic: 120.0,
            bp_diastolic: 80.0,
            minute_ventilation: 6.0,
        };
        // 10 s dip: too short to count.
        v.spo2 = 88.0;
        for _ in 0..10 {
            t.observe(1.0, &v, 0.0);
        }
        v.spo2 = 97.0;
        t.observe(1.0, &v, 0.0);
        assert_eq!(t.outcome().hypox_events, 0);
        // 40 s dip: one event, not re-counted while it persists.
        v.spo2 = 88.0;
        for _ in 0..40 {
            t.observe(1.0, &v, 0.0);
        }
        assert_eq!(t.outcome().hypox_events, 1);
        for _ in 0..100 {
            t.observe(1.0, &v, 0.0);
        }
        assert_eq!(t.outcome().hypox_events, 1);
        // Recovery then a second dip: second event.
        v.spo2 = 97.0;
        for _ in 0..10 {
            t.observe(1.0, &v, 0.0);
        }
        v.spo2 = 88.0;
        for _ in 0..40 {
            t.observe(1.0, &v, 0.0);
        }
        assert_eq!(t.outcome().hypox_events, 2);
        assert!((t.outcome().secs_below_hypox - 190.0).abs() < 1e-9);
    }

    #[test]
    fn advance_is_deterministic_for_same_seed() {
        let run = || {
            let mut p = VirtualPatient::new(PatientParams::default());
            let mut r = RngFactory::new(3).stream("det");
            p.give_bolus(2.0);
            for _ in 0..1800 {
                p.advance(1.0, &mut r);
            }
            (p.vitals().spo2, p.perceived_pain(), p.effect_site_conc())
        };
        assert_eq!(run(), run());
    }
}
