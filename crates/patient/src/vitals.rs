//! Vital-sign vocabulary shared by patients, sensors, devices and apps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The physiological quantities an MCPS observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VitalKind {
    /// Peripheral oxygen saturation, percent (SpO₂).
    Spo2,
    /// Heart rate, beats per minute.
    HeartRate,
    /// Respiratory rate, breaths per minute.
    RespRate,
    /// End-tidal CO₂ partial pressure, mmHg.
    Etco2,
    /// Systolic blood pressure, mmHg.
    BpSystolic,
    /// Diastolic blood pressure, mmHg.
    BpDiastolic,
    /// Minute ventilation, litres per minute.
    MinuteVentilation,
}

impl VitalKind {
    /// All kinds, in a stable order.
    pub const ALL: [VitalKind; 7] = [
        VitalKind::Spo2,
        VitalKind::HeartRate,
        VitalKind::RespRate,
        VitalKind::Etco2,
        VitalKind::BpSystolic,
        VitalKind::BpDiastolic,
        VitalKind::MinuteVentilation,
    ];

    /// Unit string for display.
    pub fn unit(self) -> &'static str {
        match self {
            VitalKind::Spo2 => "%",
            VitalKind::HeartRate => "bpm",
            VitalKind::RespRate => "breaths/min",
            VitalKind::Etco2 | VitalKind::BpSystolic | VitalKind::BpDiastolic => "mmHg",
            VitalKind::MinuteVentilation => "L/min",
        }
    }

    /// The physiologically representable range for this vital; sensor
    /// outputs are clamped into it.
    pub fn plausible_range(self) -> (f64, f64) {
        match self {
            VitalKind::Spo2 => (0.0, 100.0),
            VitalKind::HeartRate => (0.0, 300.0),
            VitalKind::RespRate => (0.0, 80.0),
            VitalKind::Etco2 => (0.0, 150.0),
            VitalKind::BpSystolic => (0.0, 300.0),
            VitalKind::BpDiastolic => (0.0, 200.0),
            VitalKind::MinuteVentilation => (0.0, 60.0),
        }
    }
}

impl fmt::Display for VitalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VitalKind::Spo2 => "SpO2",
            VitalKind::HeartRate => "HR",
            VitalKind::RespRate => "RR",
            VitalKind::Etco2 => "EtCO2",
            VitalKind::BpSystolic => "BPsys",
            VitalKind::BpDiastolic => "BPdia",
            VitalKind::MinuteVentilation => "MV",
        };
        f.write_str(s)
    }
}

/// A snapshot of every true (noise-free) vital at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VitalsFrame {
    /// SpO₂, percent.
    pub spo2: f64,
    /// Heart rate, bpm.
    pub heart_rate: f64,
    /// Respiratory rate, breaths/min.
    pub resp_rate: f64,
    /// End-tidal CO₂, mmHg.
    pub etco2: f64,
    /// Systolic blood pressure, mmHg.
    pub bp_systolic: f64,
    /// Diastolic blood pressure, mmHg.
    pub bp_diastolic: f64,
    /// Minute ventilation, L/min.
    pub minute_ventilation: f64,
}

impl VitalsFrame {
    /// The value of one vital kind in this frame.
    pub fn value(&self, kind: VitalKind) -> f64 {
        match kind {
            VitalKind::Spo2 => self.spo2,
            VitalKind::HeartRate => self.heart_rate,
            VitalKind::RespRate => self.resp_rate,
            VitalKind::Etco2 => self.etco2,
            VitalKind::BpSystolic => self.bp_systolic,
            VitalKind::BpDiastolic => self.bp_diastolic,
            VitalKind::MinuteVentilation => self.minute_ventilation,
        }
    }
}

impl fmt::Display for VitalsFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpO2={:.1}% HR={:.0} RR={:.1} EtCO2={:.1} BP={:.0}/{:.0} MV={:.1}",
            self.spo2,
            self.heart_rate,
            self.resp_rate,
            self.etco2,
            self.bp_systolic,
            self.bp_diastolic,
            self.minute_ventilation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_and_display_nonempty() {
        for k in VitalKind::ALL {
            assert!(!k.unit().is_empty());
            assert!(!k.to_string().is_empty());
            let (lo, hi) = k.plausible_range();
            assert!(lo < hi);
        }
    }

    #[test]
    fn frame_value_matches_fields() {
        let f = VitalsFrame {
            spo2: 97.0,
            heart_rate: 70.0,
            resp_rate: 14.0,
            etco2: 38.0,
            bp_systolic: 120.0,
            bp_diastolic: 80.0,
            minute_ventilation: 6.0,
        };
        assert_eq!(f.value(VitalKind::Spo2), 97.0);
        assert_eq!(f.value(VitalKind::MinuteVentilation), 6.0);
        assert!(f.to_string().contains("SpO2=97.0%"));
    }
}
