//! Pharmacodynamics and cardio-respiratory physiology.
//!
//! Maps the opioid effect-site concentration produced by
//! [`PkModel`](crate::pk::PkModel) to the vital signs an MCPS can
//! observe, via a compact mechanistic chain:
//!
//! ```text
//! Ce ──Hill──► ventilatory depression ──► minute ventilation
//!     ──Hill──► analgesia ──► perceived pain
//! MV ──alveolar gas exchange (1st-order)──► PaCO₂ ──► PaO₂ ──ODC──► SpO₂
//! pain, depression, hypoxia ──► heart rate, blood pressure
//! ```
//!
//! The oxyhaemoglobin dissociation curve uses the Severinghaus
//! approximation; the CO₂/O₂ stores respond with first-order time
//! constants so hypoxaemia develops over minutes after an overdose —
//! the latency window a PCA safety interlock must beat.

use crate::vitals::VitalsFrame;
use serde::{Deserialize, Serialize};

/// Pharmacodynamic and physiological parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysioParams {
    /// Baseline respiratory rate, breaths/min.
    pub rr0: f64,
    /// Baseline heart rate, bpm.
    pub hr0: f64,
    /// Baseline minute ventilation, L/min.
    pub mv0: f64,
    /// Baseline systolic blood pressure, mmHg.
    pub bp_sys0: f64,
    /// Baseline diastolic blood pressure, mmHg.
    pub bp_dia0: f64,
    /// Baseline arterial CO₂ tension, mmHg.
    pub paco2_0: f64,
    /// Effect-site concentration producing half-maximal ventilatory
    /// depression, mg/L. Lower ⇒ more opioid-sensitive patient.
    pub ec50_depression: f64,
    /// Hill exponent of ventilatory depression.
    pub gamma_depression: f64,
    /// Maximal fractional depression of minute ventilation (0–1).
    pub emax_depression: f64,
    /// Effect-site concentration above which breathing effectively
    /// ceases (apnoea), mg/L.
    pub apnea_ce: f64,
    /// Effect-site concentration producing half-maximal analgesia, mg/L.
    pub ec50_analgesia: f64,
    /// Hill exponent of analgesia.
    pub gamma_analgesia: f64,
    /// Time constant of the body's CO₂ store, minutes.
    pub tau_co2_min: f64,
    /// Time constant of the lung/blood O₂ store, minutes.
    pub tau_o2_min: f64,
    /// Alveolar–arterial oxygen gradient, mmHg.
    pub aa_gradient: f64,
    /// Inspired oxygen fraction (0.21 = room air).
    pub fio2: f64,
}

impl Default for PhysioParams {
    fn default() -> Self {
        PhysioParams {
            rr0: 14.0,
            hr0: 72.0,
            mv0: 6.0,
            bp_sys0: 120.0,
            bp_dia0: 78.0,
            paco2_0: 40.0,
            ec50_depression: 0.15,
            gamma_depression: 4.0,
            emax_depression: 0.95,
            apnea_ce: 0.35,
            ec50_analgesia: 0.05,
            gamma_analgesia: 2.0,
            tau_co2_min: 3.0,
            tau_o2_min: 0.8,
            aa_gradient: 10.0,
            fio2: 0.21,
        }
    }
}

impl PhysioParams {
    /// Validates parameter sanity (positive rates, fractions in range).
    pub fn validate(&self) -> Result<(), String> {
        let positives = [
            ("rr0", self.rr0),
            ("hr0", self.hr0),
            ("mv0", self.mv0),
            ("bp_sys0", self.bp_sys0),
            ("bp_dia0", self.bp_dia0),
            ("paco2_0", self.paco2_0),
            ("ec50_depression", self.ec50_depression),
            ("gamma_depression", self.gamma_depression),
            ("apnea_ce", self.apnea_ce),
            ("ec50_analgesia", self.ec50_analgesia),
            ("gamma_analgesia", self.gamma_analgesia),
            ("tau_co2_min", self.tau_co2_min),
            ("tau_o2_min", self.tau_o2_min),
        ];
        for (name, v) in positives {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("physiology parameter {name} must be positive, got {v}"));
            }
        }
        if !(0.0..=1.0).contains(&self.emax_depression) {
            return Err(format!("emax_depression must be in [0,1], got {}", self.emax_depression));
        }
        if !(0.15..=1.0).contains(&self.fio2) {
            return Err(format!("fio2 must be in [0.15,1], got {}", self.fio2));
        }
        Ok(())
    }
}

/// The slow physiological state (gas stores).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysioState {
    /// Arterial CO₂ tension, mmHg.
    pub paco2: f64,
    /// Arterial O₂ tension, mmHg.
    pub pao2: f64,
}

/// Severinghaus approximation of the oxyhaemoglobin dissociation curve:
/// arterial O₂ tension (mmHg) → SaO₂ (%).
pub fn severinghaus_spo2(pao2: f64) -> f64 {
    let p = pao2.max(1.0);
    100.0 / (1.0 + 23_400.0 / (p * p * p + 150.0 * p))
}

/// The cardio-respiratory model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysioModel {
    params: PhysioParams,
    state: PhysioState,
}

impl PhysioModel {
    /// Creates a model at its drug-free equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PhysioParams::validate`].
    pub fn new(params: PhysioParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid physiology parameters: {e}");
        }
        let pao2_eq = Self::pao2_target(&params, params.paco2_0);
        PhysioModel { params, state: PhysioState { paco2: params.paco2_0, pao2: pao2_eq } }
    }

    /// The model parameters.
    pub fn params(&self) -> &PhysioParams {
        &self.params
    }

    /// The gas-store state.
    pub fn state(&self) -> PhysioState {
        self.state
    }

    /// Fractional ventilatory depression at effect-site concentration
    /// `ce` (0 = none, 1 = apnoea).
    pub fn depression(&self, ce: f64) -> f64 {
        let p = &self.params;
        if ce >= p.apnea_ce {
            return 1.0;
        }
        let ratio = (ce.max(0.0) / p.ec50_depression).powf(p.gamma_depression);
        p.emax_depression * ratio / (1.0 + ratio)
    }

    /// Fractional analgesia at `ce` (0 = none, 1 = complete).
    pub fn analgesia(&self, ce: f64) -> f64 {
        let p = &self.params;
        let ratio = (ce.max(0.0) / p.ec50_analgesia).powf(p.gamma_analgesia);
        ratio / (1.0 + ratio)
    }

    /// Minute ventilation (L/min) at `ce`.
    pub fn minute_ventilation(&self, ce: f64) -> f64 {
        (self.params.mv0 * (1.0 - self.depression(ce))).max(0.05)
    }

    fn paco2_target_for_mv(params: &PhysioParams, mv: f64) -> f64 {
        (params.paco2_0 * params.mv0 / mv.max(0.3)).min(95.0)
    }

    fn pao2_target(params: &PhysioParams, paco2: f64) -> f64 {
        let pio2 = params.fio2 * (760.0 - 47.0);
        (pio2 - paco2 / 0.8 - params.aa_gradient).max(5.0)
    }

    /// Advances the gas stores by `dt_secs` seconds at effect-site
    /// concentration `ce`.
    pub fn step(&mut self, ce: f64, dt_secs: f64) {
        debug_assert!(dt_secs > 0.0 && dt_secs.is_finite());
        let dt_min = dt_secs / 60.0;
        let p = self.params;
        let mv = self.minute_ventilation(ce);
        let paco2_t = Self::paco2_target_for_mv(&p, mv);
        let pao2_t = Self::pao2_target(&p, self.state.paco2);
        // Exponential relaxation toward the quasi-steady targets.
        let relax = |x: f64, target: f64, tau: f64| target + (x - target) * (-dt_min / tau).exp();
        self.state.paco2 = relax(self.state.paco2, paco2_t, p.tau_co2_min);
        self.state.pao2 = relax(self.state.pao2, pao2_t, p.tau_o2_min);
    }

    /// The complete true vitals frame at effect-site concentration `ce`
    /// and perceived pain drive `pain` (0–10 scale before analgesia).
    pub fn vitals(&self, ce: f64, pain: f64) -> VitalsFrame {
        let p = &self.params;
        let e = self.depression(ce);
        let spo2 = severinghaus_spo2(self.state.pao2);
        let perceived_pain = self.perceived_pain(ce, pain);
        // Tachycardia from pain and compensatory response to hypoxia;
        // bradycardic drift from the opioid itself.
        let hypoxia_drive = (90.0 - spo2).max(0.0) * 1.2;
        let hr = (p.hr0 + 2.2 * perceived_pain + hypoxia_drive - 0.18 * p.hr0 * e).max(25.0);
        let bp_sys = (p.bp_sys0 + 1.8 * perceived_pain - 18.0 * e).max(50.0);
        let bp_dia = (p.bp_dia0 + 1.0 * perceived_pain - 12.0 * e).max(30.0);
        let rr = if e >= 1.0 { 0.0 } else { (p.rr0 * (1.0 - 0.75 * e)).max(2.0) };
        let mv = self.minute_ventilation(ce);
        // End-tidal CO₂ tracks arterial minus a small gradient while the
        // patient breathes; in apnoea there is no expired gas to measure.
        let etco2 = if e >= 1.0 { 0.0 } else { (self.state.paco2 - 3.0).max(0.0) };
        VitalsFrame {
            spo2,
            heart_rate: hr,
            resp_rate: rr,
            etco2,
            bp_systolic: bp_sys,
            bp_diastolic: bp_dia,
            minute_ventilation: mv,
        }
    }

    /// Pain after analgesia, on the 0–10 numeric rating scale.
    pub fn perceived_pain(&self, ce: f64, pain_drive: f64) -> f64 {
        (pain_drive * (1.0 - self.analgesia(ce))).clamp(0.0, 10.0)
    }
}

impl Default for PhysioModel {
    fn default() -> Self {
        PhysioModel::new(PhysioParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(m: &mut PhysioModel, ce: f64, secs: u64) {
        for _ in 0..secs {
            m.step(ce, 1.0);
        }
    }

    #[test]
    fn baseline_is_healthy() {
        let m = PhysioModel::default();
        let v = m.vitals(0.0, 0.0);
        assert!(v.spo2 > 95.0, "baseline SpO2 {}", v.spo2);
        assert!((v.resp_rate - 14.0).abs() < 0.5);
        assert!((v.etco2 - 37.0).abs() < 2.0);
        assert!((v.heart_rate - 72.0).abs() < 2.0);
    }

    #[test]
    fn severinghaus_curve_shape() {
        assert!(severinghaus_spo2(100.0) > 97.0);
        assert!(severinghaus_spo2(60.0) > 88.0 && severinghaus_spo2(60.0) < 93.0);
        assert!(severinghaus_spo2(40.0) < 80.0);
        assert!(severinghaus_spo2(27.0) < 55.0);
        // Monotone.
        let mut prev = 0.0;
        for p in 1..150 {
            let s = severinghaus_spo2(p as f64);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn therapeutic_ce_barely_depresses() {
        let mut m = PhysioModel::default();
        settle(&mut m, 0.06, 30 * 60);
        let v = m.vitals(0.06, 5.0);
        assert!(v.spo2 > 93.0, "therapeutic SpO2 {}", v.spo2);
        assert!(v.resp_rate > 10.0);
        // But it does provide meaningful analgesia.
        assert!(m.analgesia(0.06) > 0.5);
    }

    #[test]
    fn overdose_causes_progressive_desaturation() {
        let mut m = PhysioModel::default();
        let ce = 0.25; // well above EC50, below apnoea
        let spo2_1min = {
            settle(&mut m, ce, 60);
            m.vitals(ce, 0.0).spo2
        };
        let spo2_10min = {
            settle(&mut m, ce, 9 * 60);
            m.vitals(ce, 0.0).spo2
        };
        assert!(spo2_1min > spo2_10min, "desaturation should deepen: {spo2_1min} vs {spo2_10min}");
        assert!(spo2_10min < 88.0, "overdose should cause hypoxaemia, got {spo2_10min}");
        // The delay is what the interlock exploits: at 1 min the patient
        // is not yet critically desaturated.
        assert!(spo2_1min > 90.0, "desaturation must take minutes, got {spo2_1min} at 1min");
    }

    #[test]
    fn apnea_stops_breathing() {
        let mut m = PhysioModel::default();
        let ce = 0.4;
        assert_eq!(m.depression(ce), 1.0);
        settle(&mut m, ce, 5 * 60);
        let v = m.vitals(ce, 0.0);
        assert_eq!(v.resp_rate, 0.0);
        assert_eq!(v.etco2, 0.0);
        assert!(v.spo2 < 75.0);
    }

    #[test]
    fn recovery_after_drug_clears() {
        let mut m = PhysioModel::default();
        settle(&mut m, 0.3, 10 * 60);
        assert!(m.vitals(0.3, 0.0).spo2 < 90.0);
        settle(&mut m, 0.0, 15 * 60);
        assert!(m.vitals(0.0, 0.0).spo2 > 95.0, "patient should reoxygenate");
    }

    #[test]
    fn pain_raises_hr_and_analgesia_lowers_it() {
        let m = PhysioModel::default();
        let hurting = m.vitals(0.0, 8.0);
        let comfortable = m.vitals(0.08, 8.0);
        assert!(hurting.heart_rate > comfortable.heart_rate);
        assert!(m.perceived_pain(0.0, 8.0) > m.perceived_pain(0.08, 8.0));
    }

    #[test]
    fn hypoxia_triggers_compensatory_tachycardia() {
        let mut m = PhysioModel::default();
        settle(&mut m, 0.3, 10 * 60);
        let v = m.vitals(0.3, 0.0);
        assert!(v.spo2 < 88.0);
        assert!(
            v.heart_rate > m.params().hr0,
            "hypoxic HR {} should exceed baseline",
            v.heart_rate
        );
    }

    #[test]
    fn depression_is_monotone_in_ce() {
        let m = PhysioModel::default();
        let mut prev = -1.0;
        for i in 0..50 {
            let d = m.depression(i as f64 * 0.01);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "invalid physiology parameters")]
    fn invalid_params_panic() {
        let p = PhysioParams { mv0: -1.0, ..PhysioParams::default() };
        let _ = PhysioModel::new(p);
    }
}
