//! Two-compartment pharmacokinetic model with an effect-site compartment.
//!
//! Drug amounts live in a central (plasma) and a peripheral (tissue)
//! compartment; the clinical effect is driven by the *effect-site*
//! concentration, which lags plasma concentration with first-order
//! kinetics. This is the standard structure used for opioids in the
//! closed-loop PCA literature; parameters here are plausible for a
//! morphine-like agent and scale with patient weight.
//!
//! ```
//! use mcps_patient::pk::{PkModel, PkParams};
//!
//! let mut pk = PkModel::new(PkParams::for_weight_kg(70.0));
//! pk.give_bolus(2.0); // mg
//! for _ in 0..600 {
//!     pk.step(1.0); // one second per step
//! }
//! assert!(pk.effect_site_conc() > 0.0);
//! ```

use serde::{Deserialize, Serialize};

/// Rate constants and volumes of the PK model. Rates are per **minute**;
/// volumes in litres; concentrations in mg/L; infusion input in mg/min.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PkParams {
    /// Elimination rate from the central compartment (1/min).
    pub k10: f64,
    /// Central → peripheral distribution rate (1/min).
    pub k12: f64,
    /// Peripheral → central redistribution rate (1/min).
    pub k21: f64,
    /// Plasma ↔ effect-site equilibration rate (1/min).
    pub ke0: f64,
    /// Central volume of distribution (L).
    pub v1: f64,
}

impl PkParams {
    /// Nominal parameters for a patient of the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight_kg` is not positive and finite.
    pub fn for_weight_kg(weight_kg: f64) -> Self {
        assert!(weight_kg.is_finite() && weight_kg > 0.0, "weight must be positive");
        PkParams { k10: 0.07, k12: 0.11, k21: 0.05, ke0: 0.12, v1: 0.18 * weight_kg }
    }

    /// Validates that every parameter is positive and finite.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("k10", self.k10),
            ("k12", self.k12),
            ("k21", self.k21),
            ("ke0", self.ke0),
            ("v1", self.v1),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("PK parameter {name} must be positive, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for PkParams {
    fn default() -> Self {
        PkParams::for_weight_kg(70.0)
    }
}

/// Integrable PK state: drug amounts and effect-site concentration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PkState {
    /// Drug amount in the central compartment (mg).
    pub a_central: f64,
    /// Drug amount in the peripheral compartment (mg).
    pub a_peripheral: f64,
    /// Effect-site concentration (mg/L).
    pub ce: f64,
}

/// The PK model: parameters + state + infusion input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PkModel {
    params: PkParams,
    state: PkState,
    /// Continuous infusion rate, mg/min.
    infusion_mg_per_min: f64,
    /// Cumulative drug ever administered, mg.
    total_administered_mg: f64,
}

impl PkModel {
    /// Creates a drug-free model.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PkParams::validate`].
    pub fn new(params: PkParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid PK parameters: {e}");
        }
        PkModel {
            params,
            state: PkState::default(),
            infusion_mg_per_min: 0.0,
            total_administered_mg: 0.0,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &PkParams {
        &self.params
    }

    /// Current integrable state.
    pub fn state(&self) -> PkState {
        self.state
    }

    /// Plasma concentration, mg/L.
    pub fn plasma_conc(&self) -> f64 {
        self.state.a_central / self.params.v1
    }

    /// Effect-site concentration, mg/L — the quantity that drives
    /// pharmacodynamics.
    pub fn effect_site_conc(&self) -> f64 {
        self.state.ce
    }

    /// Total drug administered so far, mg.
    pub fn total_administered_mg(&self) -> f64 {
        self.total_administered_mg
    }

    /// Current continuous infusion rate, mg/min.
    pub fn infusion_rate(&self) -> f64 {
        self.infusion_mg_per_min
    }

    /// Instantaneously adds `mg` of drug to the central compartment.
    /// Negative or non-finite doses are ignored.
    pub fn give_bolus(&mut self, mg: f64) {
        if mg.is_finite() && mg > 0.0 {
            self.state.a_central += mg;
            self.total_administered_mg += mg;
        }
    }

    /// Sets the continuous infusion rate (mg/min); clamped at zero.
    pub fn set_infusion_rate(&mut self, mg_per_min: f64) {
        self.infusion_mg_per_min = if mg_per_min.is_finite() { mg_per_min.max(0.0) } else { 0.0 };
    }

    fn derivatives(&self, s: &PkState) -> PkState {
        let p = &self.params;
        let cp = s.a_central / p.v1;
        PkState {
            a_central: self.infusion_mg_per_min - (p.k10 + p.k12) * s.a_central
                + p.k21 * s.a_peripheral,
            a_peripheral: p.k12 * s.a_central - p.k21 * s.a_peripheral,
            ce: p.ke0 * (cp - s.ce),
        }
    }

    /// Advances the model by `dt_secs` seconds using one RK4 step.
    ///
    /// Steps of ≤ 5 s are well inside the stability region for the
    /// nominal rate constants.
    pub fn step(&mut self, dt_secs: f64) {
        debug_assert!(dt_secs > 0.0 && dt_secs.is_finite());
        let dt_min = dt_secs / 60.0;
        let add = |s: &PkState, d: &PkState, h: f64| PkState {
            a_central: s.a_central + d.a_central * h,
            a_peripheral: s.a_peripheral + d.a_peripheral * h,
            ce: s.ce + d.ce * h,
        };
        let s = self.state;
        let k1 = self.derivatives(&s);
        let k2 = self.derivatives(&add(&s, &k1, dt_min / 2.0));
        let k3 = self.derivatives(&add(&s, &k2, dt_min / 2.0));
        let k4 = self.derivatives(&add(&s, &k3, dt_min));
        self.state = PkState {
            a_central: (s.a_central
                + dt_min / 6.0
                    * (k1.a_central + 2.0 * k2.a_central + 2.0 * k3.a_central + k4.a_central))
                .max(0.0),
            a_peripheral: (s.a_peripheral
                + dt_min / 6.0
                    * (k1.a_peripheral
                        + 2.0 * k2.a_peripheral
                        + 2.0 * k3.a_peripheral
                        + k4.a_peripheral))
                .max(0.0),
            ce: (s.ce + dt_min / 6.0 * (k1.ce + 2.0 * k2.ce + 2.0 * k3.ce + k4.ce)).max(0.0),
        };
        self.total_administered_mg += self.infusion_mg_per_min * dt_min;
    }
}

impl Default for PkModel {
    fn default() -> Self {
        PkModel::new(PkParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_secs(pk: &mut PkModel, secs: u64) {
        for _ in 0..secs {
            pk.step(1.0);
        }
    }

    #[test]
    fn bolus_raises_then_decays() {
        let mut pk = PkModel::default();
        pk.give_bolus(5.0);
        let c0 = pk.plasma_conc();
        assert!(c0 > 0.0);
        run_secs(&mut pk, 60 * 60); // 1 hour
        let c1 = pk.plasma_conc();
        assert!(c1 < c0, "plasma should decay: {c1} !< {c0}");
        run_secs(&mut pk, 5 * 60 * 60);
        assert!(pk.plasma_conc() < 0.1 * c0, "most drug eliminated after 6h");
    }

    #[test]
    fn effect_site_lags_plasma() {
        let mut pk = PkModel::default();
        pk.give_bolus(5.0);
        // Immediately after the bolus: plasma high, effect site ~0.
        assert!(pk.effect_site_conc() < 1e-9);
        run_secs(&mut pk, 120);
        let ce_2min = pk.effect_site_conc();
        assert!(ce_2min > 0.0 && ce_2min < pk.plasma_conc());
        // Peak effect-site concentration occurs minutes after the bolus.
        let mut peak_at = 0u64;
        let mut peak = ce_2min;
        let mut t = 120u64;
        for _ in 0..(40 * 60) {
            pk.step(1.0);
            t += 1;
            if pk.effect_site_conc() > peak {
                peak = pk.effect_site_conc();
                peak_at = t;
            }
        }
        assert!(peak_at > 300, "Ce peak should come minutes after bolus, got {peak_at}s");
    }

    #[test]
    fn infusion_reaches_steady_state() {
        let mut pk = PkModel::default();
        pk.set_infusion_rate(0.05); // mg/min
        run_secs(&mut pk, 12 * 60 * 60);
        let c_ss = pk.plasma_conc();
        // Analytic steady state: rate / (k10 * V1).
        let expected = 0.05 / (pk.params().k10 * pk.params().v1);
        assert!((c_ss - expected).abs() / expected < 0.02, "c_ss={c_ss} expected={expected}");
        // Effect site equilibrates to plasma at steady state.
        assert!((pk.effect_site_conc() - c_ss).abs() / c_ss < 0.02);
    }

    #[test]
    fn mass_balance_is_conserved_without_elimination() {
        let params = PkParams { k10: 1e-9, ..PkParams::default() }; // effectively no elimination
        let mut pk = PkModel::new(params);
        pk.give_bolus(10.0);
        run_secs(&mut pk, 3600);
        let total = pk.state().a_central + pk.state().a_peripheral;
        assert!((total - 10.0).abs() < 0.01, "mass drifted to {total}");
    }

    #[test]
    fn negative_inputs_rejected() {
        let mut pk = PkModel::default();
        pk.give_bolus(-3.0);
        pk.give_bolus(f64::NAN);
        assert_eq!(pk.total_administered_mg(), 0.0);
        pk.set_infusion_rate(-1.0);
        assert_eq!(pk.infusion_rate(), 0.0);
    }

    #[test]
    fn total_administered_counts_infusion() {
        let mut pk = PkModel::default();
        pk.set_infusion_rate(1.0); // mg/min
        run_secs(&mut pk, 600); // 10 min
        assert!((pk.total_administered_mg() - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid PK parameters")]
    fn invalid_params_panic() {
        let p = PkParams { v1: 0.0, ..PkParams::default() };
        let _ = PkModel::new(p);
    }

    #[test]
    fn weight_scaling() {
        let light = PkParams::for_weight_kg(50.0);
        let heavy = PkParams::for_weight_kg(100.0);
        assert!(heavy.v1 > light.v1);
        // Same bolus produces lower concentration in the heavier patient.
        let mut a = PkModel::new(light);
        let mut b = PkModel::new(heavy);
        a.give_bolus(2.0);
        b.give_bolus(2.0);
        assert!(a.plasma_conc() > b.plasma_conc());
    }
}
