//! Opioid presets: PK/PD parameter sets for the agents a PCA service
//! actually stocks.
//!
//! Different opioids differ in *kinetics* (fentanyl equilibrates with
//! the effect site in minutes, morphine in tens of minutes) and in
//! *potency* (hydromorphone needs ~5× less drug than morphine for the
//! same effect). Both differences matter to closed-loop safety: a
//! fast-onset agent shortens the window an interlock has to react, and
//! a high-potency agent shrinks the absolute dose error that causes
//! harm. [`OpioidPreset`] adapts a [`PatientParams`] to a chosen agent.

use crate::patient::PatientParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The stocked agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpioidPreset {
    /// Reference agent: slow effect-site equilibration, potency 1×.
    Morphine,
    /// ~5× potency of morphine, similar kinetics class.
    Hydromorphone,
    /// ~80× potency, very fast effect-site equilibration — the
    /// stress case for interlock timing.
    Fentanyl,
}

impl OpioidPreset {
    /// All presets.
    pub const ALL: [OpioidPreset; 3] =
        [OpioidPreset::Morphine, OpioidPreset::Hydromorphone, OpioidPreset::Fentanyl];

    /// Analgesic potency relative to morphine (mg-for-mg).
    pub fn relative_potency(&self) -> f64 {
        match self {
            OpioidPreset::Morphine => 1.0,
            OpioidPreset::Hydromorphone => 5.0,
            OpioidPreset::Fentanyl => 80.0,
        }
    }

    /// Plasma↔effect-site equilibration rate, 1/min (higher = faster
    /// onset).
    pub fn ke0_per_min(&self) -> f64 {
        match self {
            OpioidPreset::Morphine => 0.12,
            OpioidPreset::Hydromorphone => 0.14,
            OpioidPreset::Fentanyl => 0.50,
        }
    }

    /// Elimination rate from the central compartment, 1/min.
    pub fn k10_per_min(&self) -> f64 {
        match self {
            OpioidPreset::Morphine => 0.07,
            OpioidPreset::Hydromorphone => 0.08,
            OpioidPreset::Fentanyl => 0.10,
        }
    }

    /// A typical PCA bolus dose for this agent, mg.
    pub fn typical_bolus_mg(&self) -> f64 {
        1.0 / self.relative_potency()
    }

    /// Adapts patient parameters to this agent: kinetics on the PK
    /// side; EC50s scaled down by potency on the PD side (more potent
    /// drug ⇒ effect at lower concentration).
    pub fn apply(&self, mut params: PatientParams) -> PatientParams {
        params.pk.ke0 = self.ke0_per_min();
        params.pk.k10 = self.k10_per_min();
        let potency = self.relative_potency();
        params.physio.ec50_depression /= potency;
        params.physio.ec50_analgesia /= potency;
        params.physio.apnea_ce /= potency;
        params
    }
}

impl fmt::Display for OpioidPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpioidPreset::Morphine => "morphine",
            OpioidPreset::Hydromorphone => "hydromorphone",
            OpioidPreset::Fentanyl => "fentanyl",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patient::VirtualPatient;
    use mcps_sim::rng::RngFactory;

    /// Time (seconds) for the effect-site concentration to reach 80 %
    /// of its 10-minute value after an equianalgesic bolus.
    fn onset_secs(preset: OpioidPreset) -> u64 {
        let params = preset.apply(PatientParams::default());
        let mut p = VirtualPatient::new(params);
        let mut rng = RngFactory::new(1).stream("drug");
        p.give_bolus(preset.typical_bolus_mg());
        let mut history = Vec::new();
        for _ in 0..600 {
            p.advance(1.0, &mut rng);
            history.push(p.effect_site_conc());
        }
        let target = history.last().unwrap() * 0.8;
        history.iter().position(|&c| c >= target).unwrap_or(600) as u64
    }

    #[test]
    fn fentanyl_onsets_much_faster_than_morphine() {
        let f = onset_secs(OpioidPreset::Fentanyl);
        let m = onset_secs(OpioidPreset::Morphine);
        assert!(f * 2 < m, "fentanyl {f}s vs morphine {m}s");
    }

    #[test]
    fn equianalgesic_boluses_produce_similar_analgesia() {
        // 1 mg morphine ≈ 0.2 mg hydromorphone ≈ 0.0125 mg fentanyl:
        // steady equianalgesic infusions should yield comparable
        // analgesia fractions.
        let mut fracs = Vec::new();
        for preset in OpioidPreset::ALL {
            let params = preset.apply(PatientParams::default());
            let mut p = VirtualPatient::new(params);
            let mut rng = RngFactory::new(2).stream("equi");
            // Infusion equivalent to 2 mg/h morphine.
            p.set_infusion_rate(2.0 / 60.0 / preset.relative_potency());
            for _ in 0..(3 * 3600) {
                p.advance(1.0, &mut rng);
            }
            let physio = mcps_patient_physio(&p);
            fracs.push(physio);
        }
        let (lo, hi) = (
            fracs.iter().cloned().fold(f64::INFINITY, f64::min),
            fracs.iter().cloned().fold(0.0f64, f64::max),
        );
        assert!(hi - lo < 0.25, "analgesia spread too wide: {fracs:?}");
    }

    fn mcps_patient_physio(p: &VirtualPatient) -> f64 {
        // Analgesia fraction proxy: current analgesia effect.
        let params = p.params();
        let ratio = (p.effect_site_conc() / params.physio.ec50_analgesia)
            .powf(params.physio.gamma_analgesia);
        ratio / (1.0 + ratio)
    }

    #[test]
    fn potency_scales_dangerous_dose() {
        // The same 2 mg bolus that is therapeutic morphine is a
        // catastrophic fentanyl overdose.
        let check = |preset: OpioidPreset| -> f64 {
            let params = preset.apply(PatientParams::default());
            let mut p = VirtualPatient::new(params);
            let mut rng = RngFactory::new(3).stream("potency");
            p.give_bolus(2.0);
            let mut min_spo2: f64 = 100.0;
            for _ in 0..(20 * 60) {
                p.advance(1.0, &mut rng);
                min_spo2 = min_spo2.min(p.vitals().spo2);
            }
            min_spo2
        };
        let morphine = check(OpioidPreset::Morphine);
        let fentanyl = check(OpioidPreset::Fentanyl);
        assert!(morphine > 93.0, "2mg morphine is safe, got SpO2 {morphine}");
        assert!(fentanyl < 80.0, "2mg fentanyl is an overdose, got SpO2 {fentanyl}");
    }

    #[test]
    fn typical_boluses_are_equianalgesic_by_construction() {
        for preset in OpioidPreset::ALL {
            let equivalent = preset.typical_bolus_mg() * preset.relative_potency();
            assert!((equivalent - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(OpioidPreset::Fentanyl.to_string(), "fentanyl");
        assert_eq!(OpioidPreset::ALL.len(), 3);
    }
}
