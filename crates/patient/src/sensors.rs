//! Sensor imperfection models.
//!
//! Clinical sensors do not report physiological truth: pulse oximeters
//! drop out and read falsely low under motion, capnography lines kink,
//! ECG leads detach. These artifacts are the dominant source of the
//! false alarms the paper's "smart alarm" agenda targets, so they are
//! modelled explicitly and applied *between* the virtual patient and
//! every monitoring device.

use crate::vitals::VitalKind;
use mcps_sim::rng::{bernoulli, exponential, normal};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// How an artifact episode corrupts readings while it is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArtifactMode {
    /// No reading at all (probe off, lead detached).
    Dropout,
    /// Readings are depressed by a fraction of the true value
    /// (e.g. motion artifact on SpO₂).
    DepressedBy(f64),
    /// Readings spike upward by a fraction of the true value.
    ElevatedBy(f64),
}

/// Quality annotation attached to each reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalQuality {
    /// Normal measurement (noise and bias only).
    Good,
    /// An artifact episode is corrupting the value.
    Artifact,
    /// No value could be produced.
    Missing,
}

/// One sensor measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Measured value, if any.
    pub value: Option<f64>,
    /// Honest quality flag. Real devices often *don't* know their
    /// signal is artifactual — alarm algorithms must not rely on it;
    /// it exists so experiments can compute ground-truth confusion
    /// matrices.
    pub quality: SignalQuality,
}

/// Stochastic description of a sensor's imperfections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    /// Standard deviation of additive Gaussian noise.
    pub noise_std: f64,
    /// Constant additive bias.
    pub bias: f64,
    /// Artifact episodes per hour.
    pub artifact_rate_per_hour: f64,
    /// Mean artifact episode duration, seconds.
    pub artifact_mean_secs: f64,
    /// What an artifact does to the signal.
    pub artifact_mode: ArtifactMode,
    /// Reading resolution (0 = continuous).
    pub quantization: f64,
}

impl SensorSpec {
    /// A perfect sensor (for debugging and unit tests).
    pub fn ideal() -> Self {
        SensorSpec {
            noise_std: 0.0,
            bias: 0.0,
            artifact_rate_per_hour: 0.0,
            artifact_mean_secs: 0.0,
            artifact_mode: ArtifactMode::Dropout,
            quantization: 0.0,
        }
    }

    /// Representative clinical imperfections for each vital.
    pub fn default_for(kind: VitalKind) -> Self {
        match kind {
            VitalKind::Spo2 => SensorSpec {
                noise_std: 0.6,
                bias: 0.0,
                artifact_rate_per_hour: 4.0,
                artifact_mean_secs: 25.0,
                artifact_mode: ArtifactMode::DepressedBy(0.12),
                quantization: 1.0,
            },
            VitalKind::HeartRate => SensorSpec {
                noise_std: 1.5,
                bias: 0.0,
                artifact_rate_per_hour: 2.0,
                artifact_mean_secs: 15.0,
                artifact_mode: ArtifactMode::ElevatedBy(0.4),
                quantization: 1.0,
            },
            VitalKind::RespRate => SensorSpec {
                noise_std: 1.0,
                bias: 0.0,
                artifact_rate_per_hour: 3.0,
                artifact_mean_secs: 30.0,
                artifact_mode: ArtifactMode::DepressedBy(0.5),
                quantization: 1.0,
            },
            VitalKind::Etco2 => SensorSpec {
                noise_std: 1.2,
                bias: 0.0,
                artifact_rate_per_hour: 1.5,
                artifact_mean_secs: 40.0,
                artifact_mode: ArtifactMode::Dropout,
                quantization: 1.0,
            },
            VitalKind::BpSystolic | VitalKind::BpDiastolic => SensorSpec {
                noise_std: 3.0,
                bias: 0.0,
                artifact_rate_per_hour: 0.5,
                artifact_mean_secs: 20.0,
                artifact_mode: ArtifactMode::ElevatedBy(0.2),
                quantization: 1.0,
            },
            VitalKind::MinuteVentilation => SensorSpec {
                noise_std: 0.2,
                bias: 0.0,
                artifact_rate_per_hour: 1.0,
                artifact_mean_secs: 20.0,
                artifact_mode: ArtifactMode::Dropout,
                quantization: 0.1,
            },
        }
    }
}

/// A stateful simulated sensor for one vital sign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulatedSensor {
    kind: VitalKind,
    spec: SensorSpec,
    /// Simulation seconds at which the current artifact episode ends.
    artifact_until_secs: f64,
}

impl SimulatedSensor {
    /// Creates a sensor with the given imperfection model.
    pub fn new(kind: VitalKind, spec: SensorSpec) -> Self {
        SimulatedSensor { kind, spec, artifact_until_secs: -1.0 }
    }

    /// Creates a sensor with [`SensorSpec::default_for`] this vital.
    pub fn with_defaults(kind: VitalKind) -> Self {
        Self::new(kind, SensorSpec::default_for(kind))
    }

    /// The vital this sensor measures.
    pub fn kind(&self) -> VitalKind {
        self.kind
    }

    /// The imperfection model.
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// Whether an artifact episode is active at `now_secs`.
    pub fn in_artifact(&self, now_secs: f64) -> bool {
        now_secs < self.artifact_until_secs
    }

    /// Produces one reading of `true_value` at time `now_secs`,
    /// assuming the previous reading was `dt_secs` ago (the artifact
    /// arrival process is integrated over that window).
    pub fn read(
        &mut self,
        now_secs: f64,
        dt_secs: f64,
        true_value: f64,
        rng: &mut impl RngCore,
    ) -> SensorReading {
        // Maybe start a new artifact episode.
        if !self.in_artifact(now_secs) && self.spec.artifact_rate_per_hour > 0.0 {
            let p = self.spec.artifact_rate_per_hour * dt_secs / 3600.0;
            if bernoulli(rng, p) {
                let dur = exponential(rng, self.spec.artifact_mean_secs.max(1.0));
                self.artifact_until_secs = now_secs + dur;
            }
        }

        let (lo, hi) = self.kind.plausible_range();
        let corrupt = self.in_artifact(now_secs);
        let (base, quality) = if corrupt {
            match self.spec.artifact_mode {
                ArtifactMode::Dropout => {
                    return SensorReading { value: None, quality: SignalQuality::Missing }
                }
                ArtifactMode::DepressedBy(f) => (true_value * (1.0 - f), SignalQuality::Artifact),
                ArtifactMode::ElevatedBy(f) => (true_value * (1.0 + f), SignalQuality::Artifact),
            }
        } else {
            (true_value, SignalQuality::Good)
        };
        let mut v = base + self.spec.bias + normal(rng, 0.0, self.spec.noise_std);
        if self.spec.quantization > 0.0 {
            v = (v / self.spec.quantization).round() * self.spec.quantization;
        }
        SensorReading { value: Some(v.clamp(lo, hi)), quality }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;

    fn rng() -> mcps_sim::rng::SimRng {
        RngFactory::new(77).stream("sensor-test")
    }

    #[test]
    fn ideal_sensor_is_exact() {
        let mut s = SimulatedSensor::new(VitalKind::Spo2, SensorSpec::ideal());
        let mut r = rng();
        for i in 0..100 {
            let out = s.read(i as f64, 1.0, 96.4, &mut r);
            assert_eq!(out.quality, SignalQuality::Good);
            assert!((out.value.unwrap() - 96.4).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_has_configured_spread() {
        let spec = SensorSpec { noise_std: 2.0, ..SensorSpec::ideal() };
        let mut s = SimulatedSensor::new(VitalKind::HeartRate, spec);
        let mut r = rng();
        let vals: Vec<f64> =
            (0..5_000).map(|i| s.read(i as f64, 1.0, 80.0, &mut r).value.unwrap()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let std = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
        assert!((mean - 80.0).abs() < 0.2, "mean {mean}");
        assert!((std - 2.0).abs() < 0.3, "std {std}");
    }

    #[test]
    fn artifacts_occur_at_configured_rate() {
        let mut s = SimulatedSensor::with_defaults(VitalKind::Spo2);
        let mut r = rng();
        let hours = 24.0;
        let mut artifact_samples = 0u32;
        let steps = (hours * 3600.0) as u64;
        for i in 0..steps {
            let out = s.read(i as f64, 1.0, 97.0, &mut r);
            if out.quality != SignalQuality::Good {
                artifact_samples += 1;
            }
        }
        // ~4 episodes/h × ~25 s each ⇒ ~100 s of artifact per hour.
        let per_hour = artifact_samples as f64 / hours;
        assert!((40.0..250.0).contains(&per_hour), "artifact seconds/hour = {per_hour}");
    }

    #[test]
    fn depressed_artifact_lowers_reading() {
        let spec = SensorSpec {
            artifact_rate_per_hour: 3600.0, // artifact virtually every second
            artifact_mean_secs: 10_000.0,
            artifact_mode: ArtifactMode::DepressedBy(0.2),
            ..SensorSpec::ideal()
        };
        let mut s = SimulatedSensor::new(VitalKind::Spo2, spec);
        let mut r = rng();
        let _ = s.read(0.0, 1.0, 95.0, &mut r); // may or may not trigger yet
        let out = s.read(10.0, 10.0, 95.0, &mut r);
        assert_eq!(out.quality, SignalQuality::Artifact);
        assert!((out.value.unwrap() - 76.0).abs() < 1.1, "got {:?}", out.value);
    }

    #[test]
    fn dropout_yields_missing() {
        let spec = SensorSpec {
            artifact_rate_per_hour: 3600.0,
            artifact_mean_secs: 10_000.0,
            artifact_mode: ArtifactMode::Dropout,
            ..SensorSpec::ideal()
        };
        let mut s = SimulatedSensor::new(VitalKind::Etco2, spec);
        let mut r = rng();
        let _ = s.read(0.0, 1.0, 38.0, &mut r);
        let out = s.read(10.0, 10.0, 38.0, &mut r);
        assert_eq!(out.quality, SignalQuality::Missing);
        assert_eq!(out.value, None);
    }

    #[test]
    fn readings_clamped_to_plausible_range() {
        let spec = SensorSpec { bias: 50.0, ..SensorSpec::ideal() };
        let mut s = SimulatedSensor::new(VitalKind::Spo2, spec);
        let mut r = rng();
        let out = s.read(0.0, 1.0, 97.0, &mut r);
        assert_eq!(out.value, Some(100.0));
    }

    #[test]
    fn quantization_rounds() {
        let spec = SensorSpec { quantization: 1.0, ..SensorSpec::ideal() };
        let mut s = SimulatedSensor::new(VitalKind::Spo2, spec);
        let mut r = rng();
        let out = s.read(0.0, 1.0, 96.4, &mut r);
        assert_eq!(out.value, Some(96.0));
    }
}
