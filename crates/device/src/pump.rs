//! The PCA (patient-controlled analgesia) infusion pump.
//!
//! A faithful state machine of a network-capable PCA pump in the style
//! of the Generic PCA (GPCA) safety reference: demand boluses with a
//! lockout interval, an optional basal infusion, a cumulative hourly
//! dose limit, stop/resume commands, and — the key safety hook — an
//! optional **permission ticket** mode in which the pump only infuses
//! while it holds an unexpired ticket from the supervisor. Ticket
//! expiry on silence makes the closed loop fail *safe*: if the network
//! or supervisor dies, the pump stops by itself.
//!
//! The pump is a pure, kernel-agnostic state machine driven by
//! wall-clock arguments, so the same code is exercised by unit tests,
//! the ICE actors, and (in mirrored form) the timed-automata model in
//! `mcps-safety`.

use crate::profile::{CommandKind, DeviceClass, DeviceProfile};
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Static pump programme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcaPumpConfig {
    /// Drug delivered per demand bolus, mg.
    pub bolus_dose_mg: f64,
    /// Time over which a bolus is delivered.
    pub bolus_duration: SimDuration,
    /// Minimum interval between bolus *starts*.
    pub lockout: SimDuration,
    /// Continuous background infusion, mg/h (0 disables).
    pub basal_rate_mg_per_h: f64,
    /// Hard ceiling on drug delivered in any sliding hour, mg.
    pub max_hourly_mg: f64,
    /// If `true`, the pump infuses only while it holds an unexpired
    /// permission ticket (fail-safe interlock mode).
    pub ticket_mode: bool,
}

impl Default for PcaPumpConfig {
    fn default() -> Self {
        PcaPumpConfig {
            bolus_dose_mg: 1.0,
            bolus_duration: SimDuration::from_secs(30),
            lockout: SimDuration::from_mins(6),
            basal_rate_mg_per_h: 0.0,
            max_hourly_mg: 8.0,
            ticket_mode: false,
        }
    }
}

impl PcaPumpConfig {
    /// Validates the programme.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.bolus_dose_mg.is_finite() && self.bolus_dose_mg >= 0.0) {
            return Err(format!("bolus_dose_mg must be ≥ 0, got {}", self.bolus_dose_mg));
        }
        if self.bolus_duration.is_zero() {
            return Err("bolus_duration must be positive".into());
        }
        if !(self.basal_rate_mg_per_h.is_finite() && self.basal_rate_mg_per_h >= 0.0) {
            return Err(format!(
                "basal_rate_mg_per_h must be ≥ 0, got {}",
                self.basal_rate_mg_per_h
            ));
        }
        if !(self.max_hourly_mg.is_finite() && self.max_hourly_mg > 0.0) {
            return Err(format!("max_hourly_mg must be > 0, got {}", self.max_hourly_mg));
        }
        Ok(())
    }
}

/// Why the pump is stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopReason {
    /// Explicit supervisor/clinician stop command.
    Command,
    /// Permission ticket expired (fail-safe).
    TicketExpired,
    /// Internal fault.
    Fault,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Command => "stop command",
            StopReason::TicketExpired => "ticket expired",
            StopReason::Fault => "device fault",
        };
        f.write_str(s)
    }
}

/// Operational state of the pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PumpState {
    /// Delivering (basal and/or bolus as programmed).
    Running,
    /// Halted; no drug flows.
    Stopped(StopReason),
}

/// Outcome of a bolus request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BolusDecision {
    /// The bolus started.
    Started,
    /// Denied: within the lockout interval.
    LockedOut,
    /// Denied: would exceed the hourly limit.
    HourlyLimit,
    /// Denied: pump is stopped.
    Stopped,
    /// Denied: no valid permission ticket (ticket mode only).
    NoTicket,
    /// Denied: bolus delivery is suspended by the local fail-safe
    /// watchdog (supervision lost; basal continues).
    Suspended,
}

/// One entry in the pump's dose log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoseEvent {
    /// When the bolus started.
    pub at: SimTime,
    /// Programmed dose, mg.
    pub dose_mg: f64,
}

/// The PCA pump state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaPump {
    config: PcaPumpConfig,
    state: PumpState,
    /// Active bolus: (start, dose). Delivery is linear over
    /// `config.bolus_duration`.
    active_bolus: Option<(SimTime, f64)>,
    last_bolus_start: Option<SimTime>,
    ticket_expiry: Option<SimTime>,
    /// Local fail-safe latch: bolus delivery is suspended (basal-only
    /// safe state) until an explicit resume. Set by the device-local
    /// watchdog when supervision is lost.
    bolus_suspended: bool,
    dose_log: Vec<DoseEvent>,
    /// Sliding-window record of delivered increments for the hourly cap.
    window: VecDeque<(SimTime, f64)>,
    window_sum: f64,
    total_delivered_mg: f64,
    /// Drug accrued by internal accounting but not yet drained by
    /// [`Self::delivered_since_last`]. Any method that advances the
    /// integration clock deposits here, so no delivery is ever lost
    /// between caller polls.
    undrained_mg: f64,
    /// Delivery accounting has been integrated up to this instant.
    /// Starts at the simulation epoch: pumps are created at t = 0.
    last_integrate: SimTime,
}

impl PcaPump {
    /// Creates a pump in the `Running` state (no ticket yet granted —
    /// in ticket mode it will not deliver until one arrives).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`PcaPumpConfig::validate`].
    pub fn new(config: PcaPumpConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid pump config: {e}");
        }
        PcaPump {
            config,
            state: PumpState::Running,
            active_bolus: None,
            last_bolus_start: None,
            ticket_expiry: None,
            bolus_suspended: false,
            dose_log: Vec::new(),
            window: VecDeque::new(),
            window_sum: 0.0,
            total_delivered_mg: 0.0,
            undrained_mg: 0.0,
            last_integrate: SimTime::ZERO,
        }
    }

    /// The pump's programme.
    pub fn config(&self) -> &PcaPumpConfig {
        &self.config
    }

    /// Current operational state.
    pub fn state(&self) -> PumpState {
        self.state
    }

    /// The self-description profile of this pump.
    pub fn profile(serial: &str, ticket_mode: bool) -> DeviceProfile {
        let mut b = DeviceProfile::builder("GPCA", "SafePump-1", serial, DeviceClass::Infusion)
            .command(CommandKind::Stop)
            .command(CommandKind::Resume)
            .command(CommandKind::RequestBolus)
            .command(CommandKind::SetRate);
        if ticket_mode {
            b = b.command(CommandKind::GrantTicket);
        }
        b.build()
    }

    /// Whether drug may flow at `now` (running, and in ticket mode also
    /// holding an unexpired ticket).
    pub fn is_permitted(&self, now: SimTime) -> bool {
        if self.state != PumpState::Running {
            return false;
        }
        if self.config.ticket_mode {
            matches!(self.ticket_expiry, Some(t) if now < t)
        } else {
            true
        }
    }

    /// Grants (or extends) the permission ticket until `now + validity`.
    pub fn grant_ticket(&mut self, now: SimTime, validity: SimDuration) {
        self.ticket_expiry = Some(now + validity);
    }

    /// Current ticket expiry, if one was granted.
    pub fn ticket_expiry(&self) -> Option<SimTime> {
        self.ticket_expiry
    }

    /// Stops the pump. An in-flight bolus is aborted (the undelivered
    /// remainder is never given).
    pub fn stop(&mut self, now: SimTime, reason: StopReason) {
        self.integrate_to(now);
        self.active_bolus = None;
        self.state = PumpState::Stopped(reason);
    }

    /// Resumes after a stop. Basal resumes; an aborted bolus is *not*
    /// restarted (the patient must demand again past lockout). Also
    /// clears the local fail-safe bolus suspension: resume is the
    /// explicit post-recovery release the watchdog latch waits for.
    pub fn resume(&mut self, now: SimTime) {
        self.integrate_to(now);
        self.state = PumpState::Running;
        self.bolus_suspended = false;
    }

    /// Enters the basal-only safe state: aborts any in-flight bolus and
    /// latches a suspension that denies further demand boluses until
    /// [`Self::resume`]. Basal infusion continues — abruptly cutting a
    /// background opioid infusion is itself a hazard, while an
    /// unsupervised *bolus* is the risk the interlock exists to gate.
    pub fn suspend_bolus(&mut self, now: SimTime) {
        self.integrate_to(now);
        self.active_bolus = None;
        self.bolus_suspended = true;
    }

    /// Whether the fail-safe bolus suspension is latched.
    pub fn bolus_suspended(&self) -> bool {
        self.bolus_suspended
    }

    /// Reprogrammes the basal rate, mg/h (clamped at 0).
    pub fn set_basal_rate(&mut self, now: SimTime, mg_per_h: f64) {
        self.integrate_to(now);
        self.config.basal_rate_mg_per_h =
            if mg_per_h.is_finite() { mg_per_h.max(0.0) } else { 0.0 };
    }

    /// Handles a press of the demand button at `now`.
    pub fn request_bolus(&mut self, now: SimTime) -> BolusDecision {
        self.integrate_to(now);
        if self.state != PumpState::Running {
            return BolusDecision::Stopped;
        }
        if self.bolus_suspended {
            return BolusDecision::Suspended;
        }
        if self.config.ticket_mode && !self.is_permitted(now) {
            return BolusDecision::NoTicket;
        }
        if let Some(last) = self.last_bolus_start {
            if now.saturating_since(last) < self.config.lockout {
                return BolusDecision::LockedOut;
            }
        }
        if self.window_sum + self.config.bolus_dose_mg > self.config.max_hourly_mg {
            return BolusDecision::HourlyLimit;
        }
        self.last_bolus_start = Some(now);
        self.active_bolus = Some((now, self.config.bolus_dose_mg));
        self.dose_log.push(DoseEvent { at: now, dose_mg: self.config.bolus_dose_mg });
        BolusDecision::Started
    }

    /// Advances internal delivery accounting to `now` and returns the
    /// drug (mg) delivered since the previous call. The caller infuses
    /// this amount into the patient model. Drug accrued by other calls
    /// (e.g. a [`Self::request_bolus`] between polls) is included.
    pub fn delivered_since_last(&mut self, now: SimTime) -> f64 {
        self.integrate_to(now);
        std::mem::take(&mut self.undrained_mg)
    }

    /// Total drug ever delivered, mg.
    pub fn total_delivered_mg(&self) -> f64 {
        self.total_delivered_mg
    }

    /// Drug delivered in the last sliding hour, mg.
    pub fn hourly_delivered_mg(&self) -> f64 {
        self.window_sum
    }

    /// The bolus log.
    pub fn dose_log(&self) -> &[DoseEvent] {
        &self.dose_log
    }

    /// Whether a bolus is being delivered at `now`.
    pub fn bolus_in_progress(&self, now: SimTime) -> bool {
        self.active_bolus
            .is_some_and(|(start, _)| now.saturating_since(start) < self.config.bolus_duration)
    }

    fn integrate_to(&mut self, now: SimTime) {
        if now <= self.last_integrate {
            self.prune_window(now);
            return;
        }
        let from = self.last_integrate;
        self.last_integrate = now;
        let mut delivered = 0.0;

        // Integrate piecewise: permission can only change at ticket
        // expiry inside (from, now); state/commands only change at call
        // boundaries, so a single split point suffices.
        let mut segments: Vec<(SimTime, SimTime)> = Vec::with_capacity(2);
        match (self.config.ticket_mode, self.ticket_expiry, self.state) {
            (true, Some(exp), PumpState::Running) if exp > from && exp < now => {
                segments.push((from, exp));
                segments.push((exp, now));
            }
            _ => segments.push((from, now)),
        }
        for (a, b) in segments {
            // Permission during (a, b) is decided at its start point.
            if !(self.state == PumpState::Running
                && (!self.config.ticket_mode || matches!(self.ticket_expiry, Some(t) if a < t)))
            {
                continue;
            }
            let dur_h = (b - a).as_secs_f64() / 3600.0;
            let mut seg = self.config.basal_rate_mg_per_h * dur_h;
            if let Some((start, dose)) = self.active_bolus {
                let bolus_end = start + self.config.bolus_duration;
                let ov_start = a.max(start);
                let ov_end = b.min(bolus_end);
                if ov_end > ov_start {
                    let frac = (ov_end - ov_start).as_secs_f64()
                        / self.config.bolus_duration.as_secs_f64();
                    seg += dose * frac;
                }
            }
            // Hourly hard limit: deliver only up to the cap.
            let headroom = (self.config.max_hourly_mg - self.window_sum).max(0.0);
            let seg = seg.min(headroom);
            if seg > 0.0 {
                delivered += seg;
                self.window.push_back((b, seg));
                self.window_sum += seg;
            }
        }
        // Retire a completed bolus.
        if let Some((start, _)) = self.active_bolus {
            if now >= start + self.config.bolus_duration {
                self.active_bolus = None;
            }
        }
        self.total_delivered_mg += delivered;
        self.undrained_mg += delivered;
        self.prune_window(now);
    }

    fn prune_window(&mut self, now: SimTime) {
        let hour = SimDuration::from_mins(60);
        while let Some(&(t, amt)) = self.window.front() {
            if now.saturating_since(t) > hour {
                self.window_sum -= amt;
                self.window.pop_front();
            } else {
                break;
            }
        }
        self.window_sum = self.window_sum.max(0.0);
    }
}

impl Default for PcaPump {
    fn default() -> Self {
        PcaPump::new(PcaPumpConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn bolus_delivers_full_dose_over_duration() {
        let mut p = PcaPump::default();
        assert_eq!(p.request_bolus(t(0)), BolusDecision::Started);
        // Half way through the 30 s bolus.
        let d1 = p.delivered_since_last(t(15));
        assert!((d1 - 0.5).abs() < 1e-9, "half the dose by 15 s, got {d1}");
        let d2 = p.delivered_since_last(t(60));
        assert!((d2 - 0.5).abs() < 1e-9, "remaining half, got {d2}");
        assert!((p.total_delivered_mg() - 1.0).abs() < 1e-9);
        assert!(!p.bolus_in_progress(t(60)));
    }

    #[test]
    fn lockout_blocks_early_redemand() {
        let mut p = PcaPump::default();
        assert_eq!(p.request_bolus(t(0)), BolusDecision::Started);
        assert_eq!(p.request_bolus(t(60)), BolusDecision::LockedOut);
        assert_eq!(p.request_bolus(t(359)), BolusDecision::LockedOut);
        assert_eq!(p.request_bolus(t(360)), BolusDecision::Started);
        assert_eq!(p.dose_log().len(), 2);
    }

    #[test]
    fn hourly_limit_denies_and_caps() {
        let mut p = PcaPump::new(PcaPumpConfig {
            bolus_dose_mg: 2.0,
            lockout: SimDuration::from_secs(60),
            max_hourly_mg: 5.0,
            ..PcaPumpConfig::default()
        });
        let mut clock = 0;
        let mut started = 0;
        // Demand every minute for 30 min.
        for _ in 0..30 {
            if p.request_bolus(t(clock)) == BolusDecision::Started {
                started += 1;
            }
            clock += 60;
            p.delivered_since_last(t(clock));
        }
        // 2 mg each, 5 mg cap ⇒ at most 2 full boluses fit; a third
        // request is denied by the limit.
        assert_eq!(started, 2, "hourly cap should deny the 3rd bolus");
        assert!(p.hourly_delivered_mg() <= 5.0 + 1e-9);
        // After the window slides past, demands work again.
        let later = 2 * 3600;
        p.delivered_since_last(t(later));
        assert_eq!(p.request_bolus(t(later)), BolusDecision::Started);
    }

    #[test]
    fn stop_aborts_bolus_remainder() {
        let mut p = PcaPump::default();
        p.request_bolus(t(0));
        p.delivered_since_last(t(10)); // 1/3 delivered
        p.stop(t(10), StopReason::Command);
        assert_eq!(p.state(), PumpState::Stopped(StopReason::Command));
        let d = p.delivered_since_last(t(100));
        assert_eq!(d, 0.0, "no drug while stopped");
        assert!((p.total_delivered_mg() - 1.0 / 3.0).abs() < 1e-9);
        // Resume: basal would flow again but the aborted bolus is gone.
        p.resume(t(100));
        assert_eq!(p.delivered_since_last(t(200)), 0.0);
        assert_eq!(p.request_bolus(t(100)), BolusDecision::LockedOut);
    }

    #[test]
    fn basal_accrues_only_while_running() {
        let mut p =
            PcaPump::new(PcaPumpConfig { basal_rate_mg_per_h: 1.2, ..PcaPumpConfig::default() });
        let d = p.delivered_since_last(t(3600));
        assert!((d - 1.2).abs() < 1e-9);
        p.stop(t(3600), StopReason::Command);
        assert_eq!(p.delivered_since_last(t(7200)), 0.0);
        p.resume(t(7200));
        let d = p.delivered_since_last(t(7200 + 1800));
        assert!((d - 0.6).abs() < 1e-9);
    }

    #[test]
    fn ticket_mode_blocks_without_ticket() {
        let mut p = PcaPump::new(PcaPumpConfig {
            ticket_mode: true,
            basal_rate_mg_per_h: 1.0,
            ..PcaPumpConfig::default()
        });
        assert!(!p.is_permitted(t(0)));
        assert_eq!(p.request_bolus(t(0)), BolusDecision::NoTicket);
        assert_eq!(p.delivered_since_last(t(3600)), 0.0);
    }

    #[test]
    fn ticket_expiry_stops_delivery_mid_interval() {
        let mut p = PcaPump::new(PcaPumpConfig {
            ticket_mode: true,
            basal_rate_mg_per_h: 1.0,
            ..PcaPumpConfig::default()
        });
        p.grant_ticket(t(0), SimDuration::from_secs(1800)); // 30 min ticket
                                                            // Integrate a full hour in one call: only the first 30 min flow.
        let d = p.delivered_since_last(t(3600));
        assert!((d - 0.5).abs() < 1e-9, "only the ticketed half-hour, got {d}");
        assert!(!p.is_permitted(t(3600)));
        // Re-granting restores delivery.
        p.grant_ticket(t(3600), SimDuration::from_secs(3600));
        let d = p.delivered_since_last(t(7200));
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ticketed_bolus_halts_at_expiry() {
        let mut p = PcaPump::new(PcaPumpConfig { ticket_mode: true, ..PcaPumpConfig::default() });
        p.grant_ticket(t(0), SimDuration::from_secs(15)); // shorter than the 30 s bolus
        assert_eq!(p.request_bolus(t(0)), BolusDecision::Started);
        let d = p.delivered_since_last(t(60));
        assert!((d - 0.5).abs() < 1e-9, "bolus truncated at ticket expiry, got {d}");
    }

    #[test]
    fn profile_advertises_ticket_support() {
        let with = PcaPump::profile("SN-9", true);
        let without = PcaPump::profile("SN-9", false);
        assert!(with.accepts_command(CommandKind::GrantTicket));
        assert!(!without.accepts_command(CommandKind::GrantTicket));
        assert!(with.accepts_command(CommandKind::Stop));
    }

    #[test]
    fn set_basal_rate_clamps() {
        let mut p = PcaPump::default();
        p.set_basal_rate(t(0), -5.0);
        assert_eq!(p.config().basal_rate_mg_per_h, 0.0);
        p.set_basal_rate(t(0), f64::NAN);
        assert_eq!(p.config().basal_rate_mg_per_h, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid pump config")]
    fn invalid_config_panics() {
        let _ = PcaPump::new(PcaPumpConfig { max_hourly_mg: 0.0, ..PcaPumpConfig::default() });
    }

    #[test]
    fn suspend_bolus_is_basal_only_and_latches_until_resume() {
        let mut p =
            PcaPump::new(PcaPumpConfig { basal_rate_mg_per_h: 1.0, ..PcaPumpConfig::default() });
        assert_eq!(p.request_bolus(t(0)), BolusDecision::Started);
        p.delivered_since_last(t(10)); // 1/3 of the bolus out
        p.suspend_bolus(t(10));
        assert!(p.bolus_suspended());
        // The in-flight remainder is aborted but basal keeps flowing.
        let d = p.delivered_since_last(t(10 + 3600));
        assert!((d - 1.0).abs() < 1e-9, "one hour of basal only, got {d}");
        assert_eq!(p.request_bolus(t(7200)), BolusDecision::Suspended);
        // Only an explicit resume releases the latch.
        p.resume(t(7200));
        assert!(!p.bolus_suspended());
        assert_eq!(p.request_bolus(t(7200)), BolusDecision::Started);
    }

    #[test]
    fn suspension_outranks_ticket_check_but_not_stop() {
        let mut p = PcaPump::new(PcaPumpConfig { ticket_mode: true, ..PcaPumpConfig::default() });
        p.suspend_bolus(t(0));
        assert_eq!(p.request_bolus(t(0)), BolusDecision::Suspended);
        p.stop(t(1), StopReason::Command);
        assert_eq!(p.request_bolus(t(2)), BolusDecision::Stopped);
    }

    #[test]
    fn time_never_flows_backwards_in_accounting() {
        let mut p =
            PcaPump::new(PcaPumpConfig { basal_rate_mg_per_h: 1.0, ..PcaPumpConfig::default() });
        p.delivered_since_last(t(100));
        // Older timestamp: must not deliver negative drug or panic.
        let d = p.delivered_since_last(t(50));
        assert_eq!(d, 0.0);
    }
}
