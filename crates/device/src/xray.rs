//! A portable x-ray machine.
//!
//! Exposures have a fixed shutter window; an image is diagnostic only
//! if the chest was motion-free for the *entire* window. The machine
//! records every exposure so the coordination experiment can score
//! image quality against the ventilator's motion timeline.

use crate::profile::{CommandKind, DeviceClass, DeviceProfile};
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One recorded exposure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exposure {
    /// Shutter open.
    pub start: SimTime,
    /// Shutter closed.
    pub end: SimTime,
}

impl Exposure {
    /// Shutter-open duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// X-ray configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XRayConfig {
    /// Shutter window per exposure.
    pub exposure_duration: SimDuration,
    /// Time between the expose command and the shutter opening
    /// (generator spin-up).
    pub trigger_delay: SimDuration,
}

impl Default for XRayConfig {
    fn default() -> Self {
        XRayConfig {
            exposure_duration: SimDuration::from_millis(800),
            trigger_delay: SimDuration::from_millis(300),
        }
    }
}

/// The x-ray machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XRayMachine {
    config: XRayConfig,
    armed: bool,
    exposures: Vec<Exposure>,
}

impl XRayMachine {
    /// Creates an unarmed machine.
    pub fn new(config: XRayConfig) -> Self {
        XRayMachine { config, armed: false, exposures: Vec::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &XRayConfig {
        &self.config
    }

    /// The capability profile.
    pub fn profile(serial: &str) -> DeviceProfile {
        DeviceProfile::builder("Siemens", "Mobilett-XP", serial, DeviceClass::Imaging)
            .command(CommandKind::ArmExposure)
            .command(CommandKind::Expose)
            .build()
    }

    /// Arms the generator.
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Whether the generator is armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Fires an exposure commanded at `now`. Returns the recorded
    /// window, or `None` if the machine was not armed. Firing disarms.
    pub fn expose(&mut self, now: SimTime) -> Option<Exposure> {
        if !self.armed {
            return None;
        }
        self.armed = false;
        let start = now + self.config.trigger_delay;
        let exp = Exposure { start, end: start + self.config.exposure_duration };
        self.exposures.push(exp);
        Some(exp)
    }

    /// All exposures taken.
    pub fn exposures(&self) -> &[Exposure] {
        &self.exposures
    }
}

impl Default for XRayMachine {
    fn default() -> Self {
        XRayMachine::new(XRayConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expose_requires_arming() {
        let mut x = XRayMachine::default();
        assert_eq!(x.expose(SimTime::from_secs(1)), None);
        x.arm();
        assert!(x.is_armed());
        let e = x.expose(SimTime::from_secs(2)).unwrap();
        assert_eq!(e.start, SimTime::from_secs(2) + SimDuration::from_millis(300));
        assert_eq!(e.duration(), SimDuration::from_millis(800));
        // Disarmed after firing.
        assert!(!x.is_armed());
        assert_eq!(x.expose(SimTime::from_secs(3)), None);
        assert_eq!(x.exposures().len(), 1);
    }

    #[test]
    fn multiple_exposures_are_logged() {
        let mut x = XRayMachine::default();
        for i in 0..3 {
            x.arm();
            x.expose(SimTime::from_secs(i * 10));
        }
        assert_eq!(x.exposures().len(), 3);
    }

    #[test]
    fn profile_accepts_imaging_commands() {
        let p = XRayMachine::profile("SN-X");
        assert!(p.accepts_command(CommandKind::ArmExposure));
        assert!(p.accepts_command(CommandKind::Expose));
        assert!(!p.accepts_command(CommandKind::Stop));
    }
}
