//! A mechanical ventilator with a bounded, safety-limited pause.
//!
//! The x-ray/ventilator synchronization scenario needs a ventilator
//! that (a) exposes its breath phase, (b) accepts a *bounded* pause
//! command so the chest is motion-free during an exposure, and (c)
//! auto-resumes when the pause budget is exhausted, no matter what the
//! rest of the system does — the device's own last line of defence.

use crate::profile::{CommandKind, DeviceClass, DeviceProfile};
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Phase of the breath cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreathPhase {
    /// Gas flowing in (chest rising).
    Inspiration,
    /// Passive exhalation (chest falling, then still).
    Expiration,
    /// Ventilation paused (chest still).
    Paused,
}

/// Ventilator settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VentilatorConfig {
    /// Breaths per minute.
    pub rate_bpm: f64,
    /// Inspiration fraction of the cycle (I:E of 1:2 ⇒ 1/3).
    pub insp_fraction: f64,
    /// The longest pause the device will ever honour.
    pub max_pause: SimDuration,
}

impl Default for VentilatorConfig {
    fn default() -> Self {
        VentilatorConfig {
            rate_bpm: 12.0,
            insp_fraction: 1.0 / 3.0,
            max_pause: SimDuration::from_secs(20),
        }
    }
}

impl VentilatorConfig {
    /// Validates the settings.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_bpm.is_finite() && self.rate_bpm > 0.0 && self.rate_bpm <= 60.0) {
            return Err(format!("rate_bpm must be in (0,60], got {}", self.rate_bpm));
        }
        if !(self.insp_fraction > 0.0 && self.insp_fraction < 1.0) {
            return Err(format!("insp_fraction must be in (0,1), got {}", self.insp_fraction));
        }
        if self.max_pause.is_zero() {
            return Err("max_pause must be positive".into());
        }
        Ok(())
    }

    /// Duration of one full breath cycle.
    pub fn cycle(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rate_bpm)
    }
}

/// Result of a pause request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PauseOutcome {
    /// Pause accepted; ventilation halts until `until` (or resume).
    Accepted {
        /// Instant at which the device will auto-resume.
        until: SimTime,
    },
    /// Rejected: already paused.
    AlreadyPaused,
}

/// The ventilator state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ventilator {
    config: VentilatorConfig,
    /// Cycle phase reference: breathing resumed/started at this instant
    /// (phase 0 = start of inspiration).
    cycle_origin: SimTime,
    /// If paused: when the current pause started and when it ends at
    /// the latest.
    paused: Option<(SimTime, SimTime)>,
    /// Completed pause intervals (start, end), for post-hoc motion
    /// analysis.
    pause_log: Vec<(SimTime, SimTime)>,
    /// Count of auto-resumes (pause budget exhausted without resume).
    auto_resumes: u32,
}

impl Ventilator {
    /// Creates a running ventilator whose first inspiration starts at
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`VentilatorConfig::validate`].
    pub fn new(start: SimTime, config: VentilatorConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid ventilator config: {e}");
        }
        Ventilator {
            config,
            cycle_origin: start,
            paused: None,
            pause_log: Vec::new(),
            auto_resumes: 0,
        }
    }

    /// The settings.
    pub fn config(&self) -> &VentilatorConfig {
        &self.config
    }

    /// The capability profile.
    pub fn profile(serial: &str) -> DeviceProfile {
        DeviceProfile::builder("Drager", "Vent-840", serial, DeviceClass::Ventilation)
            .command(CommandKind::PauseVentilation)
            .command(CommandKind::ResumeVentilation)
            .build()
    }

    /// Applies auto-resume if the pause budget expired before `now`.
    /// Call before querying state at a new time.
    pub fn poll(&mut self, now: SimTime) {
        if let Some((since, until)) = self.paused {
            if now >= until {
                self.paused = None;
                self.pause_log.push((since, until));
                self.cycle_origin = until; // breathing restarts at expiry
                self.auto_resumes += 1;
            }
        }
    }

    /// The breath phase at `now` (after any auto-resume).
    pub fn phase(&mut self, now: SimTime) -> BreathPhase {
        self.poll(now);
        if self.paused.is_some() {
            return BreathPhase::Paused;
        }
        let cycle = self.config.cycle().as_secs_f64();
        let t = now.saturating_since(self.cycle_origin).as_secs_f64() % cycle;
        if t < cycle * self.config.insp_fraction {
            BreathPhase::Inspiration
        } else {
            BreathPhase::Expiration
        }
    }

    /// Whether the chest is motion-free at `now` — true only while
    /// paused (during normal expiration there is still passive motion
    /// early in the phase; a pause guarantees stillness).
    pub fn is_motion_free(&mut self, now: SimTime) -> bool {
        self.phase(now) == BreathPhase::Paused
    }

    /// Time from `now` to the start of the next expiration (the ideal
    /// pause point).
    pub fn time_to_next_expiration(&mut self, now: SimTime) -> SimDuration {
        self.poll(now);
        let cycle = self.config.cycle().as_secs_f64();
        let insp = cycle * self.config.insp_fraction;
        let t = now.saturating_since(self.cycle_origin).as_secs_f64() % cycle;
        if t < insp {
            SimDuration::from_secs_f64(insp - t)
        } else {
            SimDuration::from_secs_f64(cycle - t + insp)
        }
    }

    /// Requests a pause of `duration` starting at `now`. The honoured
    /// duration is capped at `max_pause`.
    pub fn pause(&mut self, now: SimTime, duration: SimDuration) -> PauseOutcome {
        self.poll(now);
        if self.paused.is_some() {
            return PauseOutcome::AlreadyPaused;
        }
        let honoured = duration.min(self.config.max_pause);
        let until = now + honoured;
        self.paused = Some((now, until));
        PauseOutcome::Accepted { until }
    }

    /// Resumes ventilation immediately (no-op when running).
    pub fn resume(&mut self, now: SimTime) {
        self.poll(now);
        if let Some((since, _)) = self.paused.take() {
            self.pause_log.push((since, now));
            self.cycle_origin = now;
        }
    }

    /// Pauses honoured so far (completed or ongoing).
    pub fn pause_count(&self) -> u32 {
        self.pause_log.len() as u32 + u32::from(self.paused.is_some())
    }

    /// Completed pause intervals `(start, end)`, oldest first. An
    /// ongoing pause is not yet listed.
    pub fn pause_log(&self) -> &[(SimTime, SimTime)] {
        &self.pause_log
    }

    /// Whether the chest was motion-free throughout `[from, to]`
    /// according to the completed pause log and any ongoing pause.
    pub fn was_motion_free_during(&self, from: SimTime, to: SimTime) -> bool {
        let covers = |a: SimTime, b: SimTime| a <= from && to <= b;
        self.pause_log.iter().any(|&(a, b)| covers(a, b))
            || self.paused.is_some_and(|(a, b)| covers(a, b))
    }

    /// Auto-resumes (pause expired without an explicit resume) so far.
    pub fn auto_resume_count(&self) -> u32 {
        self.auto_resumes
    }

    /// Whether ventilation is paused at `now`.
    pub fn is_paused(&mut self, now: SimTime) -> bool {
        self.poll(now);
        self.paused.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn vent() -> Ventilator {
        // 12 bpm ⇒ 5 s cycle; insp 1/3 ⇒ inspiration [0, 1.667) s.
        Ventilator::new(t(0), VentilatorConfig::default())
    }

    #[test]
    fn phase_cycles_correctly() {
        let mut v = vent();
        assert_eq!(v.phase(t(0)), BreathPhase::Inspiration);
        assert_eq!(v.phase(SimTime::from_millis(1_600)), BreathPhase::Inspiration);
        assert_eq!(v.phase(SimTime::from_millis(1_700)), BreathPhase::Expiration);
        assert_eq!(v.phase(SimTime::from_millis(4_900)), BreathPhase::Expiration);
        assert_eq!(v.phase(t(5)), BreathPhase::Inspiration); // next cycle
    }

    #[test]
    fn pause_freezes_and_auto_resumes() {
        let mut v = vent();
        let out = v.pause(t(10), SimDuration::from_secs(8));
        assert_eq!(out, PauseOutcome::Accepted { until: t(18) });
        assert_eq!(v.phase(t(12)), BreathPhase::Paused);
        assert!(v.is_motion_free(t(17)));
        // Budget exhausted: breathing resumes by itself.
        assert_ne!(v.phase(t(19)), BreathPhase::Paused);
        assert_eq!(v.auto_resume_count(), 1);
        assert_eq!(v.pause_count(), 1);
    }

    #[test]
    fn pause_capped_at_max() {
        let mut v = vent();
        let out = v.pause(t(0), SimDuration::from_mins(5));
        assert_eq!(out, PauseOutcome::Accepted { until: t(20) }, "capped at max_pause");
    }

    #[test]
    fn double_pause_rejected() {
        let mut v = vent();
        v.pause(t(0), SimDuration::from_secs(10));
        assert_eq!(v.pause(t(1), SimDuration::from_secs(5)), PauseOutcome::AlreadyPaused);
        // After auto-resume a new pause works again.
        assert!(matches!(v.pause(t(30), SimDuration::from_secs(5)), PauseOutcome::Accepted { .. }));
    }

    #[test]
    fn explicit_resume_restarts_cycle() {
        let mut v = vent();
        v.pause(t(10), SimDuration::from_secs(15));
        v.resume(t(12));
        assert!(!v.is_paused(t(12)));
        // Cycle restarts at resume: inspiration right after.
        assert_eq!(v.phase(SimTime::from_millis(12_500)), BreathPhase::Inspiration);
        assert_eq!(v.auto_resume_count(), 0);
    }

    #[test]
    fn time_to_next_expiration() {
        let mut v = vent();
        // At t=0 (inspiration start), expiration begins at 5/3 s.
        let dt = v.time_to_next_expiration(t(0));
        assert!((dt.as_secs_f64() - 5.0 / 3.0).abs() < 1e-6);
        // During expiration, next one is a full cycle ahead minus elapsed.
        let dt2 = v.time_to_next_expiration(t(2));
        assert!((dt2.as_secs_f64() - (5.0 - 2.0 + 5.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid ventilator config")]
    fn invalid_config_panics() {
        let _ = Ventilator::new(
            t(0),
            VentilatorConfig { rate_bpm: 0.0, ..VentilatorConfig::default() },
        );
    }
}
