//! # mcps-device — simulated interoperable medical devices
//!
//! Faithful state machines of the devices the paper's clinical
//! scenarios assemble at the bedside:
//!
//! * [`pump`] — a GPCA-style PCA infusion pump with lockout, hourly
//!   limits, stop/resume and a fail-safe permission-ticket mode.
//! * [`monitor`] — multi-channel vitals monitors (pulse oximeter,
//!   capnograph) with realistic sensor artifacts and averaging.
//! * [`nibp`] — an intermittent, cycling blood-pressure monitor whose
//!   cuff blinds same-limb oximetry.
//! * [`ventilator`] — breath-cycle state machine with bounded,
//!   auto-resuming pauses.
//! * [`xray`] — a portable x-ray with arm/expose and exposure logging.
//! * [`profile`] — the capability-profile vocabulary used for
//!   on-demand device/app matching.
//! * [`ders`] — the dose-error reduction system (smart-pump drug
//!   library) gating pump programming.
//! * [`faults`] — scripted device fault injection.
//!
//! All devices are pure state machines parameterized by simulation
//! time; the ICE layer in `mcps-core` wraps them in actors and wires
//! them to the network fabric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ders;
pub mod faults;
pub mod monitor;
pub mod nibp;
pub mod profile;
pub mod pump;
pub mod ventilator;
pub mod xray;

pub use ders::{Ceiling, DrugEntry, DrugLibrary, ProgramVerdict, UnknownDrug, Violation};
pub use faults::{FaultKind, FaultPlan};
pub use monitor::{capnograph, pulse_oximeter, Measurement, VitalsMonitor};
pub use nibp::{NibpConfig, NibpMonitor, NibpReading};
pub use profile::{
    CommandKind, DeviceClass, DeviceProfile, DeviceRequirementSet, LatencyClass, Requirement,
    StreamSpec,
};
pub use pump::{BolusDecision, DoseEvent, PcaPump, PcaPumpConfig, PumpState, StopReason};
pub use ventilator::{BreathPhase, PauseOutcome, Ventilator, VentilatorConfig};
pub use xray::{Exposure, XRayConfig, XRayMachine};
