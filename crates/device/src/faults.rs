//! Device fault injection plans.
//!
//! Assurance arguments (experiment E8) require demonstrating that the
//! system fails safe under component faults. A [`FaultPlan`] scripts
//! *when* a device misbehaves and *how*; the ICE actor wrappers consult
//! it before forwarding traffic.

use mcps_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// How a faulty device misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device stops responding entirely (process crash, power loss).
    Crash,
    /// The device stays up but stops publishing data (hung sensor task);
    /// it still honours commands.
    SilentData,
    /// The device keeps publishing the *last* value it measured
    /// (stuck-at fault) — the most insidious failure for a monitor.
    StuckValue,
}

/// A scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// When the fault manifests.
    pub at: SimTime,
    /// Recovery instant (`None` = permanent).
    pub until: Option<SimTime>,
    /// Failure mode.
    pub kind: FaultKind,
}

/// The fault schedule of one device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// A device that never fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a scripted fault.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes `at`.
    pub fn with_fault(mut self, kind: FaultKind, at: SimTime, until: Option<SimTime>) -> Self {
        if let Some(u) = until {
            assert!(u > at, "fault recovery must follow onset");
        }
        self.faults.push(ScriptedFault { at, until, kind });
        self
    }

    /// The active fault at `now`, if any (first match wins).
    pub fn active(&self, now: SimTime) -> Option<FaultKind> {
        self.faults.iter().find(|f| f.at <= now && f.until.is_none_or(|u| now < u)).map(|f| f.kind)
    }

    /// Whether the device is crashed at `now`.
    pub fn is_crashed(&self, now: SimTime) -> bool {
        self.active(now) == Some(FaultKind::Crash)
    }

    /// Whether data publication is suppressed at `now` (crash or
    /// silent-data).
    pub fn is_data_suppressed(&self, now: SimTime) -> bool {
        matches!(self.active(now), Some(FaultKind::Crash | FaultKind::SilentData))
    }

    /// Whether the device publishes stale stuck values at `now`.
    pub fn is_stuck(&self, now: SimTime) -> bool {
        self.active(now) == Some(FaultKind::StuckValue)
    }

    /// All scripted faults.
    pub fn faults(&self) -> &[ScriptedFault] {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn no_faults_means_healthy_forever() {
        let p = FaultPlan::none();
        assert_eq!(p.active(t(1_000_000)), None);
        assert!(!p.is_crashed(t(0)));
    }

    #[test]
    fn transient_fault_window() {
        let p = FaultPlan::none().with_fault(FaultKind::SilentData, t(100), Some(t(200)));
        assert!(!p.is_data_suppressed(t(99)));
        assert!(p.is_data_suppressed(t(100)));
        assert!(p.is_data_suppressed(t(199)));
        assert!(!p.is_data_suppressed(t(200)));
        assert!(!p.is_crashed(t(150)), "silent-data is not a crash");
    }

    #[test]
    fn permanent_crash() {
        let p = FaultPlan::none().with_fault(FaultKind::Crash, t(50), None);
        assert!(p.is_crashed(t(50)));
        assert!(p.is_crashed(t(1_000_000)));
        assert!(p.is_data_suppressed(t(60)));
    }

    #[test]
    fn stuck_value_detection() {
        let p = FaultPlan::none().with_fault(FaultKind::StuckValue, t(10), Some(t(20)));
        assert!(p.is_stuck(t(15)));
        assert!(!p.is_data_suppressed(t(15)), "stuck devices still publish");
    }

    #[test]
    #[should_panic(expected = "recovery must follow onset")]
    fn inverted_window_rejected() {
        let _ = FaultPlan::none().with_fault(FaultKind::Crash, t(10), Some(t(10)));
    }
}
