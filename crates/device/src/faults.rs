//! Device fault injection plans.
//!
//! Assurance arguments (experiment E8) require demonstrating that the
//! system fails safe under component faults. A [`FaultPlan`] scripts
//! *when* a device misbehaves and *how*; the ICE actor wrappers consult
//! it before forwarding traffic.
//!
//! Overlapping fault windows are resolved by **severity**: the most
//! disruptive active fault wins (a `Crash` scheduled inside a longer
//! `StuckValue` window crashes the device rather than being masked).
//! Ties between equally severe active faults go to the earliest onset,
//! then to script order.

use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a faulty device misbehaves.
///
/// Variants carry only integer payloads so the kind stays `Copy`,
/// `Eq` and `Hash` (campaign grids key scorecard cells by kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The supervisory control process dies: no commands, no heartbeats,
    /// no checkpoints. Only meaningful on a supervisor's fault plan —
    /// devices keep running, which is exactly the hazard (an unattended
    /// interlock). Ranked above `Crash` because losing the controller
    /// dominates losing any single controlled device.
    SupervisorCrash,
    /// The network splits into two groups that cannot reach each other
    /// (links *within* each group stay up). Groups are endpoint-index
    /// bitmasks over the scenario's creation order; the scenario layer
    /// translates them into bidirectional link outages on the fabric.
    Partition {
        /// Bitmask of endpoint indices on side A.
        group_a: u8,
        /// Bitmask of endpoint indices on side B.
        group_b: u8,
    },
    /// The device stops responding entirely (process crash, power loss).
    Crash,
    /// The device stays up but stops publishing data (hung sensor task);
    /// it still honours commands.
    SilentData,
    /// The device keeps publishing the *last* value it measured
    /// (stuck-at fault) — the most insidious failure for a monitor.
    StuckValue,
    /// Sensor calibration drifts: published values accumulate a linear
    /// bias of `bias_milli_per_sec` thousandths of a unit per second of
    /// fault age (negative = downward drift).
    Drift {
        /// Bias accumulation rate, in thousandths of a unit per second.
        bias_milli_per_sec: i32,
    },
    /// Intermittent dropout with a duty cycle: within each `period_ms`
    /// window from onset the device publishes for the first `on_ms`
    /// milliseconds and is silent for the rest.
    Intermittent {
        /// Full duty-cycle period, in milliseconds.
        period_ms: u32,
        /// Publishing (on-phase) prefix of each period, in milliseconds.
        on_ms: u32,
    },
    /// Command acknowledgements are delayed by `delay_ms` (slow device
    /// CPU, queue buildup); commands are still applied immediately.
    DelayedAck {
        /// Ack transmission delay, in milliseconds.
        delay_ms: u32,
    },
    /// Every command acknowledgement is sent twice (retransmit-happy
    /// firmware) — exercises supervisor-side idempotence.
    DuplicateAck,
}

impl FaultKind {
    /// Severity rank used to resolve overlapping fault windows: higher
    /// wins. `Crash` dominates everything (a crashed device cannot
    /// simultaneously publish stuck values), total silence dominates
    /// partial silence, data-plane corruption dominates ack-plane
    /// quirks.
    pub fn severity(self) -> u8 {
        match self {
            FaultKind::SupervisorCrash => 8,
            FaultKind::Partition { .. } => 7,
            FaultKind::Crash => 6,
            FaultKind::SilentData => 5,
            FaultKind::Intermittent { .. } => 4,
            FaultKind::StuckValue => 3,
            FaultKind::Drift { .. } => 2,
            FaultKind::DelayedAck { .. } => 1,
            FaultKind::DuplicateAck => 0,
        }
    }
}

/// A scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// When the fault manifests.
    pub at: SimTime,
    /// Recovery instant (`None` = permanent).
    pub until: Option<SimTime>,
    /// Failure mode.
    pub kind: FaultKind,
}

impl ScriptedFault {
    /// Whether this fault's window covers `now`.
    fn covers(&self, now: SimTime) -> bool {
        self.at <= now && self.until.is_none_or(|u| now < u)
    }
}

/// The fault schedule of one device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// A device that never fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a scripted fault.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes `at`.
    pub fn with_fault(mut self, kind: FaultKind, at: SimTime, until: Option<SimTime>) -> Self {
        if let Some(u) = until {
            assert!(u > at, "fault recovery must follow onset");
        }
        self.faults.push(ScriptedFault { at, until, kind });
        self
    }

    /// The winning scripted fault at `now`: the active fault with the
    /// highest [`FaultKind::severity`], ties broken by earliest onset,
    /// then script order.
    pub fn active_fault(&self, now: SimTime) -> Option<&ScriptedFault> {
        let mut best: Option<&ScriptedFault> = None;
        for f in self.faults.iter().filter(|f| f.covers(now)) {
            best = match best {
                None => Some(f),
                Some(b) if f.kind.severity() > b.kind.severity() => Some(f),
                Some(b) if f.kind.severity() == b.kind.severity() && f.at < b.at => Some(f),
                keep => keep,
            };
        }
        best
    }

    /// The active fault kind at `now`, if any (severity-resolved).
    pub fn active(&self, now: SimTime) -> Option<FaultKind> {
        self.active_fault(now).map(|f| f.kind)
    }

    /// Whether the device is crashed at `now`.
    pub fn is_crashed(&self, now: SimTime) -> bool {
        self.active(now) == Some(FaultKind::Crash)
    }

    /// Whether data publication is suppressed at `now` (crash,
    /// silent-data, or the off-phase of an intermittent dropout).
    pub fn is_data_suppressed(&self, now: SimTime) -> bool {
        match self.active_fault(now) {
            Some(f) => match f.kind {
                FaultKind::Crash | FaultKind::SilentData => true,
                FaultKind::Intermittent { period_ms, on_ms } => {
                    // Degenerate periods (0) are treated as fully silent.
                    let period = u64::from(period_ms.max(1));
                    let phase = now.saturating_since(f.at).as_millis() % period;
                    phase >= u64::from(on_ms)
                }
                _ => false,
            },
            None => false,
        }
    }

    /// Whether the device publishes stale stuck values at `now`.
    pub fn is_stuck(&self, now: SimTime) -> bool {
        self.active(now) == Some(FaultKind::StuckValue)
    }

    /// The additive bias applied to published sensor values at `now`
    /// (zero unless a [`FaultKind::Drift`] fault wins).
    pub fn value_bias(&self, now: SimTime) -> f64 {
        match self.active_fault(now) {
            Some(f) => match f.kind {
                FaultKind::Drift { bias_milli_per_sec } => {
                    let age = now.saturating_since(f.at).as_secs_f64();
                    age * f64::from(bias_milli_per_sec) / 1000.0
                }
                _ => 0.0,
            },
            None => 0.0,
        }
    }

    /// How long command acks are delayed at `now` (`None` = no delay).
    pub fn ack_delay(&self, now: SimTime) -> Option<SimDuration> {
        match self.active(now) {
            Some(FaultKind::DelayedAck { delay_ms }) => {
                Some(SimDuration::from_millis(u64::from(delay_ms)))
            }
            _ => None,
        }
    }

    /// Whether command acks are duplicated at `now`.
    pub fn ack_duplicated(&self, now: SimTime) -> bool {
        self.active(now) == Some(FaultKind::DuplicateAck)
    }

    /// All scripted faults.
    pub fn faults(&self) -> &[ScriptedFault] {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn no_faults_means_healthy_forever() {
        let p = FaultPlan::none();
        assert_eq!(p.active(t(1_000_000)), None);
        assert!(!p.is_crashed(t(0)));
    }

    #[test]
    fn transient_fault_window() {
        let p = FaultPlan::none().with_fault(FaultKind::SilentData, t(100), Some(t(200)));
        assert!(!p.is_data_suppressed(t(99)));
        assert!(p.is_data_suppressed(t(100)));
        assert!(p.is_data_suppressed(t(199)));
        assert!(!p.is_data_suppressed(t(200)));
        assert!(!p.is_crashed(t(150)), "silent-data is not a crash");
    }

    #[test]
    fn permanent_crash() {
        let p = FaultPlan::none().with_fault(FaultKind::Crash, t(50), None);
        assert!(p.is_crashed(t(50)));
        assert!(p.is_crashed(t(1_000_000)));
        assert!(p.is_data_suppressed(t(60)));
    }

    #[test]
    fn stuck_value_detection() {
        let p = FaultPlan::none().with_fault(FaultKind::StuckValue, t(10), Some(t(20)));
        assert!(p.is_stuck(t(15)));
        assert!(!p.is_data_suppressed(t(15)), "stuck devices still publish");
    }

    #[test]
    #[should_panic(expected = "recovery must follow onset")]
    fn inverted_window_rejected() {
        let _ = FaultPlan::none().with_fault(FaultKind::Crash, t(10), Some(t(10)));
    }

    /// Regression: `active` used to be first-match-wins, so a `Crash`
    /// scheduled *inside* an earlier still-active `StuckValue` window
    /// was silently ignored. Severity resolution must surface the
    /// crash, then fall back to the stuck window once it recovers.
    #[test]
    fn crash_inside_stuck_window_wins_by_severity() {
        let p = FaultPlan::none()
            .with_fault(FaultKind::StuckValue, t(10), Some(t(100)))
            .with_fault(FaultKind::Crash, t(20), Some(t(30)));
        assert_eq!(p.active(t(15)), Some(FaultKind::StuckValue));
        assert_eq!(p.active(t(25)), Some(FaultKind::Crash), "crash must not be masked");
        assert!(p.is_crashed(t(25)));
        assert!(p.is_data_suppressed(t(25)));
        assert_eq!(p.active(t(30)), Some(FaultKind::StuckValue), "stuck resumes after recovery");
        assert_eq!(p.active(t(100)), None);
    }

    #[test]
    fn severity_ordering_is_total_and_crash_dominant() {
        let kinds = [
            FaultKind::SupervisorCrash,
            FaultKind::Partition { group_a: 0b1000, group_b: 0b0111 },
            FaultKind::Crash,
            FaultKind::SilentData,
            FaultKind::Intermittent { period_ms: 1000, on_ms: 100 },
            FaultKind::StuckValue,
            FaultKind::Drift { bias_milli_per_sec: -50 },
            FaultKind::DelayedAck { delay_ms: 500 },
            FaultKind::DuplicateAck,
        ];
        for w in kinds.windows(2) {
            assert!(w[0].severity() > w[1].severity(), "{:?} !> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn equal_severity_ties_go_to_earliest_onset() {
        let p = FaultPlan::none().with_fault(FaultKind::SilentData, t(20), Some(t(40))).with_fault(
            FaultKind::SilentData,
            t(10),
            Some(t(30)),
        );
        assert_eq!(p.active_fault(t(25)).unwrap().at, t(10));
    }

    #[test]
    fn drift_bias_accumulates_linearly() {
        let p = FaultPlan::none().with_fault(
            FaultKind::Drift { bias_milli_per_sec: -50 },
            t(100),
            Some(t(200)),
        );
        assert_eq!(p.value_bias(t(99)), 0.0);
        assert!((p.value_bias(t(100))).abs() < 1e-9);
        assert!((p.value_bias(t(120)) - (-1.0)).abs() < 1e-9, "20 s at -50 milli/s = -1.0");
        assert_eq!(p.value_bias(t(200)), 0.0, "bias stops at recovery");
        assert!(!p.is_data_suppressed(t(150)), "drifting devices still publish");
    }

    #[test]
    fn intermittent_duty_cycle_phases() {
        let p = FaultPlan::none().with_fault(
            FaultKind::Intermittent { period_ms: 30_000, on_ms: 5_000 },
            t(100),
            None,
        );
        assert!(!p.is_data_suppressed(t(99)));
        assert!(!p.is_data_suppressed(t(100)), "on-phase starts at onset");
        assert!(!p.is_data_suppressed(t(104)));
        assert!(p.is_data_suppressed(t(105)), "off-phase after on_ms");
        assert!(p.is_data_suppressed(t(129)));
        assert!(!p.is_data_suppressed(t(130)), "next period starts publishing again");
    }

    #[test]
    fn ack_fault_queries() {
        let p = FaultPlan::none()
            .with_fault(FaultKind::DelayedAck { delay_ms: 1500 }, t(10), Some(t(20)))
            .with_fault(FaultKind::DuplicateAck, t(30), Some(t(40)));
        assert_eq!(p.ack_delay(t(15)), Some(SimDuration::from_millis(1500)));
        assert_eq!(p.ack_delay(t(25)), None);
        assert!(p.ack_duplicated(t(35)));
        assert!(!p.ack_duplicated(t(15)));
        assert!(!p.is_data_suppressed(t(15)), "ack faults leave the data plane alone");
    }
}
