//! Dose-error reduction system (DERS): the "smart pump" drug library.
//!
//! Misprogramming — a unit mix-up (mg vs µg), a slipped decimal, a
//! rate entered into the bolus field — is the classic infusion-pump
//! accident. A DERS checks every programme against a hospital-curated
//! drug library *before* the pump will run it: **hard limits** can
//! never be crossed; **soft limits** may be overridden by a clinician
//! but are recorded. This module implements that gate for the PCA pump.

use crate::pump::PcaPumpConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A soft/hard ceiling pair for one programmable field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// Above this, a clinician override is required.
    pub soft: f64,
    /// Above this, the programme is rejected outright.
    pub hard: f64,
}

impl Ceiling {
    /// Creates a ceiling pair.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < soft <= hard`.
    pub fn new(soft: f64, hard: f64) -> Self {
        assert!(soft > 0.0 && soft <= hard, "need 0 < soft <= hard, got {soft}/{hard}");
        Ceiling { soft, hard }
    }
}

/// Library limits for one drug.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrugEntry {
    /// Drug name (library key).
    pub name: String,
    /// Per-bolus dose, mg.
    pub bolus_mg: Ceiling,
    /// Basal rate, mg/h.
    pub basal_mg_per_h: Ceiling,
    /// Sliding-hour total, mg.
    pub hourly_mg: Ceiling,
    /// The shortest lockout a programme may use, minutes.
    pub min_lockout_min: f64,
}

/// The programme field a violation concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramField {
    /// Per-bolus dose.
    BolusDose,
    /// Basal rate.
    BasalRate,
    /// Hourly limit.
    HourlyLimit,
    /// Lockout interval.
    Lockout,
}

impl fmt::Display for ProgramField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProgramField::BolusDose => "bolus dose",
            ProgramField::BasalRate => "basal rate",
            ProgramField::HourlyLimit => "hourly limit",
            ProgramField::Lockout => "lockout",
        };
        f.write_str(s)
    }
}

/// One limit violation found in a programme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The offending field.
    pub field: ProgramField,
    /// The programmed value.
    pub value: f64,
    /// The limit it violates.
    pub limit: f64,
    /// `true` for hard (unoverridable) violations.
    pub hard: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} = {} exceeds {} limit {}",
            if self.hard { "HARD:" } else { "soft:" },
            self.field,
            self.value,
            if self.hard { "hard" } else { "soft" },
            self.limit
        )
    }
}

/// Verdict of a programme check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgramVerdict {
    /// Within every limit.
    Accepted,
    /// Soft limits exceeded; runs only with a recorded override.
    NeedsOverride(Vec<Violation>),
    /// Hard limits exceeded; must not run.
    Rejected(Vec<Violation>),
}

impl ProgramVerdict {
    /// Whether the pump may run this programme (possibly with override).
    pub fn is_runnable(&self) -> bool {
        !matches!(self, ProgramVerdict::Rejected(_))
    }
}

/// A hospital drug library.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DrugLibrary {
    entries: BTreeMap<String, DrugEntry>,
}

impl DrugLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// A representative adult post-operative opioid library.
    pub fn adult_postop() -> Self {
        let mut lib = DrugLibrary::new();
        lib.add(DrugEntry {
            name: "morphine".into(),
            bolus_mg: Ceiling::new(1.5, 3.0),
            basal_mg_per_h: Ceiling::new(1.0, 2.0),
            hourly_mg: Ceiling::new(8.0, 12.0),
            min_lockout_min: 5.0,
        });
        lib.add(DrugEntry {
            name: "hydromorphone".into(),
            bolus_mg: Ceiling::new(0.3, 0.6),
            basal_mg_per_h: Ceiling::new(0.2, 0.5),
            hourly_mg: Ceiling::new(1.5, 2.5),
            min_lockout_min: 6.0,
        });
        lib
    }

    /// Adds (or replaces) an entry.
    pub fn add(&mut self, entry: DrugEntry) {
        self.entries.insert(entry.name.clone(), entry);
    }

    /// Looks a drug up.
    pub fn get(&self, drug: &str) -> Option<&DrugEntry> {
        self.entries.get(drug)
    }

    /// Drug names, sorted.
    pub fn drugs(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Checks a pump programme against the library.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `drug` is not in the library — an unlisted drug
    /// must never be programmed through the DERS path.
    pub fn check(&self, drug: &str, config: &PcaPumpConfig) -> Result<ProgramVerdict, UnknownDrug> {
        let entry = self.entries.get(drug).ok_or_else(|| UnknownDrug(drug.to_owned()))?;
        let mut violations = Vec::new();
        let mut probe = |field, value: f64, ceiling: Ceiling| {
            if value > ceiling.hard {
                violations.push(Violation { field, value, limit: ceiling.hard, hard: true });
            } else if value > ceiling.soft {
                violations.push(Violation { field, value, limit: ceiling.soft, hard: false });
            }
        };
        probe(ProgramField::BolusDose, config.bolus_dose_mg, entry.bolus_mg);
        probe(ProgramField::BasalRate, config.basal_rate_mg_per_h, entry.basal_mg_per_h);
        probe(ProgramField::HourlyLimit, config.max_hourly_mg, entry.hourly_mg);
        let lockout_min = config.lockout.as_micros() as f64 / 60e6;
        if lockout_min < entry.min_lockout_min {
            violations.push(Violation {
                field: ProgramField::Lockout,
                value: lockout_min,
                limit: entry.min_lockout_min,
                hard: true,
            });
        }
        if violations.is_empty() {
            Ok(ProgramVerdict::Accepted)
        } else if violations.iter().any(|v| v.hard) {
            Ok(ProgramVerdict::Rejected(violations))
        } else {
            Ok(ProgramVerdict::NeedsOverride(violations))
        }
    }
}

/// Error: the drug is not in the library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDrug(pub String);

impl fmt::Display for UnknownDrug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drug {:?} is not in the library", self.0)
    }
}

impl std::error::Error for UnknownDrug {}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::time::SimDuration;

    fn sane_morphine() -> PcaPumpConfig {
        PcaPumpConfig {
            bolus_dose_mg: 1.0,
            lockout: SimDuration::from_mins(6),
            basal_rate_mg_per_h: 0.0,
            max_hourly_mg: 8.0,
            ..PcaPumpConfig::default()
        }
    }

    #[test]
    fn sane_programme_accepted() {
        let lib = DrugLibrary::adult_postop();
        assert_eq!(lib.check("morphine", &sane_morphine()).unwrap(), ProgramVerdict::Accepted);
    }

    #[test]
    fn unit_mixup_hits_hard_limit() {
        // Classic 10x slip: 1.0 mg bolus keyed as 10.0.
        let lib = DrugLibrary::adult_postop();
        let cfg = PcaPumpConfig { bolus_dose_mg: 10.0, ..sane_morphine() };
        let verdict = lib.check("morphine", &cfg).unwrap();
        match &verdict {
            ProgramVerdict::Rejected(vs) => {
                assert!(vs.iter().any(|v| v.field == ProgramField::BolusDose && v.hard));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(!verdict.is_runnable());
    }

    #[test]
    fn aggressive_but_plausible_needs_override() {
        let lib = DrugLibrary::adult_postop();
        let cfg = PcaPumpConfig { bolus_dose_mg: 2.0, ..sane_morphine() }; // soft 1.5, hard 3.0
        let verdict = lib.check("morphine", &cfg).unwrap();
        match &verdict {
            ProgramVerdict::NeedsOverride(vs) => {
                assert_eq!(vs.len(), 1);
                assert!(!vs[0].hard);
            }
            other => panic!("expected override, got {other:?}"),
        }
        assert!(verdict.is_runnable());
    }

    #[test]
    fn wrong_drug_limits_catch_cross_programming() {
        // A morphine-sized bolus programmed under hydromorphone (5–7x
        // more potent) smashes the hard limit — the lookalike-vial case.
        let lib = DrugLibrary::adult_postop();
        let verdict = lib.check("hydromorphone", &sane_morphine()).unwrap();
        assert!(!verdict.is_runnable(), "{verdict:?}");
    }

    #[test]
    fn short_lockout_is_hard_rejected() {
        let lib = DrugLibrary::adult_postop();
        let cfg = PcaPumpConfig { lockout: SimDuration::from_secs(60), ..sane_morphine() };
        let verdict = lib.check("morphine", &cfg).unwrap();
        match verdict {
            ProgramVerdict::Rejected(vs) => {
                assert!(vs.iter().any(|v| v.field == ProgramField::Lockout));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_drug_is_an_error() {
        let lib = DrugLibrary::adult_postop();
        let err = lib.check("water", &sane_morphine()).unwrap_err();
        assert_eq!(err, UnknownDrug("water".into()));
        assert!(err.to_string().contains("water"));
    }

    #[test]
    fn multiple_violations_reported_together() {
        let lib = DrugLibrary::adult_postop();
        let cfg = PcaPumpConfig {
            bolus_dose_mg: 2.0,       // soft
            basal_rate_mg_per_h: 5.0, // hard
            max_hourly_mg: 20.0,      // hard
            ..sane_morphine()
        };
        match lib.check("morphine", &cfg).unwrap() {
            ProgramVerdict::Rejected(vs) => assert_eq!(vs.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "soft <= hard")]
    fn inverted_ceiling_rejected() {
        let _ = Ceiling::new(3.0, 1.0);
    }

    #[test]
    fn library_listing() {
        let lib = DrugLibrary::adult_postop();
        let drugs: Vec<&str> = lib.drugs().collect();
        assert_eq!(drugs, vec!["hydromorphone", "morphine"]);
        assert!(lib.get("morphine").is_some());
    }
}
