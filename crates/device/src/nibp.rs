//! Non-invasive blood pressure (NIBP) monitor.
//!
//! Unlike continuous monitors, an NIBP cuff measures *intermittently*:
//! every few minutes it inflates, occludes the artery for tens of
//! seconds, and produces one systolic/diastolic pair. Two properties
//! matter to an MCPS: the data is sparse (freshness windows must be
//! sized per stream), and during inflation any same-limb SpO₂ probe is
//! blinded — a scheduled, *benign* artifact an alarm algorithm must not
//! mistake for desaturation.

use crate::profile::{DeviceClass, DeviceProfile, LatencyClass};
use mcps_patient::sensors::{SensorSpec, SimulatedSensor};
use mcps_patient::vitals::{VitalKind, VitalsFrame};
use mcps_sim::time::{SimDuration, SimTime};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// NIBP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NibpConfig {
    /// Interval between measurement cycles.
    pub cycle_interval: SimDuration,
    /// Cuff inflation + deflation time per measurement.
    pub measurement_duration: SimDuration,
    /// Whether the cuff shares a limb with the SpO₂ probe (blinding it
    /// during inflation).
    pub same_limb_as_oximeter: bool,
}

impl Default for NibpConfig {
    fn default() -> Self {
        NibpConfig {
            cycle_interval: SimDuration::from_mins(5),
            measurement_duration: SimDuration::from_secs(40),
            same_limb_as_oximeter: true,
        }
    }
}

impl NibpConfig {
    /// Validates timing sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.measurement_duration >= self.cycle_interval {
            return Err("measurement must be shorter than the cycle interval".into());
        }
        if self.measurement_duration.is_zero() {
            return Err("measurement duration must be positive".into());
        }
        Ok(())
    }
}

/// One completed NIBP reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NibpReading {
    /// When the measurement completed.
    pub at: SimTime,
    /// Systolic pressure, mmHg.
    pub systolic: f64,
    /// Diastolic pressure, mmHg.
    pub diastolic: f64,
}

/// The NIBP monitor state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NibpMonitor {
    config: NibpConfig,
    sys_sensor: SimulatedSensor,
    dia_sensor: SimulatedSensor,
    /// Start of the current/next measurement cycle.
    next_cycle_at: SimTime,
    /// If measuring: when the cuff deflates.
    measuring_until: Option<SimTime>,
    readings: Vec<NibpReading>,
}

impl NibpMonitor {
    /// Creates a monitor whose first cycle starts at `first_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`NibpConfig::validate`].
    pub fn new(first_cycle: SimTime, config: NibpConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid NIBP config: {e}");
        }
        NibpMonitor {
            config,
            sys_sensor: SimulatedSensor::new(
                VitalKind::BpSystolic,
                SensorSpec::default_for(VitalKind::BpSystolic),
            ),
            dia_sensor: SimulatedSensor::new(
                VitalKind::BpDiastolic,
                SensorSpec::default_for(VitalKind::BpDiastolic),
            ),
            next_cycle_at: first_cycle,
            measuring_until: None,
            readings: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NibpConfig {
        &self.config
    }

    /// The capability profile.
    pub fn profile(serial: &str) -> DeviceProfile {
        DeviceProfile::builder("GE", "Dinamap-NX", serial, DeviceClass::Monitor)
            .stream(VitalKind::BpSystolic, SimDuration::from_mins(5), LatencyClass::BestEffort)
            .stream(VitalKind::BpDiastolic, SimDuration::from_mins(5), LatencyClass::BestEffort)
            .build()
    }

    /// Whether the cuff is inflated at `now` (blinding a same-limb
    /// SpO₂ probe if configured).
    pub fn cuff_inflated(&self, now: SimTime) -> bool {
        self.measuring_until.is_some_and(|until| now < until)
    }

    /// Whether a same-limb oximeter is blinded at `now`.
    pub fn blinds_oximeter(&self, now: SimTime) -> bool {
        self.config.same_limb_as_oximeter && self.cuff_inflated(now)
    }

    /// Advances the cycle state machine; returns a completed reading
    /// when one finishes at or before `now`.
    pub fn poll(
        &mut self,
        now: SimTime,
        truth: &VitalsFrame,
        rng: &mut impl RngCore,
    ) -> Option<NibpReading> {
        // Completion first.
        if let Some(until) = self.measuring_until {
            if now >= until {
                self.measuring_until = None;
                let t = until.as_secs_f64();
                let sys = self.sys_sensor.read(t, 1.0, truth.bp_systolic, rng).value?;
                let dia = self.dia_sensor.read(t, 1.0, truth.bp_diastolic, rng).value?;
                // A cuff cannot report diastolic ≥ systolic.
                let dia = dia.min(sys - 5.0).max(10.0);
                let reading = NibpReading { at: until, systolic: sys, diastolic: dia };
                self.readings.push(reading);
                return Some(reading);
            }
        } else if now >= self.next_cycle_at {
            self.measuring_until = Some(self.next_cycle_at + self.config.measurement_duration);
            self.next_cycle_at += self.config.cycle_interval;
        }
        None
    }

    /// All completed readings.
    pub fn readings(&self) -> &[NibpReading] {
        &self.readings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;

    fn truth() -> VitalsFrame {
        VitalsFrame {
            spo2: 97.0,
            heart_rate: 72.0,
            resp_rate: 14.0,
            etco2: 38.0,
            bp_systolic: 122.0,
            bp_diastolic: 78.0,
            minute_ventilation: 6.0,
        }
    }

    fn run(mins: u64) -> NibpMonitor {
        let mut m = NibpMonitor::new(SimTime::from_secs(30), NibpConfig::default());
        let mut rng = RngFactory::new(3).stream("nibp");
        let f = truth();
        for s in 0..mins * 60 {
            m.poll(SimTime::from_secs(s), &f, &mut rng);
        }
        m
    }

    #[test]
    fn cycles_produce_periodic_readings() {
        let m = run(30);
        // First cycle at t=30s, then every 5 min ⇒ ~6 readings in 30 min.
        assert!((5..=7).contains(&m.readings().len()), "{}", m.readings().len());
        // Values are near the truth.
        for r in m.readings() {
            assert!((r.systolic - 122.0).abs() < 35.0, "sys {}", r.systolic);
            assert!(r.diastolic < r.systolic);
        }
    }

    #[test]
    fn cuff_inflation_window() {
        let mut m = NibpMonitor::new(SimTime::from_secs(10), NibpConfig::default());
        let mut rng = RngFactory::new(4).stream("nibp2");
        let f = truth();
        assert!(!m.cuff_inflated(SimTime::from_secs(5)));
        m.poll(SimTime::from_secs(10), &f, &mut rng); // cycle starts
        assert!(m.cuff_inflated(SimTime::from_secs(20)));
        assert!(m.blinds_oximeter(SimTime::from_secs(20)));
        // Reading completes at t=50; cuff down after.
        let r = m.poll(SimTime::from_secs(50), &f, &mut rng);
        assert!(r.is_some());
        assert!(!m.cuff_inflated(SimTime::from_secs(51)));
    }

    #[test]
    fn different_limb_does_not_blind() {
        let cfg = NibpConfig { same_limb_as_oximeter: false, ..NibpConfig::default() };
        let mut m = NibpMonitor::new(SimTime::ZERO, cfg);
        let mut rng = RngFactory::new(5).stream("nibp3");
        m.poll(SimTime::ZERO, &truth(), &mut rng);
        assert!(m.cuff_inflated(SimTime::from_secs(10)));
        assert!(!m.blinds_oximeter(SimTime::from_secs(10)));
    }

    #[test]
    fn diastolic_never_exceeds_systolic() {
        let m = run(120);
        for r in m.readings() {
            assert!(r.diastolic <= r.systolic - 5.0);
        }
    }

    #[test]
    fn profile_declares_intermittent_streams() {
        let p = NibpMonitor::profile("NIBP-1");
        assert!(p.provides_stream(
            VitalKind::BpSystolic,
            SimDuration::from_mins(5),
            LatencyClass::BestEffort
        ));
        assert!(!p.provides_stream(
            VitalKind::BpSystolic,
            SimDuration::from_secs(1),
            LatencyClass::Realtime
        ));
    }

    #[test]
    #[should_panic(expected = "invalid NIBP config")]
    fn bad_config_panics() {
        let cfg = NibpConfig {
            cycle_interval: SimDuration::from_secs(30),
            measurement_duration: SimDuration::from_secs(40),
            ..NibpConfig::default()
        };
        let _ = NibpMonitor::new(SimTime::ZERO, cfg);
    }
}
