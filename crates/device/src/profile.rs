//! Device identity and capability profiles.
//!
//! On-demand interoperability — assembling an MCPS at the bedside from
//! whatever devices are present — requires devices to *describe
//! themselves*: what data they publish, what commands they accept, and
//! how timely they are. A clinical app then states its requirements and
//! the ICE device manager matches the two before association. These
//! types are the vocabulary of that negotiation.

use mcps_patient::vitals::VitalKind;
use mcps_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad regulatory class of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Infusion / drug-delivery devices.
    Infusion,
    /// Physiological monitors.
    Monitor,
    /// Respiratory support.
    Ventilation,
    /// Imaging equipment.
    Imaging,
    /// Anything else.
    Other,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Infusion => "infusion",
            DeviceClass::Monitor => "monitor",
            DeviceClass::Ventilation => "ventilation",
            DeviceClass::Imaging => "imaging",
            DeviceClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Command verbs a device may accept over the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Immediately stop drug delivery / motion.
    Stop,
    /// Resume after a stop.
    Resume,
    /// Grant a time-limited permission ticket (fail-safe interlock).
    GrantTicket,
    /// Request a patient bolus.
    RequestBolus,
    /// Change the basal/infusion rate.
    SetRate,
    /// Pause ventilation for a bounded window.
    PauseVentilation,
    /// Resume ventilation.
    ResumeVentilation,
    /// Arm an imaging exposure.
    ArmExposure,
    /// Fire an imaging exposure.
    Expose,
}

/// Timeliness class of a published stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Suitable for closed-loop control (sub-second end-to-end).
    Realtime,
    /// Suitable for alarm generation (a few seconds).
    NearRealtime,
    /// Trend/records only.
    BestEffort,
}

/// One data stream a device publishes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// The vital sign carried.
    pub kind: VitalKind,
    /// Publication period.
    pub period: SimDuration,
    /// Timeliness class.
    pub latency_class: LatencyClass,
}

/// The self-description a device presents at association time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Manufacturer name.
    pub vendor: String,
    /// Model name.
    pub model: String,
    /// Unique serial number.
    pub serial: String,
    /// Regulatory class.
    pub class: DeviceClass,
    /// Streams the device publishes.
    pub streams: Vec<StreamSpec>,
    /// Commands the device accepts.
    pub commands: Vec<CommandKind>,
}

impl DeviceProfile {
    /// Starts building a profile.
    pub fn builder(
        vendor: &str,
        model: &str,
        serial: &str,
        class: DeviceClass,
    ) -> DeviceProfileBuilder {
        DeviceProfileBuilder {
            profile: DeviceProfile {
                vendor: vendor.to_owned(),
                model: model.to_owned(),
                serial: serial.to_owned(),
                class,
                streams: Vec::new(),
                commands: Vec::new(),
            },
        }
    }

    /// Whether the device publishes `kind` at least as often as
    /// `max_period` and at least as timely as `class`.
    pub fn provides_stream(
        &self,
        kind: VitalKind,
        max_period: SimDuration,
        class: LatencyClass,
    ) -> bool {
        self.streams
            .iter()
            .any(|s| s.kind == kind && s.period <= max_period && s.latency_class <= class)
    }

    /// Whether the device accepts `command`.
    pub fn accepts_command(&self, command: CommandKind) -> bool {
        self.commands.contains(&command)
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} (sn {}, {})", self.vendor, self.model, self.serial, self.class)
    }
}

/// Incremental builder for [`DeviceProfile`].
#[derive(Debug, Clone)]
pub struct DeviceProfileBuilder {
    profile: DeviceProfile,
}

impl DeviceProfileBuilder {
    /// Adds a published stream.
    pub fn stream(mut self, kind: VitalKind, period: SimDuration, class: LatencyClass) -> Self {
        self.profile.streams.push(StreamSpec { kind, period, latency_class: class });
        self
    }

    /// Adds an accepted command.
    pub fn command(mut self, command: CommandKind) -> Self {
        if !self.profile.commands.contains(&command) {
            self.profile.commands.push(command);
        }
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> DeviceProfile {
        self.profile
    }
}

/// One requirement a clinical app places on a device slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Requirement {
    /// Needs a stream of `kind` with at most `max_period` between
    /// samples and at least the given timeliness.
    Stream {
        /// The vital required.
        kind: VitalKind,
        /// Maximum acceptable publication period.
        max_period: SimDuration,
        /// Minimum acceptable timeliness class.
        latency_class: LatencyClass,
    },
    /// Needs the device to accept a command.
    Command(CommandKind),
    /// Needs the device to be of a specific class.
    Class(DeviceClass),
}

impl Requirement {
    /// Whether `profile` satisfies this requirement.
    pub fn satisfied_by(&self, profile: &DeviceProfile) -> bool {
        match self {
            Requirement::Stream { kind, max_period, latency_class } => {
                profile.provides_stream(*kind, *max_period, *latency_class)
            }
            Requirement::Command(c) => profile.accepts_command(*c),
            Requirement::Class(c) => profile.class == *c,
        }
    }
}

/// A named device slot in a clinical app: "I need *a* pulse oximeter
/// with these properties", vendor-agnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRequirementSet {
    /// Human-readable slot name, e.g. `"oximeter"`.
    pub slot: String,
    /// Requirements every candidate must satisfy.
    pub requirements: Vec<Requirement>,
}

impl DeviceRequirementSet {
    /// Creates a requirement set for a named slot.
    pub fn new(slot: &str, requirements: Vec<Requirement>) -> Self {
        DeviceRequirementSet { slot: slot.to_owned(), requirements }
    }

    /// Whether `profile` satisfies every requirement.
    pub fn matches(&self, profile: &DeviceProfile) -> bool {
        self.requirements.iter().all(|r| r.satisfied_by(profile))
    }

    /// The requirements not met by `profile` (for diagnostics).
    pub fn unmet<'a>(&'a self, profile: &DeviceProfile) -> Vec<&'a Requirement> {
        self.requirements.iter().filter(|r| !r.satisfied_by(profile)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oximeter_profile() -> DeviceProfile {
        DeviceProfile::builder("Acme", "OxiMax 9", "SN-1", DeviceClass::Monitor)
            .stream(VitalKind::Spo2, SimDuration::from_secs(1), LatencyClass::Realtime)
            .stream(VitalKind::HeartRate, SimDuration::from_secs(1), LatencyClass::Realtime)
            .build()
    }

    fn pump_profile() -> DeviceProfile {
        DeviceProfile::builder("Baxa", "PCA-3", "SN-2", DeviceClass::Infusion)
            .command(CommandKind::Stop)
            .command(CommandKind::Resume)
            .command(CommandKind::GrantTicket)
            .command(CommandKind::RequestBolus)
            .build()
    }

    #[test]
    fn stream_matching_respects_rate_and_class() {
        let p = oximeter_profile();
        assert!(p.provides_stream(
            VitalKind::Spo2,
            SimDuration::from_secs(2),
            LatencyClass::Realtime
        ));
        assert!(p.provides_stream(
            VitalKind::Spo2,
            SimDuration::from_secs(1),
            LatencyClass::BestEffort
        ));
        // Needs faster than the device publishes: no match.
        assert!(!p.provides_stream(
            VitalKind::Spo2,
            SimDuration::from_millis(100),
            LatencyClass::Realtime
        ));
        // Vital not published at all.
        assert!(!p.provides_stream(
            VitalKind::Etco2,
            SimDuration::from_secs(60),
            LatencyClass::BestEffort
        ));
    }

    #[test]
    fn latency_class_ordering() {
        assert!(LatencyClass::Realtime < LatencyClass::NearRealtime);
        assert!(LatencyClass::NearRealtime < LatencyClass::BestEffort);
    }

    #[test]
    fn requirement_set_matching() {
        let need_oximeter = DeviceRequirementSet::new(
            "oximeter",
            vec![
                Requirement::Class(DeviceClass::Monitor),
                Requirement::Stream {
                    kind: VitalKind::Spo2,
                    max_period: SimDuration::from_secs(5),
                    latency_class: LatencyClass::NearRealtime,
                },
            ],
        );
        assert!(need_oximeter.matches(&oximeter_profile()));
        assert!(!need_oximeter.matches(&pump_profile()));
        assert_eq!(need_oximeter.unmet(&pump_profile()).len(), 2);
    }

    #[test]
    fn command_requirements() {
        let need_stoppable_pump = DeviceRequirementSet::new(
            "pca-pump",
            vec![
                Requirement::Class(DeviceClass::Infusion),
                Requirement::Command(CommandKind::Stop),
                Requirement::Command(CommandKind::GrantTicket),
            ],
        );
        assert!(need_stoppable_pump.matches(&pump_profile()));
        // A pump without ticket support fails the ticket requirement.
        let legacy = DeviceProfile::builder("Old", "Pump-1", "SN-3", DeviceClass::Infusion)
            .command(CommandKind::Stop)
            .build();
        assert!(!need_stoppable_pump.matches(&legacy));
        assert_eq!(need_stoppable_pump.unmet(&legacy).len(), 1);
    }

    #[test]
    fn builder_dedups_commands() {
        let p = DeviceProfile::builder("V", "M", "S", DeviceClass::Other)
            .command(CommandKind::Stop)
            .command(CommandKind::Stop)
            .build();
        assert_eq!(p.commands.len(), 1);
    }

    #[test]
    fn display_is_informative() {
        let s = pump_profile().to_string();
        assert!(s.contains("Baxa") && s.contains("PCA-3") && s.contains("infusion"));
    }
}
