//! Multi-channel vital-sign monitoring devices.
//!
//! [`VitalsMonitor`] is a generic bedside monitor: it owns one
//! [`SimulatedSensor`] per channel, samples the virtual patient on a
//! fixed period, applies the short moving average real devices use, and
//! emits [`Measurement`]s. [`pulse_oximeter`] and [`capnograph`] build
//! the two concrete monitors the PCA scenario needs.

use crate::profile::{DeviceClass, DeviceProfile, LatencyClass};
use mcps_patient::sensors::{SensorSpec, SignalQuality, SimulatedSensor};
use mcps_patient::vitals::{VitalKind, VitalsFrame};
use mcps_sim::time::{SimDuration, SimTime};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One reported measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The vital measured.
    pub kind: VitalKind,
    /// Reported (averaged) value.
    pub value: f64,
    /// Measurement time.
    pub at: SimTime,
    /// Quality of the *latest* underlying sample. Devices surface this
    /// honestly here so experiments can score algorithms; alarm logic
    /// must treat it as unavailable (real probes often don't know).
    pub quality: SignalQuality,
}

/// Configuration of one monitor channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Vital to measure.
    pub kind: VitalKind,
    /// Sensor imperfection model.
    pub sensor: SensorSpec,
    /// Moving-average length in samples (≥ 1).
    pub averaging: usize,
}

/// A multi-channel monitoring device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VitalsMonitor {
    profile: DeviceProfile,
    sample_period: SimDuration,
    channels: Vec<ChannelConfig>,
    sensors: Vec<SimulatedSensor>,
    buffers: Vec<VecDeque<f64>>,
    last_sample: Option<SimTime>,
}

impl VitalsMonitor {
    /// Builds a monitor.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty, any `averaging` is 0, or
    /// `sample_period` is zero.
    pub fn new(
        vendor: &str,
        model: &str,
        serial: &str,
        sample_period: SimDuration,
        channels: Vec<ChannelConfig>,
    ) -> Self {
        assert!(!channels.is_empty(), "monitor needs at least one channel");
        assert!(!sample_period.is_zero(), "sample period must be positive");
        assert!(channels.iter().all(|c| c.averaging >= 1), "averaging must be ≥ 1");
        let mut builder = DeviceProfile::builder(vendor, model, serial, DeviceClass::Monitor);
        for c in &channels {
            builder = builder.stream(c.kind, sample_period, LatencyClass::Realtime);
        }
        let sensors = channels.iter().map(|c| SimulatedSensor::new(c.kind, c.sensor)).collect();
        let buffers = channels.iter().map(|_| VecDeque::new()).collect();
        VitalsMonitor {
            profile: builder.build(),
            sample_period,
            channels,
            sensors,
            buffers,
            last_sample: None,
        }
    }

    /// The device's capability profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The sampling period.
    pub fn sample_period(&self) -> SimDuration {
        self.sample_period
    }

    /// The vitals this monitor reports.
    pub fn kinds(&self) -> Vec<VitalKind> {
        self.channels.iter().map(|c| c.kind).collect()
    }

    /// Takes one sample of the patient's true vitals and returns the
    /// measurements produced (channels in dropout produce nothing).
    pub fn sample(
        &mut self,
        now: SimTime,
        truth: &VitalsFrame,
        rng: &mut impl RngCore,
    ) -> Vec<Measurement> {
        let dt_secs = match self.last_sample {
            Some(t) => now.saturating_since(t).as_secs_f64().max(1e-6),
            None => self.sample_period.as_secs_f64(),
        };
        self.last_sample = Some(now);
        let mut out = Vec::with_capacity(self.channels.len());
        for (i, ch) in self.channels.iter().enumerate() {
            let reading =
                self.sensors[i].read(now.as_secs_f64(), dt_secs, truth.value(ch.kind), rng);
            let Some(v) = reading.value else {
                // Probe-off: the averaging buffer ages out so a stale
                // average is not reported when signal returns.
                self.buffers[i].clear();
                continue;
            };
            let buf = &mut self.buffers[i];
            buf.push_back(v);
            while buf.len() > ch.averaging {
                buf.pop_front();
            }
            let avg = buf.iter().sum::<f64>() / buf.len() as f64;
            out.push(Measurement { kind: ch.kind, value: avg, at: now, quality: reading.quality });
        }
        out
    }
}

/// A pulse oximeter: SpO₂ + heart rate at 1 Hz with 4-sample averaging
/// and realistic motion artifacts.
pub fn pulse_oximeter(serial: &str) -> VitalsMonitor {
    VitalsMonitor::new(
        "Acme",
        "OxiMax-9",
        serial,
        SimDuration::from_secs(1),
        vec![
            ChannelConfig {
                kind: VitalKind::Spo2,
                sensor: SensorSpec::default_for(VitalKind::Spo2),
                averaging: 4,
            },
            ChannelConfig {
                kind: VitalKind::HeartRate,
                sensor: SensorSpec::default_for(VitalKind::HeartRate),
                averaging: 4,
            },
        ],
    )
}

/// A capnograph: EtCO₂ + respiratory rate at 1 Hz.
pub fn capnograph(serial: &str) -> VitalsMonitor {
    VitalsMonitor::new(
        "Acme",
        "CapnoStream-5",
        serial,
        SimDuration::from_secs(1),
        vec![
            ChannelConfig {
                kind: VitalKind::Etco2,
                sensor: SensorSpec::default_for(VitalKind::Etco2),
                averaging: 4,
            },
            ChannelConfig {
                kind: VitalKind::RespRate,
                sensor: SensorSpec::default_for(VitalKind::RespRate),
                averaging: 4,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;

    fn healthy_frame() -> VitalsFrame {
        VitalsFrame {
            spo2: 97.0,
            heart_rate: 72.0,
            resp_rate: 14.0,
            etco2: 38.0,
            bp_systolic: 120.0,
            bp_diastolic: 80.0,
            minute_ventilation: 6.0,
        }
    }

    fn rng() -> mcps_sim::rng::SimRng {
        RngFactory::new(21).stream("monitor-test")
    }

    #[test]
    fn oximeter_reports_two_channels() {
        let mut m = pulse_oximeter("SN-1");
        let mut r = rng();
        let out = m.sample(SimTime::from_secs(1), &healthy_frame(), &mut r);
        // Both channels unless a dropout started immediately.
        assert!(!out.is_empty() && out.len() <= 2);
        for meas in &out {
            assert!(matches!(meas.kind, VitalKind::Spo2 | VitalKind::HeartRate));
        }
    }

    #[test]
    fn averaging_smooths_noise() {
        let noisy = ChannelConfig {
            kind: VitalKind::Spo2,
            sensor: SensorSpec { noise_std: 2.0, quantization: 0.0, ..SensorSpec::ideal() },
            averaging: 8,
        };
        let raw = ChannelConfig { averaging: 1, ..noisy };
        let mut smooth_monitor =
            VitalsMonitor::new("T", "S", "1", SimDuration::from_secs(1), vec![noisy]);
        let mut raw_monitor =
            VitalsMonitor::new("T", "R", "2", SimDuration::from_secs(1), vec![raw]);
        let mut r1 = rng();
        let mut r2 = RngFactory::new(22).stream("monitor-raw");
        let f = healthy_frame();
        let spread = |m: &mut VitalsMonitor, r: &mut mcps_sim::rng::SimRng| {
            let vals: Vec<f64> = (0..500)
                .filter_map(|i| m.sample(SimTime::from_secs(i + 1), &f, r).first().map(|x| x.value))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let s_smooth = spread(&mut smooth_monitor, &mut r1);
        let s_raw = spread(&mut raw_monitor, &mut r2);
        assert!(s_smooth < 0.6 * s_raw, "averaging should cut spread: {s_smooth} vs {s_raw}");
    }

    #[test]
    fn dropout_clears_buffer() {
        let ch = ChannelConfig {
            kind: VitalKind::Etco2,
            sensor: SensorSpec {
                artifact_rate_per_hour: 3_600_000.0, // certain immediate dropout
                artifact_mean_secs: 100_000.0,
                ..SensorSpec::ideal()
            },
            averaging: 4,
        };
        let mut m = VitalsMonitor::new("T", "D", "3", SimDuration::from_secs(1), vec![ch]);
        let mut r = rng();
        let f = healthy_frame();
        let first = m.sample(SimTime::from_secs(1), &f, &mut r);
        // The artifact process needs one observed interval to fire; by
        // the second sample the channel is silent.
        let second = m.sample(SimTime::from_secs(2), &f, &mut r);
        assert!(first.len() + second.len() < 2, "dropout should silence the channel");
    }

    #[test]
    fn profile_lists_streams() {
        let m = capnograph("SN-2");
        assert!(m.profile().provides_stream(
            VitalKind::Etco2,
            SimDuration::from_secs(1),
            LatencyClass::Realtime
        ));
        assert!(m.profile().provides_stream(
            VitalKind::RespRate,
            SimDuration::from_secs(5),
            LatencyClass::BestEffort
        ));
        assert_eq!(m.kinds(), vec![VitalKind::Etco2, VitalKind::RespRate]);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_channels_rejected() {
        let _ = VitalsMonitor::new("T", "E", "4", SimDuration::from_secs(1), vec![]);
    }
}
