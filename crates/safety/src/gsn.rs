//! Goal Structuring Notation (GSN) assurance cases.
//!
//! Certifiability is one of the paper's six MCPS challenges: the safety
//! argument for a bedside-assembled system must be explicit, auditable
//! and mechanically checkable for structural completeness. This module
//! provides a typed GSN graph — goals decomposed through strategies
//! down to solutions (evidence) — with validation (acyclicity, no
//! undeveloped goals) and text/DOT rendering.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The kind of a GSN node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A claim to be supported.
    Goal,
    /// How a goal is decomposed into subgoals.
    Strategy,
    /// Evidence that closes a goal (test report, proof, analysis).
    Solution,
    /// Contextual statement.
    Context,
    /// An assumption the argument rests on.
    Assumption,
    /// A justification of a strategy choice.
    Justification,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Goal => "Goal",
            NodeKind::Strategy => "Strategy",
            NodeKind::Solution => "Solution",
            NodeKind::Context => "Context",
            NodeKind::Assumption => "Assumption",
            NodeKind::Justification => "Justification",
        };
        f.write_str(s)
    }
}

/// Identifier of a node within one assurance case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

/// One GSN node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node kind.
    pub kind: NodeKind,
    /// Short reference label, e.g. `"G1"`.
    pub label: String,
    /// The claim/strategy/evidence statement.
    pub statement: String,
}

/// A GSN assurance case graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssuranceCase {
    nodes: Vec<Node>,
    /// `supported_by[a]` = children that support `a`.
    supported_by: BTreeMap<usize, Vec<usize>>,
    /// `in_context_of[a]` = context/assumption nodes attached to `a`.
    in_context_of: BTreeMap<usize, Vec<usize>>,
    root: Option<usize>,
}

/// A structural problem found by [`AssuranceCase::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GsnIssue {
    /// No root goal has been set.
    NoRoot,
    /// A goal has no supporting children (undeveloped).
    UndevelopedGoal(String),
    /// A strategy has no supporting subgoals/solutions.
    EmptyStrategy(String),
    /// The support graph contains a cycle through this node.
    Cycle(String),
    /// A solution supports nothing / is unreachable from the root.
    Orphan(String),
    /// An edge violates GSN typing rules.
    BadEdge(String, String),
}

impl fmt::Display for GsnIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsnIssue::NoRoot => f.write_str("no root goal set"),
            GsnIssue::UndevelopedGoal(l) => write!(f, "goal {l} is undeveloped (no support)"),
            GsnIssue::EmptyStrategy(l) => write!(f, "strategy {l} has no subgoals"),
            GsnIssue::Cycle(l) => write!(f, "support cycle through {l}"),
            GsnIssue::Orphan(l) => write!(f, "node {l} is unreachable from the root"),
            GsnIssue::BadEdge(a, b) => write!(f, "edge {a} -> {b} violates GSN typing"),
        }
    }
}

impl AssuranceCase {
    /// An empty case.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id. The first goal added becomes the
    /// root unless [`Self::set_root`] overrides it.
    pub fn add(&mut self, kind: NodeKind, label: &str, statement: &str) -> NodeId {
        self.nodes.push(Node { kind, label: label.to_owned(), statement: statement.to_owned() });
        let id = self.nodes.len() - 1;
        if self.root.is_none() && kind == NodeKind::Goal {
            self.root = Some(id);
        }
        NodeId(id)
    }

    /// Convenience: add a goal.
    pub fn goal(&mut self, label: &str, statement: &str) -> NodeId {
        self.add(NodeKind::Goal, label, statement)
    }

    /// Convenience: add a strategy.
    pub fn strategy(&mut self, label: &str, statement: &str) -> NodeId {
        self.add(NodeKind::Strategy, label, statement)
    }

    /// Convenience: add a solution (evidence).
    pub fn solution(&mut self, label: &str, statement: &str) -> NodeId {
        self.add(NodeKind::Solution, label, statement)
    }

    /// Sets the root goal.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a goal.
    pub fn set_root(&mut self, root: NodeId) {
        assert_eq!(self.nodes[root.0].kind, NodeKind::Goal, "root must be a goal");
        self.root = Some(root.0);
    }

    /// Declares that `child` supports `parent` (SupportedBy edge).
    pub fn supported_by(&mut self, parent: NodeId, child: NodeId) {
        self.supported_by.entry(parent.0).or_default().push(child.0);
    }

    /// Attaches `context` to `node` (InContextOf edge).
    pub fn in_context_of(&mut self, node: NodeId, context: NodeId) {
        self.in_context_of.entry(node.0).or_default().push(context.0);
    }

    /// The node data for an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the case is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Structural validation. An empty vector means the argument is
    /// structurally complete (every goal developed down to solutions,
    /// no cycles, everything reachable).
    pub fn validate(&self) -> Vec<GsnIssue> {
        let mut issues = Vec::new();
        let Some(root) = self.root else {
            return vec![GsnIssue::NoRoot];
        };

        // Edge typing: SupportedBy must go Goal->{Goal,Strategy,Solution},
        // Strategy->{Goal,Solution}; InContextOf targets context-like nodes.
        for (&p, children) in &self.supported_by {
            for &c in children {
                let ok = matches!(
                    (self.nodes[p].kind, self.nodes[c].kind),
                    (NodeKind::Goal, NodeKind::Goal)
                        | (NodeKind::Goal, NodeKind::Strategy)
                        | (NodeKind::Goal, NodeKind::Solution)
                        | (NodeKind::Strategy, NodeKind::Goal)
                        | (NodeKind::Strategy, NodeKind::Solution)
                );
                if !ok {
                    issues.push(GsnIssue::BadEdge(
                        self.nodes[p].label.clone(),
                        self.nodes[c].label.clone(),
                    ));
                }
            }
        }
        for (&n, ctxs) in &self.in_context_of {
            for &c in ctxs {
                let ok = matches!(
                    self.nodes[c].kind,
                    NodeKind::Context | NodeKind::Assumption | NodeKind::Justification
                ) && matches!(self.nodes[n].kind, NodeKind::Goal | NodeKind::Strategy);
                if !ok {
                    issues.push(GsnIssue::BadEdge(
                        self.nodes[n].label.clone(),
                        self.nodes[c].label.clone(),
                    ));
                }
            }
        }

        // Cycle detection (DFS colouring) over SupportedBy.
        let mut colour = vec![0u8; self.nodes.len()];
        let mut stack = vec![(root, false)];
        let mut cycle: Option<usize> = None;
        while let Some((n, done)) = stack.pop() {
            if done {
                colour[n] = 2;
                continue;
            }
            if colour[n] == 1 {
                continue;
            }
            colour[n] = 1;
            stack.push((n, true));
            for &c in self.supported_by.get(&n).into_iter().flatten() {
                if colour[c] == 1 {
                    cycle = Some(c);
                } else if colour[c] == 0 {
                    stack.push((c, false));
                }
            }
        }
        if let Some(c) = cycle {
            issues.push(GsnIssue::Cycle(self.nodes[c].label.clone()));
            return issues; // development checks unreliable with cycles
        }

        // Reachability from the root (through both edge kinds).
        let mut reach = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !reach.insert(n) {
                continue;
            }
            for &c in self.supported_by.get(&n).into_iter().flatten() {
                stack.push(c);
            }
            for &c in self.in_context_of.get(&n).into_iter().flatten() {
                stack.push(c);
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !reach.contains(&i) {
                issues.push(GsnIssue::Orphan(node.label.clone()));
            }
        }

        // Development: every reachable goal/strategy needs support.
        for &n in &reach {
            let node = &self.nodes[n];
            let empty = self.supported_by.get(&n).is_none_or(|v| v.is_empty());
            match node.kind {
                NodeKind::Goal if empty => {
                    issues.push(GsnIssue::UndevelopedGoal(node.label.clone()))
                }
                NodeKind::Strategy if empty => {
                    issues.push(GsnIssue::EmptyStrategy(node.label.clone()))
                }
                _ => {}
            }
        }
        issues
    }

    /// Renders the argument as an indented text tree from the root.
    pub fn render_text(&self) -> String {
        let Some(root) = self.root else {
            return String::from("(no root goal)");
        };
        let mut out = String::new();
        self.render_node(root, 0, &mut out, &mut BTreeSet::new());
        out
    }

    fn render_node(&self, n: usize, depth: usize, out: &mut String, seen: &mut BTreeSet<usize>) {
        use fmt::Write;
        let node = &self.nodes[n];
        let _ = writeln!(
            out,
            "{}[{}] {} — {}",
            "  ".repeat(depth),
            node.label,
            node.kind,
            node.statement
        );
        if !seen.insert(n) {
            return;
        }
        for &c in self.in_context_of.get(&n).into_iter().flatten() {
            let ctx = &self.nodes[c];
            let _ = writeln!(out, "{}({}: {})", "  ".repeat(depth + 1), ctx.kind, ctx.statement);
        }
        for &c in self.supported_by.get(&n).into_iter().flatten() {
            self.render_node(c, depth + 1, out, seen);
        }
    }

    /// Renders the case as Graphviz DOT.
    pub fn render_dot(&self) -> String {
        use fmt::Write;
        let mut out = String::from("digraph gsn {\n  rankdir=TB;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n.kind {
                NodeKind::Goal => "box",
                NodeKind::Strategy => "parallelogram",
                NodeKind::Solution => "circle",
                NodeKind::Context => "box, style=rounded",
                NodeKind::Assumption | NodeKind::Justification => "ellipse",
            };
            let _ = writeln!(
                out,
                "  n{i} [shape={shape} label=\"{}\\n{}\"];",
                n.label,
                n.statement.replace('"', "'")
            );
        }
        for (&p, cs) in &self.supported_by {
            for &c in cs {
                let _ = writeln!(out, "  n{p} -> n{c};");
            }
        }
        for (&p, cs) in &self.in_context_of {
            for &c in cs {
                let _ = writeln!(out, "  n{p} -> n{c} [style=dashed];");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_case() -> AssuranceCase {
        let mut ac = AssuranceCase::new();
        let g1 = ac.goal("G1", "The PCA MCPS is acceptably safe");
        let s1 = ac.strategy("S1", "Argue over each identified hazard");
        let g2 = ac.goal("G2", "Overdose hazard is mitigated");
        let sn1 = ac.solution("Sn1", "Model-checking report E5");
        let c1 = ac.add(NodeKind::Context, "C1", "Deployed per ICE architecture");
        ac.supported_by(g1, s1);
        ac.supported_by(s1, g2);
        ac.supported_by(g2, sn1);
        ac.in_context_of(g1, c1);
        ac
    }

    #[test]
    fn complete_case_validates_clean() {
        assert!(complete_case().validate().is_empty());
    }

    #[test]
    fn undeveloped_goal_is_flagged() {
        let mut ac = complete_case();
        let g3 = ac.goal("G3", "Alarms are trustworthy");
        // Attach under the strategy but give it no evidence.
        ac.supported_by(NodeId(1), g3);
        let issues = ac.validate();
        assert!(
            issues.iter().any(|i| matches!(i, GsnIssue::UndevelopedGoal(l) if l == "G3")),
            "{issues:?}"
        );
    }

    #[test]
    fn orphan_is_flagged() {
        let mut ac = complete_case();
        let lonely = ac.solution("Sn9", "unused evidence");
        let _ = lonely;
        let issues = ac.validate();
        assert!(
            issues.iter().any(|i| matches!(i, GsnIssue::Orphan(l) if l == "Sn9")),
            "{issues:?}"
        );
    }

    #[test]
    fn cycle_is_flagged() {
        let mut ac = AssuranceCase::new();
        let g1 = ac.goal("G1", "a");
        let g2 = ac.goal("G2", "b");
        ac.supported_by(g1, g2);
        ac.supported_by(g2, g1);
        let issues = ac.validate();
        assert!(issues.iter().any(|i| matches!(i, GsnIssue::Cycle(_))), "{issues:?}");
    }

    #[test]
    fn bad_edge_typing_is_flagged() {
        let mut ac = AssuranceCase::new();
        let g1 = ac.goal("G1", "claim");
        let sn = ac.solution("Sn1", "evidence");
        // Solutions cannot be parents.
        ac.supported_by(sn, g1);
        ac.supported_by(g1, sn);
        let issues = ac.validate();
        assert!(
            issues.iter().any(|i| matches!(i, GsnIssue::BadEdge(a, _) if a == "Sn1")),
            "{issues:?}"
        );
    }

    #[test]
    fn missing_root_reported() {
        let ac = AssuranceCase::new();
        assert_eq!(ac.validate(), vec![GsnIssue::NoRoot]);
    }

    #[test]
    fn renderers_mention_all_nodes() {
        let ac = complete_case();
        let txt = ac.render_text();
        for l in ["G1", "S1", "G2", "Sn1"] {
            assert!(txt.contains(l), "text render missing {l}:\n{txt}");
        }
        let dot = ac.render_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
    }
}
