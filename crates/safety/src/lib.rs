//! # mcps-safety — verification and assurance for MCPS
//!
//! The certifiability pillar of the paper: model-based verification of
//! interlock designs plus the assurance artefacts a regulator reviews.
//!
//! * [`automaton`] — timed automata with integer clocks, invariants and
//!   channel synchronization.
//! * [`checker`] — explicit-state reachability and bounded-response
//!   model checking with shortest counterexample traces.
//! * [`pack`] — the checker's packed-state exploration core: bit-packed
//!   states interned in an arena, with deterministic layer-parallel
//!   BFS.
//! * [`models`] — verification models of the PCA safety interlock,
//!   including seeded design defects (mutants) for experiment E5, and
//!   of the supervisor failover protocol (experiment E13).
//! * [`timing`] — the failover timing contract shared by the
//!   implementation (`mcps-core`) and the verification models.
//! * [`executor`] — deterministic interpretation of a verified
//!   automaton (the model-to-runtime / code-generation path).
//! * [`gsn`] — Goal Structuring Notation assurance cases with
//!   structural validation and text/DOT rendering.
//! * [`assurance`] — mechanical assembly of the complete GSN case from
//!   hazards + traceability + live verification verdicts.
//! * [`hazard`] — hazard log with a severity × likelihood risk matrix.
//! * [`requirements`] — hazard → requirement → evidence traceability
//!   with mechanical completeness checking.
//!
//! ## Example: verify the interlock design
//!
//! ```
//! use mcps_safety::models::{check_pca_variant, PcaModelVariant};
//!
//! // The correct command-based interlock meets its deadline…
//! assert!(check_pca_variant(PcaModelVariant::CommandReliable, 1_000_000).holds());
//! // …but the same design over a lossy network does not.
//! let out = check_pca_variant(PcaModelVariant::CommandLossy, 1_000_000);
//! println!("{}", out.trace().expect("counterexample"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assurance;
pub mod automaton;
pub mod checker;
pub mod executor;
pub mod gsn;
pub mod hazard;
pub mod models;
pub mod pack;
pub mod requirements;
pub mod timing;

pub use assurance::build_assurance_case;
pub use automaton::{Action, Automaton, ClockId, Guard, LocId};
pub use checker::{CheckOutcome, Network, StateView, Step, Trace};
pub use executor::{AutomatonExecutor, ExecEvent, NotEnabled};
pub use gsn::{AssuranceCase, GsnIssue, NodeId, NodeKind};
pub use hazard::{classify, Hazard, HazardLog, Likelihood, Mitigation, RiskClass, Severity};
pub use models::{FailoverModelVariant, PcaModelVariant};
pub use pack::{ExploreMode, ExploreStats, PackedLayout, Reduction};
pub use requirements::{
    pca_requirements, Evidence, SafetyRequirement, TraceIssue, TraceabilityMatrix,
    VerificationMethod,
};
