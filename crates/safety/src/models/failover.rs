//! Verification models of the supervisor failover protocol (E13).
//!
//! PR 5 hand-built a distributed failover protocol — primary/standby
//! supervisors with checkpoint replication, missed-checkpoint
//! promotion, epoch-fenced commands, and a device-local pump watchdog
//! that drops to basal-only delivery on supervision silence. The
//! campaign engine tests it empirically; this module verifies it.
//! The protocol is modelled as a network of integer-clock timed
//! automata built from the *same* timing constants the implementation
//! derives its timers from ([`crate::timing`]), and three properties
//! are checked over all interleavings:
//!
//! * **Split-brain safety** — after the pump adopts the promoted
//!   standby's epoch, the healed ex-primary's stale epoch-1 traffic is
//!   never applied as supervision (zero reachable `Dual` states).
//! * **Promotion liveness** — under a bounded network partition, the
//!   primary's death leads to the standby actuating the pump within
//!   [`PROMOTION_BUDGET_SECS`].
//! * **Failsafe backstop** — if *both* supervisors die, the pump is
//!   basal-only (fail-safe latched) within [`BACKSTOP_BUDGET_SECS`],
//!   for all interleavings.
//!
//! Each correct network is paired with a **mutant** carrying a seeded
//! protocol defect (fence deleted, watchdog deleted, startup grace
//! missing). The mutants keep the properties non-vacuous — the checker
//! must produce a counterexample trace for every one — and their
//! traces are mined into fault-campaign regression cells by
//! `mcps-bench`.
//!
//! ## Epochs are structural
//!
//! Command epochs are encoded in the channel topology rather than in
//! message payloads: the primary's epoch-1 traffic travels `hb1`/`ck1`
//! and the promoted standby's epoch-2 traffic travels `hb2`/`ck2`,
//! each through its own single-slot delay line (loss is possible only
//! while the partition automaton is in its `Split` window). The pump's
//! `max_epoch_seen` ratchet is its location: `Armed1`/`Latched1`
//! accept epoch 1, `Armed2`/`Latched2` fence it. The `Dual` location
//! is the double-actuation marker — reachable only if the fence is
//! removed.
//!
//! ## Documented abstractions
//!
//! * A heartbeat delivered to a latched pump stands for the full
//!   heartbeat → ack → `ResumePump` exchange: the implementation's
//!   supervisor proactively resumes on the first ack after a
//!   [`crate::timing::FAILSAFE_RELEASE_GAP_SECS`] gap, and a freshly
//!   promoted standby (`failovers > 0`) resumes on its very first ack.
//!   Both paths complete within one delivery at this time scale.
//! * The pump's command-id dedup window only suppresses *repeats* of
//!   non-heartbeat commands; heartbeats (the supervision signal the
//!   properties are about) bypass it, so it is abstracted away here
//!   and covered by `actors.rs` unit tests instead.
//! * `Demoted` is a sink: one promotion cycle is verified. Re-promotion
//!   of the demoted ex-primary is the same protocol at epoch 3.

use crate::automaton::{Action, Automaton, Guard};
use crate::checker::{CheckOutcome, Network};
use crate::pack::{ExploreMode, ExploreStats, Reduction};
use crate::timing::{
    CHECKPOINT_SECS, HEARTBEAT_SECS, LOCAL_FAILSAFE_DEADLINE_SECS, PROMOTION_SILENCE_SECS,
};
use serde::{Deserialize, Serialize};

use super::{delay_line, LinkLoss, NET_MAX};

/// Longest network partition window the liveness property tolerates.
pub const PARTITION_MAX_SECS: u32 = 4;

/// Standby promotion trigger: the first whole second *strictly past*
/// the silence threshold (the implementation checks `> silence` at its
/// 1 Hz tick).
pub const PROMOTION_TRIGGER_SECS: u32 = PROMOTION_SILENCE_SECS + 1;

/// Primary death → standby heartbeat adopted by the pump, worst case:
/// a checkpoint in flight at death lands one hop later, the standby
/// waits out the full silence window, and the partition eats *two*
/// consecutive post-promotion heartbeats — a [`PARTITION_MAX_SECS`]
/// window plus the [`NET_MAX`] in-flight exposure spans 6 s, more than
/// one heartbeat period, so the beat in flight at onset *and* the next
/// periodic beat at the heal boundary can both be cut. The third beat
/// lands one hop later. The property is *sharp*: the checker proves it
/// holds at this budget and produces a counterexample one second
/// under it.
pub const PROMOTION_BUDGET_SECS: u32 =
    NET_MAX + PROMOTION_TRIGGER_SECS + 2 * HEARTBEAT_SECS + NET_MAX;

/// Both supervisors dead → pump latched basal-only, worst case: one
/// in-flight heartbeat lands a hop after the deaths and re-arms the
/// watchdog for a full deadline. Also sharp (violated one second
/// under).
pub const BACKSTOP_BUDGET_SECS: u32 = NET_MAX + LOCAL_FAILSAFE_DEADLINE_SECS;

/// Which failover design (or seeded defect) to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailoverModelVariant {
    /// Healthy pair, no faults; the standby may boot arbitrarily late.
    /// Property: the standby never promotes and the pump never leaves
    /// epoch-1 armed supervision.
    Quiescent,
    /// Mutant of [`Quiescent`](Self::Quiescent): the standby's boot
    /// does not seed its checkpoint-silence clock, so a late-booting
    /// standby reads "silence since time zero" and promotes at
    /// admission.
    NoStartupGrace,
    /// The primary dies (permanently) under a bounded partition.
    /// Property: promotion liveness — the pump is actuated by the
    /// standby's epoch within [`PROMOTION_BUDGET_SECS`].
    PrimaryCrash,
    /// The primary dies and later recovers stale, under a bounded
    /// partition. Property: split-brain safety — the pump never
    /// applies stale epoch-1 supervision after adopting epoch 2.
    SplitBrain,
    /// Mutant of [`SplitBrain`](Self::SplitBrain): the pump's epoch
    /// fence is deleted, so stale epoch-1 heartbeats feed an adopted
    /// pump (the double-actuation defect the fence exists to prevent).
    /// Built *without* the partition: crash → promotion → stale
    /// recovery alone exhibits the defect, and the counterexample then
    /// maps onto an implementation-faithful fault schedule for the
    /// campaign miner (a partition-raced checkpoint does not).
    UnfencedPump,
    /// Both supervisors die permanently. Property: failsafe backstop —
    /// the pump latches basal-only within [`BACKSTOP_BUDGET_SECS`].
    DualCrash,
    /// Mutant of [`DualCrash`](Self::DualCrash): the pump's local
    /// watchdog is deleted, so supervision silence never latches the
    /// fail-safe.
    NoWatchdog,
}

impl FailoverModelVariant {
    /// All variants, in presentation order.
    pub const ALL: [FailoverModelVariant; 7] = [
        FailoverModelVariant::Quiescent,
        FailoverModelVariant::NoStartupGrace,
        FailoverModelVariant::PrimaryCrash,
        FailoverModelVariant::SplitBrain,
        FailoverModelVariant::UnfencedPump,
        FailoverModelVariant::DualCrash,
        FailoverModelVariant::NoWatchdog,
    ];

    /// Human-readable description.
    pub fn description(&self) -> &'static str {
        match self {
            FailoverModelVariant::Quiescent => "healthy pair, late-boot standby (correct)",
            FailoverModelVariant::NoStartupGrace => {
                "mutant: standby boot does not seed the silence clock"
            }
            FailoverModelVariant::PrimaryCrash => {
                "primary death under bounded partition (promotion liveness)"
            }
            FailoverModelVariant::SplitBrain => {
                "crash + stale recovery under partition (split-brain safety)"
            }
            FailoverModelVariant::UnfencedPump => "mutant: pump epoch fence deleted",
            FailoverModelVariant::DualCrash => "both supervisors die (failsafe backstop)",
            FailoverModelVariant::NoWatchdog => "mutant: pump local watchdog deleted",
        }
    }

    /// The property checked for this variant, for reports.
    pub fn property(&self) -> &'static str {
        match self {
            FailoverModelVariant::Quiescent | FailoverModelVariant::NoStartupGrace => {
                "no spurious promotion; pump stays epoch-1 armed"
            }
            FailoverModelVariant::PrimaryCrash => "primary death => standby actuating in budget",
            FailoverModelVariant::SplitBrain | FailoverModelVariant::UnfencedPump => {
                "stale epoch never applied after adoption"
            }
            FailoverModelVariant::DualCrash | FailoverModelVariant::NoWatchdog => {
                "supervision silence => basal-only in budget"
            }
        }
    }

    /// Whether the property is *expected* to hold (mutants must fail).
    pub fn expected_safe(&self) -> bool {
        !matches!(
            self,
            FailoverModelVariant::NoStartupGrace
                | FailoverModelVariant::UnfencedPump
                | FailoverModelVariant::NoWatchdog
        )
    }
}

/// Knobs deriving the network topology of a variant.
struct Build {
    /// The primary may crash.
    crash: bool,
    /// A crashed primary may recover (stale, still epoch 1).
    recover: bool,
    /// The standby boots at a nondeterministic time instead of t=0.
    late_boot: bool,
    /// The standby's boot seeds its checkpoint-silence clock (the
    /// startup grace; disabled only in the `NoStartupGrace` mutant).
    grace: bool,
    /// The standby may crash.
    standby_crash: bool,
    /// A single bounded partition window may drop in-flight messages.
    partition: bool,
    /// The pump fences stale-epoch traffic after adoption.
    fenced: bool,
    /// The pump latches basal-only on supervision silence.
    watchdog: bool,
}

impl Build {
    fn of(variant: FailoverModelVariant) -> Build {
        use FailoverModelVariant as V;
        let quiescent = matches!(variant, V::Quiescent | V::NoStartupGrace);
        Build {
            crash: !quiescent,
            recover: matches!(variant, V::SplitBrain | V::UnfencedPump),
            late_boot: quiescent,
            grace: variant != V::NoStartupGrace,
            standby_crash: matches!(variant, V::DualCrash | V::NoWatchdog),
            partition: matches!(variant, V::PrimaryCrash | V::SplitBrain),
            fenced: variant != V::UnfencedPump,
            watchdog: variant != V::NoWatchdog,
        }
    }
}

/// Primary supervisor: heartbeats the pump every
/// [`HEARTBEAT_SECS`] and checkpoints the standby every
/// [`CHECKPOINT_SECS`]; steps down on seeing a higher-epoch
/// checkpoint. Matches `SupervisorCore`'s primary tick branch.
fn primary(b: &Build) -> Automaton {
    let mut a = Automaton::builder("primary");
    let hb = a.clock("hb");
    let ck = a.clock("ck");
    let up = a.location("Up");
    let crashed = a.location("Crashed");
    let demoted = a.location("Demoted");
    a.invariant(
        up,
        Guard::And(vec![Guard::Le(hb, HEARTBEAT_SECS), Guard::Le(ck, CHECKPOINT_SECS)]),
    );
    a.edge("beat", up, up, Guard::Ge(hb, HEARTBEAT_SECS), Action::Send("hb1".into()), vec![hb]);
    a.edge("ckpt", up, up, Guard::Ge(ck, CHECKPOINT_SECS), Action::Send("ck1".into()), vec![ck]);
    if b.crash {
        a.edge("crash", up, crashed, Guard::True, Action::Internal, vec![]);
    }
    if b.recover {
        // A recovered primary still believes it is in charge: it
        // resumes epoch-1 heartbeats and checkpoints until a
        // higher-epoch checkpoint demotes it.
        a.edge("recover", crashed, up, Guard::True, Action::Internal, vec![hb, ck]);
    }
    // Input-enabled for the standby's epoch-2 checkpoints everywhere:
    // a live primary steps down, a dead or demoted one discards.
    a.edge("step_down", up, demoted, Guard::True, Action::Recv("ck2_d".into()), vec![]);
    a.edge("ck2_dead", crashed, crashed, Guard::True, Action::Recv("ck2_d".into()), vec![]);
    a.edge("ck2_dup", demoted, demoted, Guard::True, Action::Recv("ck2_d".into()), vec![]);
    a.build()
}

/// Standby supervisor: watches the checkpoint stream, promotes after
/// checkpoint silence strictly exceeding [`PROMOTION_SILENCE_SECS`],
/// then runs the primary protocol at epoch 2 (immediate first
/// heartbeat, as `SupervisorCore::promote` does). Matches the standby
/// tick branch, including the admission grace: the silence clock is
/// seeded at boot, not at time zero.
fn standby(b: &Build) -> Automaton {
    let mut a = Automaton::builder("standby");
    let s = a.clock("s");
    let c2 = a.clock("c2");
    let watch = a.location("Watch");
    let boost = a.urgent_location("Boost");
    let active = a.location("Active");
    a.invariant(watch, Guard::Le(s, PROMOTION_TRIGGER_SECS));
    a.invariant(
        active,
        Guard::And(vec![Guard::Le(s, HEARTBEAT_SECS), Guard::Le(c2, CHECKPOINT_SECS)]),
    );
    if b.late_boot {
        let booting = a.location("Booting");
        a.initial(booting);
        // Checkpoints sent to a not-yet-booted process fall on the
        // floor — this is exactly why measuring silence from time
        // zero would be wrong.
        a.edge("unborn", booting, booting, Guard::True, Action::Recv("ck1_d".into()), vec![]);
        // The startup grace: booting seeds the silence clock with
        // "now" (`last_ckpt.get_or_insert(now)` in the
        // implementation). The NoStartupGrace mutant omits the reset,
        // reading silence-since-time-zero instead.
        let seeds = if b.grace { vec![s] } else { vec![] };
        a.edge("boot", booting, watch, Guard::True, Action::Internal, seeds);
    }
    a.edge("ckpt_rx", watch, watch, Guard::True, Action::Recv("ck1_d".into()), vec![s]);
    a.edge(
        "promote",
        watch,
        boost,
        Guard::Gt(s, PROMOTION_SILENCE_SECS),
        Action::Internal,
        vec![s, c2],
    );
    // Promotion heartbeats immediately (urgent location: no time may
    // pass before the first epoch-2 beat enters the network).
    a.edge("first_beat", boost, active, Guard::True, Action::Send("hb2".into()), vec![]);
    a.edge("late_ck", boost, boost, Guard::True, Action::Recv("ck1_d".into()), vec![]);
    a.edge(
        "beat2",
        active,
        active,
        Guard::Ge(s, HEARTBEAT_SECS),
        Action::Send("hb2".into()),
        vec![s],
    );
    a.edge(
        "ckpt2",
        active,
        active,
        Guard::Ge(c2, CHECKPOINT_SECS),
        Action::Send("ck2".into()),
        vec![c2],
    );
    // Stale epoch-1 checkpoints after promotion are ignored
    // (`epoch < max_epoch_seen` in the implementation).
    a.edge("stale_ck", active, active, Guard::True, Action::Recv("ck1_d".into()), vec![]);
    if b.standby_crash {
        let dead = a.location("Dead");
        a.edge("s_crash_watch", watch, dead, Guard::True, Action::Internal, vec![]);
        a.edge("s_crash_active", active, dead, Guard::True, Action::Internal, vec![]);
        a.edge("ck_dead", dead, dead, Guard::True, Action::Recv("ck1_d".into()), vec![]);
    }
    a.build()
}

/// The pump's supervision watchdog and epoch ratchet. `Armed1` /
/// `Latched1` have `max_epoch_seen` = 1 (epoch-1 heartbeats are
/// supervision); the first epoch-2 heartbeat moves the ratchet to
/// `Armed2` / `Latched2`, where epoch-1 traffic is fenced: consumed
/// without feeding the watchdog (`fenced_commands` in `PumpActor`).
/// `Dual` marks a stale-epoch *apply* after adoption — the
/// double-actuation defect — and must be unreachable.
fn pump(b: &Build) -> Automaton {
    let fs = LOCAL_FAILSAFE_DEADLINE_SECS;
    let mut a = Automaton::builder("pump");
    let w = a.clock("w");
    let armed1 = a.location("Armed1");
    let latched1 = a.location("Latched1");
    let armed2 = a.location("Armed2");
    let latched2 = a.location("Latched2");
    let dual = a.location("Dual");
    if b.watchdog {
        a.invariant(armed1, Guard::Le(w, fs));
        a.invariant(armed2, Guard::Le(w, fs));
        a.edge("latch1", armed1, latched1, Guard::Ge(w, fs), Action::Internal, vec![]);
        a.edge("latch2", armed2, latched2, Guard::Ge(w, fs), Action::Internal, vec![]);
    }
    a.edge("feed1", armed1, armed1, Guard::True, Action::Recv("hb1_d".into()), vec![w]);
    a.edge("adopt", armed1, armed2, Guard::True, Action::Recv("hb2_d".into()), vec![w]);
    // A heartbeat reaching a latched pump stands for the heartbeat →
    // ack → ResumePump exchange (see module docs).
    a.edge("resume1", latched1, armed1, Guard::True, Action::Recv("hb1_d".into()), vec![w]);
    a.edge("adopt_latched", latched1, armed2, Guard::True, Action::Recv("hb2_d".into()), vec![w]);
    a.edge("feed2", armed2, armed2, Guard::True, Action::Recv("hb2_d".into()), vec![w]);
    a.edge("resume2", latched2, armed2, Guard::True, Action::Recv("hb2_d".into()), vec![w]);
    if b.fenced {
        // Stale epoch-1 traffic is consumed but does NOT feed the
        // watchdog (no reset of `w`) and does not resume a latch.
        a.edge("fence_armed", armed2, armed2, Guard::True, Action::Recv("hb1_d".into()), vec![]);
        a.edge(
            "fence_latched",
            latched2,
            latched2,
            Guard::True,
            Action::Recv("hb1_d".into()),
            vec![],
        );
    } else {
        a.edge("stale_apply", armed2, dual, Guard::True, Action::Recv("hb1_d".into()), vec![w]);
        a.edge("stale_resume", latched2, dual, Guard::True, Action::Recv("hb1_d".into()), vec![w]);
    }
    a.edge("dual_hb1", dual, dual, Guard::True, Action::Recv("hb1_d".into()), vec![]);
    a.edge("dual_hb2", dual, dual, Guard::True, Action::Recv("hb2_d".into()), vec![]);
    a.build()
}

/// One bounded partition window: while `Split` (at most
/// [`PARTITION_MAX_SECS`]), any delay line may lose its in-flight
/// message by synchronizing on `cut`.
fn partition() -> Automaton {
    let mut a = Automaton::builder("partition");
    let p = a.clock("p");
    let calm = a.location("Calm");
    let split = a.location("Split");
    let healed = a.location("Healed");
    a.invariant(split, Guard::Le(p, PARTITION_MAX_SECS));
    a.edge("onset", calm, split, Guard::True, Action::Internal, vec![p]);
    a.edge("heal", split, healed, Guard::True, Action::Internal, vec![]);
    a.edge("cut", split, split, Guard::True, Action::Recv("cut".into()), vec![]);
    a.build()
}

/// Builds the failover verification network for a variant.
pub fn failover_model(variant: FailoverModelVariant) -> Network {
    let b = Build::of(variant);
    let loss = |on: bool| if on { LinkLoss::Partitionable("cut") } else { LinkLoss::Lossless };
    let mut autos = vec![
        primary(&b),
        standby(&b),
        pump(&b),
        delay_line("net_hb1", "hb1", "hb1_d", loss(b.partition)),
        delay_line("net_ck1", "ck1", "ck1_d", loss(b.partition)),
        delay_line("net_hb2", "hb2", "hb2_d", loss(b.partition)),
        delay_line("net_ck2", "ck2", "ck2_d", loss(b.partition)),
    ];
    if b.partition {
        autos.push(partition());
    }
    Network::new(autos)
}

/// Checks the variant's property with explicit engine knobs, returning
/// the outcome and exploration statistics.
pub fn check_failover_variant_stats(
    variant: FailoverModelVariant,
    max_states: usize,
    mode: ExploreMode,
    reduction: Reduction,
) -> (CheckOutcome, ExploreStats) {
    use FailoverModelVariant as V;
    let net = failover_model(variant);
    match variant {
        V::Quiescent | V::NoStartupGrace => net.check_safety_stats_reduced(
            |v| {
                v.in_location("standby", "Boost")
                    || v.in_location("standby", "Active")
                    || !v.in_location("pump", "Armed1")
            },
            max_states,
            mode,
            reduction,
        ),
        V::PrimaryCrash => net.check_bounded_response_stats_reduced(
            |v| v.in_location("primary", "Crashed"),
            |v| {
                v.in_location("pump", "Armed2")
                    || v.in_location("pump", "Latched2")
                    || v.in_location("pump", "Dual")
            },
            PROMOTION_BUDGET_SECS,
            max_states,
            mode,
            reduction,
        ),
        V::SplitBrain | V::UnfencedPump => net.check_safety_stats_reduced(
            |v| v.in_location("pump", "Dual"),
            max_states,
            mode,
            reduction,
        ),
        V::DualCrash | V::NoWatchdog => net.check_bounded_response_stats_reduced(
            |v| v.in_location("primary", "Crashed") && v.in_location("standby", "Dead"),
            |v| v.in_location("pump", "Latched1") || v.in_location("pump", "Latched2"),
            BACKSTOP_BUDGET_SECS,
            max_states,
            mode,
            reduction,
        ),
    }
}

/// Checks the variant's property with default engine knobs (automatic
/// parallelism, clock-activity reduction on).
pub fn check_failover_variant(variant: FailoverModelVariant, max_states: usize) -> CheckOutcome {
    check_failover_variant_stats(variant, max_states, ExploreMode::Auto, Reduction::ClockActive).0
}

/// The variant's property on the retained first-generation engine —
/// the differential oracle for the packed-engine lockstep tests.
pub fn check_failover_variant_reference(
    variant: FailoverModelVariant,
    max_states: usize,
) -> CheckOutcome {
    use FailoverModelVariant as V;
    let net = failover_model(variant);
    match variant {
        V::Quiescent | V::NoStartupGrace => net.check_safety_reference(
            |v| {
                v.in_location("standby", "Boost")
                    || v.in_location("standby", "Active")
                    || !v.in_location("pump", "Armed1")
            },
            max_states,
        ),
        V::PrimaryCrash => net.check_bounded_response_reference(
            |v| v.in_location("primary", "Crashed"),
            |v| {
                v.in_location("pump", "Armed2")
                    || v.in_location("pump", "Latched2")
                    || v.in_location("pump", "Dual")
            },
            PROMOTION_BUDGET_SECS,
            max_states,
        ),
        V::SplitBrain | V::UnfencedPump => {
            net.check_safety_reference(|v| v.in_location("pump", "Dual"), max_states)
        }
        V::DualCrash | V::NoWatchdog => net.check_bounded_response_reference(
            |v| v.in_location("primary", "Crashed") && v.in_location("standby", "Dead"),
            |v| v.in_location("pump", "Latched1") || v.in_location("pump", "Latched2"),
            BACKSTOP_BUDGET_SECS,
            max_states,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::WORST_CLEAN_FAILOVER_SECS;

    const BUDGET: usize = 8_000_000;

    #[test]
    fn model_constants_are_the_implementation_constants() {
        // The automata must embed exactly the shared timing contract —
        // guard against the model silently verifying a different
        // protocol than the one `mcps-core` runs.
        use crate::automaton::Guard as G;
        let net = failover_model(FailoverModelVariant::SplitBrain);
        let by_name = |n: &str| {
            net.automata().iter().find(|a| a.name() == n).unwrap_or_else(|| panic!("{n} missing"))
        };
        let p = by_name("primary");
        let hb = crate::automaton::ClockId(0);
        let ck = crate::automaton::ClockId(1);
        assert!(p
            .edges()
            .iter()
            .any(|e| e.label == "beat" && e.guard == G::Ge(hb, HEARTBEAT_SECS)));
        assert!(p
            .edges()
            .iter()
            .any(|e| e.label == "ckpt" && e.guard == G::Ge(ck, CHECKPOINT_SECS)));
        let s = by_name("standby");
        let sc = crate::automaton::ClockId(0);
        assert!(s
            .edges()
            .iter()
            .any(|e| e.label == "promote" && e.guard == G::Gt(sc, PROMOTION_SILENCE_SECS)));
        let pump = by_name("pump");
        let w = crate::automaton::ClockId(0);
        assert!(pump
            .edges()
            .iter()
            .any(|e| e.label == "latch1" && e.guard == G::Ge(w, LOCAL_FAILSAFE_DEADLINE_SECS)));
    }

    #[test]
    fn expected_verdicts_match_metadata() {
        for v in FailoverModelVariant::ALL {
            let out = check_failover_variant(v, BUDGET);
            assert_eq!(
                out.holds(),
                v.expected_safe(),
                "variant {v:?} ({}) unexpected outcome {out:?}",
                v.description()
            );
        }
    }

    #[test]
    fn liveness_budget_is_sharp() {
        // The promotion budget is exact: the property is violated one
        // second under it (the checker exhibits the schedule), and the
        // worst-case clean failover really does overshoot the pump's
        // 15 s watchdog by one second — the documented transient latch.
        let net = failover_model(FailoverModelVariant::PrimaryCrash);
        let (out, _) = net.check_bounded_response_stats_reduced(
            |v| v.in_location("primary", "Crashed"),
            |v| v.in_location("pump", "Armed2") || v.in_location("pump", "Latched2"),
            PROMOTION_BUDGET_SECS - 1,
            BUDGET,
            ExploreMode::Auto,
            Reduction::ClockActive,
        );
        assert!(out.trace().is_some(), "budget-1 must be violated: {out:?}");
        // The worst-case clean failover overshooting the watchdog is
        // enforced at compile time in `crate::timing`.
        const _: () = assert!(WORST_CLEAN_FAILOVER_SECS > LOCAL_FAILSAFE_DEADLINE_SECS);
    }

    #[test]
    fn backstop_budget_is_sharp() {
        let net = failover_model(FailoverModelVariant::DualCrash);
        let (out, _) = net.check_bounded_response_stats_reduced(
            |v| v.in_location("primary", "Crashed") && v.in_location("standby", "Dead"),
            |v| v.in_location("pump", "Latched1") || v.in_location("pump", "Latched2"),
            BACKSTOP_BUDGET_SECS - 1,
            BUDGET,
            ExploreMode::Auto,
            Reduction::ClockActive,
        );
        assert!(out.trace().is_some(), "budget-1 must be violated: {out:?}");
    }

    #[test]
    fn mutant_counterexamples_replay_on_their_models() {
        for v in [
            FailoverModelVariant::NoStartupGrace,
            FailoverModelVariant::UnfencedPump,
            FailoverModelVariant::NoWatchdog,
        ] {
            let out = check_failover_variant(v, BUDGET);
            let trace = out.trace().unwrap_or_else(|| panic!("{v:?} must violate"));
            let net = failover_model(v);
            assert!(net.replay(trace).is_some(), "{v:?}: counterexample must replay");
        }
    }

    #[test]
    fn unfenced_trace_contains_a_minable_schedule() {
        // The campaign miner needs the crash, promotion and recovery
        // instants of the split-brain counterexample; make sure they
        // are all present, and that promotion sits a full silence
        // window past the crash (recovery may *race* the promotion by
        // up to one network hop, which is why the miner clamps the
        // mined recovery to just past the promotion instant).
        let out = check_failover_variant(FailoverModelVariant::UnfencedPump, BUDGET);
        let trace = out.trace().expect("unfenced pump must violate");
        let mut t = 0u32;
        let (mut crash, mut promote, mut recover) = (None, None, None);
        for step in &trace.steps {
            match step {
                crate::checker::Step::Delay => t += 1,
                crate::checker::Step::Edge { automaton, label } => {
                    if automaton == "primary" && label == "crash" {
                        crash.get_or_insert(t);
                    }
                    if automaton == "primary" && label == "recover" {
                        recover.get_or_insert(t);
                    }
                    if automaton == "standby" && label == "promote" {
                        promote.get_or_insert(t);
                    }
                }
                _ => {}
            }
        }
        let crash = crash.expect("trace must crash the primary");
        let promote = promote.expect("trace must promote the standby");
        recover.expect("trace must recover the primary");
        assert!(promote > crash + PROMOTION_SILENCE_SECS, "early promotion: {trace}");
    }
}
