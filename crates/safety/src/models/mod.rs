//! Verification models of the PCA safety interlock.
//!
//! These timed-automata networks mirror the runtime implementation in
//! `mcps-device`/`mcps-core` at the abstraction level a regulator would
//! review: a monitor that detects respiratory depression, an unreliable
//! network, a supervisor, and the PCA pump. Experiment E5 model-checks
//! the **correct** design and several **mutants** (seeded design
//! defects) to show that verification finds the defects before
//! deployment.
//!
//! Model time unit: one second. Constants are deliberately small so
//! the discrete-time state space stays comfortable; they preserve the
//! *ordering* of delays (detection < network < processing < ticket
//! validity), which is what the properties exercise.
//!
//! The [`failover`] submodule models the PR-5 supervisor failover
//! protocol (heartbeats, checkpoint replication, promotion, epoch
//! fencing, the pump's 15 s local fail-safe) at its *real* timing
//! constants, shared with the implementation via [`crate::timing`].

use crate::automaton::{Action, Automaton, Guard, LocId};
use crate::checker::Network;
use crate::pack::{ExploreMode, ExploreStats};
use serde::{Deserialize, Serialize};

pub mod failover;

pub use failover::{
    check_failover_variant, check_failover_variant_reference, check_failover_variant_stats,
    failover_model, FailoverModelVariant,
};

/// Detection latency bound of the monitor (time units).
pub const DETECT_MAX: u32 = 2;
/// Network delay bounds per hop.
pub const NET_MIN: u32 = 0;
/// Maximum network delay per hop.
pub const NET_MAX: u32 = 2;
/// Supervisor processing bound.
pub const PROC_MAX: u32 = 2;
/// Ticket validity in ticket mode.
pub const TICKET_VALIDITY: u32 = 6;
/// Supervisor ticket-granting period.
pub const TICKET_PERIOD: u32 = 2;

/// The end-to-end deadline a *command-based* interlock should meet on
/// a reliable network: detect + alarm hop + processing + stop hop.
pub const COMMAND_DEADLINE: u32 = DETECT_MAX + NET_MAX + PROC_MAX + NET_MAX;

/// The deadline a *ticket-based* interlock meets even on a fully lossy
/// network: one stale grant may be in flight, then the last ticket
/// expires.
pub const TICKET_DEADLINE: u32 = TICKET_PERIOD + NET_MAX + TICKET_VALIDITY;

/// Which design (or seeded defect) to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcaModelVariant {
    /// Correct command-based interlock over a reliable network.
    CommandReliable,
    /// Command-based interlock over a lossy network (design defect:
    /// no fail-safe — a dropped message defeats the interlock).
    CommandLossy,
    /// Mutant: the pump ignores stop commands while delivering a bolus.
    PumpIgnoresStopDuringBolus,
    /// Mutant: the supervisor's processing deadline is not enforced
    /// (missing invariant), so the stop may be arbitrarily late.
    SupervisorUnbounded,
    /// Correct ticket-based interlock over a lossy network: fail-safe
    /// holds despite arbitrary message loss.
    TicketLossy,
}

impl PcaModelVariant {
    /// All variants, in presentation order.
    pub const ALL: [PcaModelVariant; 5] = [
        PcaModelVariant::CommandReliable,
        PcaModelVariant::CommandLossy,
        PcaModelVariant::PumpIgnoresStopDuringBolus,
        PcaModelVariant::SupervisorUnbounded,
        PcaModelVariant::TicketLossy,
    ];

    /// Human-readable description.
    pub fn description(&self) -> &'static str {
        match self {
            PcaModelVariant::CommandReliable => "command interlock, reliable network (correct)",
            PcaModelVariant::CommandLossy => {
                "command interlock, lossy network (defect: no fail-safe)"
            }
            PcaModelVariant::PumpIgnoresStopDuringBolus => "mutant: pump ignores stop during bolus",
            PcaModelVariant::SupervisorUnbounded => {
                "mutant: supervisor processing deadline not enforced"
            }
            PcaModelVariant::TicketLossy => "ticket interlock, lossy network (correct fail-safe)",
        }
    }

    /// The deadline (in model time units) against which the interlock
    /// property is checked for this variant.
    pub fn deadline(&self) -> u32 {
        match self {
            PcaModelVariant::TicketLossy => TICKET_DEADLINE,
            _ => COMMAND_DEADLINE,
        }
    }

    /// Whether the bounded-response property is *expected* to hold.
    pub fn expected_safe(&self) -> bool {
        matches!(self, PcaModelVariant::CommandReliable | PcaModelVariant::TicketLossy)
    }
}

/// Monitor: breathes normally, then (nondeterministically) a breach
/// occurs; while breached it repeatedly offers `alarm!`. In ticket
/// mode it additionally offers periodic `ok!` while normal.
fn monitor(ticket_mode: bool) -> Automaton {
    let mut b = Automaton::builder("monitor");
    let x = b.clock("x");
    let normal = b.location("Normal");
    let breached = b.location("Breached");
    b.invariant(normal, Guard::Le(x, TICKET_PERIOD));
    b.invariant(breached, Guard::Le(x, DETECT_MAX));
    if ticket_mode {
        // Periodic "patient is fine" heartbeat.
        b.edge("ok", normal, normal, Guard::True, Action::Send("ok".into()), vec![x]);
    } else {
        // Heartbeat consumed locally so time may keep passing.
        b.edge("idle", normal, normal, Guard::Ge(x, 1), Action::Internal, vec![x]);
    }
    // The breach may occur at any moment.
    b.edge("breach_onset", normal, breached, Guard::True, Action::Internal, vec![x]);
    // While breached, alarm repeatedly (period ≤ DETECT_MAX).
    b.edge("alarm", breached, breached, Guard::True, Action::Send("alarm".into()), vec![x]);
    b.build()
}

/// Loss behaviour of a [`delay_line`].
#[derive(Clone, Copy)]
enum LinkLoss<'a> {
    /// Every accepted message is eventually delivered.
    Lossless,
    /// Any accepted message may be silently dropped, at any time.
    Lossy,
    /// A message may be dropped only while the named cut channel has a
    /// willing receiver — i.e. while a partition automaton offering
    /// `Recv(cut)` is in its partitioned location.
    Partitionable(&'a str),
}

/// A one-message delay line for channel `input`, re-emitting on
/// `output` after a delay in `[NET_MIN, NET_MAX]`, with the given
/// [`LinkLoss`] discipline. Messages arriving while busy are dropped
/// (single-slot queue).
fn delay_line(name: &str, input: &str, output: &str, loss: LinkLoss<'_>) -> Automaton {
    let mut b = Automaton::builder(name);
    let c = b.clock("d");
    let idle = b.location("Idle");
    let busy = b.location("Busy");
    b.invariant(busy, Guard::Le(c, NET_MAX));
    b.edge("accept", idle, busy, Guard::True, Action::Recv(input.into()), vec![c]);
    b.edge("deliver", busy, idle, Guard::Ge(c, NET_MIN), Action::Send(output.into()), vec![]);
    // Overflow: arrivals while busy are dropped.
    b.edge("overflow", busy, busy, Guard::True, Action::Recv(input.into()), vec![]);
    match loss {
        LinkLoss::Lossless => {}
        LinkLoss::Lossy => {
            b.edge("lose", busy, idle, Guard::True, Action::Internal, vec![]);
        }
        LinkLoss::Partitionable(cut) => {
            b.edge("lose", busy, idle, Guard::True, Action::Send(cut.into()), vec![]);
        }
    }
    b.build()
}

/// Command-mode supervisor: on a delivered alarm, decide and send
/// `stop` within `PROC_MAX` (unless the `unbounded` mutant removes the
/// deadline).
fn supervisor_command(unbounded: bool) -> Automaton {
    let mut b = Automaton::builder("supervisor");
    let z = b.clock("z");
    let idle = b.location("Idle");
    let deciding = b.location("Deciding");
    let done = b.location("Done");
    if !unbounded {
        b.invariant(deciding, Guard::Le(z, PROC_MAX));
    }
    b.edge("alarm_rx", idle, deciding, Guard::True, Action::Recv("alarm_d".into()), vec![z]);
    b.edge("send_stop", deciding, done, Guard::True, Action::Send("stop".into()), vec![]);
    // Stay input-enabled for repeated alarms.
    b.edge("dup1", deciding, deciding, Guard::True, Action::Recv("alarm_d".into()), vec![]);
    b.edge("dup2", done, done, Guard::True, Action::Recv("alarm_d".into()), vec![]);
    b.build()
}

/// Ticket-mode supervisor: grants a ticket whenever a fresh `ok`
/// arrives; on a delivered alarm it stops granting forever. Silence
/// also stops grants (no `ok` ⇒ no ticket), which is the fail-safe.
fn supervisor_ticket() -> Automaton {
    let mut b = Automaton::builder("supervisor");
    let granting = b.location("Granting");
    let holding = b.urgent_location("Holding");
    let stopped = b.location("StopGranting");
    b.edge("ok_rx", granting, holding, Guard::True, Action::Recv("ok_d".into()), vec![]);
    b.edge("grant", holding, granting, Guard::True, Action::Send("ticket".into()), vec![]);
    b.edge("alarm_rx", granting, stopped, Guard::True, Action::Recv("alarm_d".into()), vec![]);
    b.edge("alarm_rx2", holding, stopped, Guard::True, Action::Recv("alarm_d".into()), vec![]);
    // Input-enabled forever after stopping.
    b.edge("ok_late", stopped, stopped, Guard::True, Action::Recv("ok_d".into()), vec![]);
    b.edge("alarm_late", stopped, stopped, Guard::True, Action::Recv("alarm_d".into()), vec![]);
    b.build()
}

/// Command-mode pump. If `ignore_stop_in_bolus`, the stop command is
/// consumed but ignored while a bolus is in progress (a realistic
/// firmware defect).
fn pump_command(ignore_stop_in_bolus: bool) -> Automaton {
    let mut b = Automaton::builder("pump");
    let t = b.clock("t");
    let running = b.location("Running");
    let bolus = b.location("Bolus");
    let stopped = b.location("Stopped");
    b.invariant(bolus, Guard::Le(t, 3));
    b.edge("start_bolus", running, bolus, Guard::True, Action::Internal, vec![t]);
    b.edge("end_bolus", bolus, running, Guard::Ge(t, 3), Action::Internal, vec![]);
    b.edge("stop_run", running, stopped, Guard::True, Action::Recv("stop_d".into()), vec![]);
    if ignore_stop_in_bolus {
        b.edge("stop_ignored", bolus, bolus, Guard::True, Action::Recv("stop_d".into()), vec![]);
    } else {
        b.edge("stop_bolus", bolus, stopped, Guard::True, Action::Recv("stop_d".into()), vec![]);
    }
    b.edge("stop_dup", stopped, stopped, Guard::True, Action::Recv("stop_d".into()), vec![]);
    b.build()
}

/// Ticket-mode pump: infuses only while its ticket clock is below the
/// validity; a delivered ticket resets the clock; expiry self-stops. A
/// fresh ticket *resurrects* a stopped pump — matching the executable
/// implementation, where the supervisor resumes granting after a
/// holdoff. Safety is unaffected: after a breach the supervisor never
/// grants again, so at most one stale in-flight ticket can extend
/// delivery, which the deadline accounts for.
fn pump_ticket() -> Automaton {
    let mut b = Automaton::builder("pump");
    let t = b.clock("t");
    let running = b.location("Running");
    let stopped = b.location("Stopped");
    b.invariant(running, Guard::Le(t, TICKET_VALIDITY));
    b.edge(
        "ticket_rx",
        running,
        running,
        Guard::Lt(t, TICKET_VALIDITY),
        Action::Recv("ticket_d".into()),
        vec![t],
    );
    b.edge("expire", running, stopped, Guard::Ge(t, TICKET_VALIDITY), Action::Internal, vec![]);
    b.edge("resurrect", stopped, running, Guard::True, Action::Recv("ticket_d".into()), vec![t]);
    b.build()
}

/// The verified ticket-mode pump automaton, exposed for direct
/// execution by [`crate::executor::AutomatonExecutor`] (the
/// model-to-runtime path) and for conformance testing against the
/// hand-written pump.
pub fn pump_ticket_model() -> Automaton {
    pump_ticket()
}

/// Builds the verification network for a variant.
pub fn pca_model(variant: PcaModelVariant) -> Network {
    match variant {
        PcaModelVariant::CommandReliable => Network::new(vec![
            monitor(false),
            delay_line("alarm_net", "alarm", "alarm_d", LinkLoss::Lossless),
            supervisor_command(false),
            delay_line("cmd_net", "stop", "stop_d", LinkLoss::Lossless),
            pump_command(false),
        ]),
        PcaModelVariant::CommandLossy => Network::new(vec![
            monitor(false),
            delay_line("alarm_net", "alarm", "alarm_d", LinkLoss::Lossy),
            supervisor_command(false),
            delay_line("cmd_net", "stop", "stop_d", LinkLoss::Lossy),
            pump_command(false),
        ]),
        PcaModelVariant::PumpIgnoresStopDuringBolus => Network::new(vec![
            monitor(false),
            delay_line("alarm_net", "alarm", "alarm_d", LinkLoss::Lossless),
            supervisor_command(false),
            delay_line("cmd_net", "stop", "stop_d", LinkLoss::Lossless),
            pump_command(true),
        ]),
        PcaModelVariant::SupervisorUnbounded => Network::new(vec![
            monitor(false),
            delay_line("alarm_net", "alarm", "alarm_d", LinkLoss::Lossless),
            supervisor_command(true),
            delay_line("cmd_net", "stop", "stop_d", LinkLoss::Lossless),
            pump_command(false),
        ]),
        PcaModelVariant::TicketLossy => Network::new(vec![
            monitor(true),
            delay_line("ok_net", "ok", "ok_d", LinkLoss::Lossy),
            delay_line("alarm_net", "alarm", "alarm_d", LinkLoss::Lossy),
            supervisor_ticket(),
            delay_line("ticket_net", "ticket", "ticket_d", LinkLoss::Lossy),
            pump_ticket(),
        ]),
    }
}

/// Checks the interlock property of a variant: *whenever the monitor
/// has detected a breach, the pump is stopped within the variant's
/// deadline*. Returns the checker outcome.
pub fn check_pca_variant(
    variant: PcaModelVariant,
    max_states: usize,
) -> crate::checker::CheckOutcome {
    let net = pca_model(variant);
    net.check_bounded_response(
        |v| v.in_location("monitor", "Breached"),
        |v| v.in_location("pump", "Stopped"),
        variant.deadline(),
        max_states,
    )
}

/// [`check_pca_variant`] with an explicit [`ExploreMode`], also
/// returning the exploration statistics (states interned, arena bytes,
/// BFS shape) for perf reporting.
pub fn check_pca_variant_stats(
    variant: PcaModelVariant,
    max_states: usize,
    mode: ExploreMode,
) -> (crate::checker::CheckOutcome, ExploreStats) {
    let net = pca_model(variant);
    net.check_bounded_response_stats(
        |v| v.in_location("monitor", "Breached"),
        |v| v.in_location("pump", "Stopped"),
        variant.deadline(),
        max_states,
        mode,
    )
}

/// [`check_pca_variant`] on the retained first-generation engine —
/// the differential oracle for conformance tests and before/after
/// benchmarks.
pub fn check_pca_variant_reference(
    variant: PcaModelVariant,
    max_states: usize,
) -> crate::checker::CheckOutcome {
    let net = pca_model(variant);
    net.check_bounded_response_reference(
        |v| v.in_location("monitor", "Breached"),
        |v| v.in_location("pump", "Stopped"),
        variant.deadline(),
        max_states,
    )
}

/// A named location pair used by diagnostic tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocRef {
    /// Automaton index in the network.
    pub automaton: usize,
    /// Location within it.
    pub location: LocId,
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 2_000_000;

    #[test]
    fn command_reliable_is_safe() {
        let out = check_pca_variant(PcaModelVariant::CommandReliable, BUDGET);
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn command_lossy_is_unsafe() {
        let out = check_pca_variant(PcaModelVariant::CommandLossy, BUDGET);
        let trace = out.trace().expect("lossy command interlock must fail");
        // The violation requires the deadline to elapse.
        assert!(trace.elapsed() > COMMAND_DEADLINE);
    }

    #[test]
    fn pump_mutant_is_caught() {
        let out = check_pca_variant(PcaModelVariant::PumpIgnoresStopDuringBolus, BUDGET);
        assert!(out.trace().is_some(), "mutant must be caught: {out:?}");
    }

    #[test]
    fn unbounded_supervisor_is_caught() {
        let out = check_pca_variant(PcaModelVariant::SupervisorUnbounded, BUDGET);
        assert!(out.trace().is_some(), "mutant must be caught: {out:?}");
    }

    #[test]
    fn ticket_mode_survives_lossy_network() {
        let out = check_pca_variant(PcaModelVariant::TicketLossy, BUDGET);
        assert!(out.holds(), "fail-safe must hold under loss: {out:?}");
    }

    #[test]
    fn counterexamples_replay_on_their_models() {
        for v in [
            PcaModelVariant::CommandLossy,
            PcaModelVariant::PumpIgnoresStopDuringBolus,
            PcaModelVariant::SupervisorUnbounded,
        ] {
            let out = check_pca_variant(v, BUDGET);
            let trace = out.trace().unwrap_or_else(|| panic!("{v:?} must violate"));
            let net = pca_model(v);
            assert!(net.replay(trace).is_some(), "{v:?}: counterexample must replay");
        }
    }

    #[test]
    fn expected_safety_matches_metadata() {
        for v in PcaModelVariant::ALL {
            let out = check_pca_variant(v, BUDGET);
            assert_eq!(
                out.holds(),
                v.expected_safe(),
                "variant {v:?} ({}) unexpected outcome {out:?}",
                v.description()
            );
        }
    }
}
