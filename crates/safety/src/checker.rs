//! Explicit-state model checking of timed-automata networks.
//!
//! [`Network`] composes automata with CCS-style channel rendezvous and
//! shared discrete time. [`Network::check_safety`] explores the state
//! space breadth-first looking for a state satisfying a *bad*
//! predicate; [`Network::check_bounded_response`] verifies the
//! leads-to-within-deadline properties clinical interlocks are
//! specified with ("whenever the monitor alarms, the pump is stopped
//! within `T` seconds"). Both return shortest counterexample traces.
//!
//! Clock values are capped at each clock's ceiling (max constant + 1),
//! which preserves all guard/invariant truth values while keeping the
//! state space finite.
//!
//! Exploration runs on the packed-state engine of [`crate::pack`]:
//! states are bit-packed into `u64` word vectors, interned once in an
//! arena and addressed by `u32` id, with an optional deterministic
//! layer-parallel BFS. The original map-of-cloned-states engine is
//! retained as [`Network::check_safety_reference`] /
//! [`Network::check_bounded_response_reference`] and serves as the
//! differential-testing oracle for the packed engine.

use crate::automaton::{Action, Automaton};
use crate::pack::{Engine, ExploreMode, ExploreStats, PackedLayout, Reduction};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// A network of automata composed in parallel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    pub(crate) automata: Vec<Automaton>,
    pub(crate) ceilings: Vec<Vec<u32>>,
}

/// The discrete state of a network: one location per automaton plus all
/// clock valuations (grouped per automaton).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetState {
    pub(crate) locs: Vec<u16>,
    pub(crate) clocks: Vec<Vec<u32>>,
}

/// Read-only view of a network state for property predicates.
///
/// Backed either by a [`NetState`] (reference engine, replay) or by the
/// packed engine's flat decode buffers — predicates can't tell the
/// difference.
#[derive(Debug, Clone, Copy)]
pub struct StateView<'a> {
    net: &'a Network,
    locs: &'a [u16],
    clocks: Clocks<'a>,
}

/// Clock storage behind a [`StateView`].
#[derive(Debug, Clone, Copy)]
enum Clocks<'a> {
    /// Per-automaton vectors, as stored in a [`NetState`].
    Nested(&'a [Vec<u32>]),
    /// One flat array with per-automaton offsets (packed engine).
    Flat { vals: &'a [u32], off: &'a [usize] },
}

impl<'a> StateView<'a> {
    pub(crate) fn nested(net: &'a Network, state: &'a NetState) -> Self {
        StateView { net, locs: &state.locs, clocks: Clocks::Nested(&state.clocks) }
    }

    pub(crate) fn flat(
        net: &'a Network,
        locs: &'a [u16],
        vals: &'a [u32],
        off: &'a [usize],
    ) -> Self {
        StateView { net, locs, clocks: Clocks::Flat { vals, off } }
    }
    /// Whether automaton `automaton` (by name) is in location `loc`.
    ///
    /// # Panics
    ///
    /// Panics if the automaton or location does not exist — property
    /// typos should fail loudly, not verify vacuously.
    pub fn in_location(&self, automaton: &str, loc: &str) -> bool {
        let (i, a) = self
            .net
            .automata
            .iter()
            .enumerate()
            .find(|(_, a)| a.name() == automaton)
            .unwrap_or_else(|| panic!("no automaton named {automaton}"));
        let l = a
            .location_id(loc)
            .unwrap_or_else(|| panic!("automaton {automaton} has no location {loc}"));
        self.locs[i] as usize == l.0
    }

    /// The (capped) value of a clock.
    ///
    /// # Panics
    ///
    /// Panics if the automaton or clock does not exist.
    pub fn clock(&self, automaton: &str, clock: &str) -> u32 {
        let (i, a) = self
            .net
            .automata
            .iter()
            .enumerate()
            .find(|(_, a)| a.name() == automaton)
            .unwrap_or_else(|| panic!("no automaton named {automaton}"));
        let c = a
            .clocks()
            .iter()
            .position(|n| n == clock)
            .unwrap_or_else(|| panic!("automaton {automaton} has no clock {clock}"));
        match self.clocks {
            Clocks::Nested(clocks) => clocks[i][c],
            Clocks::Flat { vals, off } => vals[off[i] + c],
        }
    }
}

/// One step in a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// An internal edge of one automaton fired.
    Edge {
        /// Automaton name.
        automaton: String,
        /// Edge label.
        label: String,
    },
    /// Two automata synchronized on a channel.
    Sync {
        /// Channel name.
        channel: String,
        /// Sending automaton.
        sender: String,
        /// Receiving automaton.
        receiver: String,
    },
    /// One time unit passed.
    Delay,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Edge { automaton, label } => write!(f, "{automaton}.{label}"),
            Step::Sync { channel, sender, receiver } => {
                write!(f, "{sender} -{channel}-> {receiver}")
            }
            Step::Delay => f.write_str("delay(1)"),
        }
    }
}

/// A counterexample: the steps from the initial state to the violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Trace {
    /// Total model time elapsed along the trace.
    pub fn elapsed(&self) -> u32 {
        self.steps.iter().filter(|s| matches!(s, Step::Delay)).count() as u32
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = 0u32;
        for s in &self.steps {
            if matches!(s, Step::Delay) {
                t += 1;
            } else {
                writeln!(f, "  t={t:>4}  {s}")?;
            }
        }
        writeln!(f, "  t={t:>4}  << violation >>")
    }
}

/// Result of a verification run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckOutcome {
    /// The property holds on the entire reachable state space.
    Holds {
        /// Distinct states explored.
        states: usize,
    },
    /// The property is violated; a shortest trace is attached.
    Violated {
        /// Shortest counterexample.
        trace: Trace,
        /// Distinct states explored before the violation.
        states: usize,
    },
    /// The exploration hit the state budget before finishing.
    Exhausted {
        /// The budget that was exhausted.
        budget: usize,
    },
}

impl CheckOutcome {
    /// Whether the property was proven to hold.
    pub fn holds(&self) -> bool {
        matches!(self, CheckOutcome::Holds { .. })
    }

    /// The counterexample, if violated.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            CheckOutcome::Violated { trace, .. } => Some(trace),
            _ => None,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    state: NetState,
    pending: Option<u32>,
}

impl Network {
    /// Composes automata in parallel.
    ///
    /// # Panics
    ///
    /// Panics if any automaton is invalid or two automata share a name.
    pub fn new(automata: Vec<Automaton>) -> Self {
        for a in &automata {
            if let Err(e) = a.validate() {
                panic!("invalid automaton: {e}");
            }
        }
        for (i, a) in automata.iter().enumerate() {
            if automata[i + 1..].iter().any(|b| b.name() == a.name()) {
                panic!("duplicate automaton name {}", a.name());
            }
        }
        let ceilings = automata.iter().map(|a| a.clock_ceilings()).collect();
        Network { automata, ceilings }
    }

    /// The composed automata.
    pub fn automata(&self) -> &[Automaton] {
        &self.automata
    }

    /// The initial network state.
    pub fn initial_state(&self) -> NetState {
        NetState {
            locs: self.automata.iter().map(|a| a.initial().0 as u16).collect(),
            clocks: self.automata.iter().map(|a| vec![0; a.clocks().len()]).collect(),
        }
    }

    fn edge_enabled(&self, i: usize, e: &crate::automaton::Edge, s: &NetState) -> bool {
        s.locs[i] as usize == e.from.0 && e.guard.eval(&s.clocks[i]) && {
            // Target invariant must hold after resets.
            let mut clocks = s.clocks[i].clone();
            for r in &e.resets {
                clocks[r.0] = 0;
            }
            self.automata[i].locations()[e.to.0].invariant.eval(&clocks)
        }
    }

    fn apply_edge(&self, i: usize, e: &crate::automaton::Edge, s: &NetState) -> NetState {
        let mut next = s.clone();
        next.locs[i] = e.to.0 as u16;
        for r in &e.resets {
            next.clocks[i][r.0] = 0;
        }
        next
    }

    /// All discrete and delay successors of `s`, with the step taken.
    pub fn successors(&self, s: &NetState) -> Vec<(Step, NetState)> {
        let mut out = Vec::new();
        // Internal edges.
        for (i, a) in self.automata.iter().enumerate() {
            for e in a.edges() {
                if e.action == Action::Internal && self.edge_enabled(i, e, s) {
                    out.push((
                        Step::Edge { automaton: a.name().to_owned(), label: e.label.clone() },
                        self.apply_edge(i, e, s),
                    ));
                }
            }
        }
        // Channel rendezvous.
        for (i, a) in self.automata.iter().enumerate() {
            for e in a.edges() {
                let Action::Send(chan) = &e.action else { continue };
                if !self.edge_enabled(i, e, s) {
                    continue;
                }
                for (j, b) in self.automata.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    for e2 in b.edges() {
                        if e2.action == Action::Recv(chan.clone()) && self.edge_enabled(j, e2, s) {
                            let mid = self.apply_edge(i, e, s);
                            let next = self.apply_edge(j, e2, &mid);
                            out.push((
                                Step::Sync {
                                    channel: chan.clone(),
                                    sender: a.name().to_owned(),
                                    receiver: b.name().to_owned(),
                                },
                                next,
                            ));
                        }
                    }
                }
            }
        }
        // Delay of one time unit.
        if self.delay_allowed(s) {
            let mut next = s.clone();
            for (i, clocks) in next.clocks.iter_mut().enumerate() {
                for (c, v) in clocks.iter_mut().enumerate() {
                    *v = (*v + 1).min(self.ceilings[i][c]);
                }
            }
            out.push((Step::Delay, next));
        }
        out
    }

    fn delay_allowed(&self, s: &NetState) -> bool {
        for (i, a) in self.automata.iter().enumerate() {
            let loc = &a.locations()[s.locs[i] as usize];
            if loc.urgent {
                return false;
            }
            let bumped: Vec<u32> = s.clocks[i]
                .iter()
                .enumerate()
                .map(|(c, &v)| (v + 1).min(self.ceilings[i][c]))
                .collect();
            if !loc.invariant.eval(&bumped) {
                return false;
            }
        }
        true
    }

    /// Checks that no reachable state satisfies `bad`, exploring at
    /// most `max_states` distinct states. Runs on the packed-state
    /// engine in [`ExploreMode::Auto`].
    pub fn check_safety(
        &self,
        bad: impl Fn(&StateView<'_>) -> bool + Sync,
        max_states: usize,
    ) -> CheckOutcome {
        self.check_safety_in(bad, max_states, ExploreMode::Auto)
    }

    /// [`Self::check_safety`] with an explicit [`ExploreMode`].
    pub fn check_safety_in(
        &self,
        bad: impl Fn(&StateView<'_>) -> bool + Sync,
        max_states: usize,
        mode: ExploreMode,
    ) -> CheckOutcome {
        self.check_safety_stats(bad, max_states, mode).0
    }

    /// [`Self::check_safety`] returning exploration statistics
    /// alongside the verdict (for benches and perf baselines).
    pub fn check_safety_stats(
        &self,
        bad: impl Fn(&StateView<'_>) -> bool + Sync,
        max_states: usize,
        mode: ExploreMode,
    ) -> (CheckOutcome, ExploreStats) {
        self.check_safety_stats_reduced(bad, max_states, mode, Reduction::None)
    }

    /// [`Self::check_safety_stats`] with an explicit [`Reduction`].
    ///
    /// With [`Reduction::ClockActive`], the `bad` predicate must not
    /// read clocks through [`StateView::clock`] unless the owning
    /// automaton constrains them in the relevant locations — inactive
    /// clocks are normalized to their ceiling.
    pub fn check_safety_stats_reduced(
        &self,
        bad: impl Fn(&StateView<'_>) -> bool + Sync,
        max_states: usize,
        mode: ExploreMode,
        reduction: Reduction,
    ) -> (CheckOutcome, ExploreStats) {
        Engine::new(self, 1, reduction).explore(max_states, mode, &|view: &StateView<'_>, _| {
            if bad(view) {
                MonitorVerdict::Bad
            } else {
                MonitorVerdict::Ok(None)
            }
        })
    }

    /// Checks "whenever `p` holds, `q` holds within `deadline` time
    /// units" over all reachable behaviours. The obligation is tracked
    /// through the exploration as part of the state. Runs on the
    /// packed-state engine in [`ExploreMode::Auto`].
    pub fn check_bounded_response(
        &self,
        p: impl Fn(&StateView<'_>) -> bool + Sync,
        q: impl Fn(&StateView<'_>) -> bool + Sync,
        deadline: u32,
        max_states: usize,
    ) -> CheckOutcome {
        self.check_bounded_response_in(p, q, deadline, max_states, ExploreMode::Auto)
    }

    /// [`Self::check_bounded_response`] with an explicit
    /// [`ExploreMode`].
    pub fn check_bounded_response_in(
        &self,
        p: impl Fn(&StateView<'_>) -> bool + Sync,
        q: impl Fn(&StateView<'_>) -> bool + Sync,
        deadline: u32,
        max_states: usize,
        mode: ExploreMode,
    ) -> CheckOutcome {
        self.check_bounded_response_stats(p, q, deadline, max_states, mode).0
    }

    /// [`Self::check_bounded_response`] returning exploration
    /// statistics alongside the verdict.
    pub fn check_bounded_response_stats(
        &self,
        p: impl Fn(&StateView<'_>) -> bool + Sync,
        q: impl Fn(&StateView<'_>) -> bool + Sync,
        deadline: u32,
        max_states: usize,
        mode: ExploreMode,
    ) -> (CheckOutcome, ExploreStats) {
        self.check_bounded_response_stats_reduced(p, q, deadline, max_states, mode, Reduction::None)
    }

    /// [`Self::check_bounded_response_stats`] with an explicit
    /// [`Reduction`]; see [`Self::check_safety_stats_reduced`] for the
    /// predicate contract.
    pub fn check_bounded_response_stats_reduced(
        &self,
        p: impl Fn(&StateView<'_>) -> bool + Sync,
        q: impl Fn(&StateView<'_>) -> bool + Sync,
        deadline: u32,
        max_states: usize,
        mode: ExploreMode,
        reduction: Reduction,
    ) -> (CheckOutcome, ExploreStats) {
        let monitor = bounded_monitor(p, q, deadline);
        Engine::new(self, u64::from(deadline) + 2, reduction).explore(max_states, mode, &monitor)
    }

    /// First-generation [`Self::check_safety`]: clones whole states
    /// into a `HashMap`-backed visited set. Kept as the differential
    /// oracle the packed engine is tested against.
    pub fn check_safety_reference(
        &self,
        bad: impl Fn(&StateView<'_>) -> bool,
        max_states: usize,
    ) -> CheckOutcome {
        self.explore_reference(max_states, |view, _| {
            if bad(view) {
                MonitorVerdict::Bad
            } else {
                MonitorVerdict::Ok(None)
            }
        })
    }

    /// First-generation [`Self::check_bounded_response`]; see
    /// [`Self::check_safety_reference`].
    pub fn check_bounded_response_reference(
        &self,
        p: impl Fn(&StateView<'_>) -> bool,
        q: impl Fn(&StateView<'_>) -> bool,
        deadline: u32,
        max_states: usize,
    ) -> CheckOutcome {
        self.explore_reference(max_states, bounded_monitor(p, q, deadline))
    }

    /// The packed-state layout this network's checker runs on. `None`
    /// for plain safety checks; `Some(deadline)` when a
    /// bounded-response obligation rides along in the state. Exposed so
    /// tests can round-trip the encoding directly.
    pub fn packed_layout(&self, deadline: Option<u32>) -> PackedLayout {
        PackedLayout::new(self, deadline.map_or(1, |d| u64::from(d) + 2))
    }

    /// Per-automaton clock ceilings (parallel to [`Self::automata`]).
    pub(crate) fn ceilings(&self) -> &[Vec<u32>] {
        &self.ceilings
    }

    fn explore_reference(
        &self,
        max_states: usize,
        monitor: impl Fn(&StateView<'_>, Option<u32>) -> MonitorVerdict,
    ) -> CheckOutcome {
        let init = self.initial_state();
        let init_verdict = monitor(&StateView::nested(self, &init), None);
        let init_pending = match init_verdict {
            MonitorVerdict::Bad => {
                return CheckOutcome::Violated { trace: Trace { steps: vec![] }, states: 1 }
            }
            MonitorVerdict::Ok(p) => p,
        };
        let init_key = Key { state: init, pending: init_pending };
        let mut parents: HashMap<Key, Option<(Key, Step)>> = HashMap::new();
        parents.insert(init_key.clone(), None);
        let mut queue = VecDeque::new();
        queue.push_back(init_key);
        while let Some(key) = queue.pop_front() {
            for (step, next) in self.successors(&key.state) {
                // Delay ages the obligation; discrete steps don't.
                let aged = match (&step, key.pending) {
                    (Step::Delay, Some(a)) => Some(a + 1),
                    (_, p) => p,
                };
                let verdict = monitor(&StateView::nested(self, &next), aged);
                let pending = match verdict {
                    MonitorVerdict::Bad => {
                        let mut steps = vec![step.clone()];
                        let mut cur = Some(&key);
                        while let Some(k) = cur {
                            match parents.get(k).and_then(|p| p.as_ref()) {
                                Some((pk, ps)) => {
                                    steps.push(ps.clone());
                                    cur = Some(pk);
                                }
                                None => break,
                            }
                        }
                        steps.reverse();
                        return CheckOutcome::Violated {
                            trace: Trace { steps },
                            states: parents.len(),
                        };
                    }
                    MonitorVerdict::Ok(p) => p,
                };
                let next_key = Key { state: next, pending };
                if !parents.contains_key(&next_key) {
                    if parents.len() >= max_states {
                        return CheckOutcome::Exhausted { budget: max_states };
                    }
                    parents.insert(next_key.clone(), Some((key.clone(), step)));
                    queue.push_back(next_key);
                }
            }
        }
        CheckOutcome::Holds { states: parents.len() }
    }

    /// Renders a state view factory for ad-hoc inspection (used by
    /// tests and diagnostics).
    pub fn view<'a>(&'a self, state: &'a NetState) -> StateView<'a> {
        StateView::nested(self, state)
    }

    /// Replays a trace from the initial state, returning the state it
    /// ends in, or `None` if some step is not actually enabled — i.e.
    /// the trace is *not* a real behaviour of this network. Used to
    /// validate counterexamples independently of the search.
    pub fn replay(&self, trace: &Trace) -> Option<NetState> {
        let mut state = self.initial_state();
        for step in &trace.steps {
            let successors = self.successors(&state);
            state = successors.into_iter().find(|(s, _)| s == step).map(|(_, n)| n)?;
        }
        Some(state)
    }
}

/// What a state monitor concluded about one (state, obligation) pair.
pub(crate) enum MonitorVerdict {
    /// No violation; carries the obligation age to store in the state.
    Ok(Option<u32>),
    /// The property is violated here.
    Bad,
}

/// The bounded-response monitor shared by the packed and reference
/// engines: tracks a pending "respond by `deadline`" obligation through
/// the exploration.
fn bounded_monitor(
    p: impl Fn(&StateView<'_>) -> bool,
    q: impl Fn(&StateView<'_>) -> bool,
    deadline: u32,
) -> impl Fn(&StateView<'_>, Option<u32>) -> MonitorVerdict {
    move |view, pending| {
        // An obligation older than the deadline is a violation even
        // if `q` holds *now* — it arrived too late.
        if matches!(pending, Some(age) if age > deadline) {
            return MonitorVerdict::Bad;
        }
        // Q at or before the deadline discharges the obligation.
        let pending = if q(view) { None } else { pending };
        match pending {
            Some(age) => MonitorVerdict::Ok(Some(age)),
            None => {
                if p(view) && !q(view) {
                    MonitorVerdict::Ok(Some(0))
                } else {
                    MonitorVerdict::Ok(None)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Action, Automaton, Guard};

    /// A lamp that turns off 3–5 time units after being switched on,
    /// and a hand that presses the switch once.
    fn lamp_network(lamp_timeout_hi: u32) -> Network {
        let mut lb = Automaton::builder("lamp");
        let x = lb.clock("x");
        let off = lb.location("Off");
        let on = lb.location("On");
        lb.invariant(on, Guard::Le(x, lamp_timeout_hi));
        lb.edge("press", off, on, Guard::True, Action::Recv("press".into()), vec![x]);
        lb.edge("timeout", on, off, Guard::Ge(x, 3), Action::Internal, vec![]);
        let lamp = lb.build();

        let mut hb = Automaton::builder("hand");
        let idle = hb.location("Idle");
        let done = hb.location("Done");
        hb.edge("press", idle, done, Guard::True, Action::Send("press".into()), vec![]);
        let hand = hb.build();

        Network::new(vec![lamp, hand])
    }

    #[test]
    fn safety_holds_on_simple_network() {
        let net = lamp_network(5);
        // The lamp can never be on with x > 5 (invariant forbids it).
        let out =
            net.check_safety(|v| v.in_location("lamp", "On") && v.clock("lamp", "x") > 5, 100_000);
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn safety_violation_found_with_trace() {
        let net = lamp_network(5);
        // "The lamp is never on" is false; shortest trace is one sync.
        let out = net.check_safety(|v| v.in_location("lamp", "On"), 100_000);
        let trace = out.trace().expect("should be violated");
        assert_eq!(trace.steps.len(), 1);
        assert!(matches!(&trace.steps[0], Step::Sync { channel, .. } if channel == "press"));
    }

    #[test]
    fn bounded_response_holds() {
        let net = lamp_network(5);
        // Whenever the lamp is on, it is off within 5 units.
        let out = net.check_bounded_response(
            |v| v.in_location("lamp", "On"),
            |v| v.in_location("lamp", "Off"),
            5,
            100_000,
        );
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn bounded_response_fails_with_tight_deadline() {
        let net = lamp_network(5);
        // Off within 2 is violated (the lamp may stay on up to 5).
        let out = net.check_bounded_response(
            |v| v.in_location("lamp", "On"),
            |v| v.in_location("lamp", "Off"),
            2,
            100_000,
        );
        let trace = out.trace().expect("should be violated");
        assert!(trace.elapsed() >= 3, "needs ≥3 delays, got {}", trace.elapsed());
    }

    #[test]
    fn invariant_forces_progress() {
        // Lamp with timeout window [3,5]: after 5 units in On, delay is
        // forbidden, so the timeout edge must fire.
        let net = lamp_network(5);
        let out = net.check_bounded_response(
            |v| v.in_location("lamp", "On"),
            |v| v.in_location("lamp", "Off"),
            6,
            100_000,
        );
        assert!(out.holds());
    }

    #[test]
    fn urgent_location_blocks_delay() {
        let mut b = Automaton::builder("urgent");
        let a0 = b.location("A");
        let a1 = b.urgent_location("B");
        let a2 = b.location("C");
        b.edge("go", a0, a1, Guard::True, Action::Internal, vec![]);
        b.edge("now", a1, a2, Guard::True, Action::Internal, vec![]);
        let net = Network::new(vec![b.build()]);
        let s0 = net.initial_state();
        // From A: internal edge + delay.
        let succ0 = net.successors(&s0);
        assert!(succ0.iter().any(|(s, _)| matches!(s, Step::Delay)));
        // From B (urgent): no delay successor.
        let (_, s1) = succ0
            .iter()
            .find(|(s, _)| matches!(s, Step::Edge { label, .. } if label == "go"))
            .unwrap();
        let succ1 = net.successors(s1);
        assert!(!succ1.iter().any(|(s, _)| matches!(s, Step::Delay)));
    }

    #[test]
    fn exhaustion_reports_budget() {
        let net = lamp_network(5);
        let out = net.check_safety(|_| false, 3);
        assert_eq!(out, CheckOutcome::Exhausted { budget: 3 });
    }

    #[test]
    #[should_panic(expected = "duplicate automaton name")]
    fn duplicate_names_rejected() {
        let a = Automaton::builder("x");
        let mut a = a;
        a.location("L");
        let a1 = a.build();
        let mut b = Automaton::builder("x");
        b.location("L");
        let a2 = b.build();
        let _ = Network::new(vec![a1, a2]);
    }

    #[test]
    #[should_panic(expected = "no automaton named")]
    fn property_typo_fails_loudly() {
        let net = lamp_network(5);
        let _ = net.check_safety(|v| v.in_location("lampp", "On"), 10);
    }

    #[test]
    fn clock_capping_keeps_space_finite() {
        // An automaton with one location and one clock but no guards:
        // state space must be tiny despite unbounded time.
        let mut b = Automaton::builder("idle");
        b.clock("x");
        b.location("L");
        let net = Network::new(vec![b.build()]);
        let out = net.check_safety(|_| false, 1_000);
        match out {
            CheckOutcome::Holds { states } => assert!(states <= 3, "states={states}"),
            other => panic!("{other:?}"),
        }
    }
}
