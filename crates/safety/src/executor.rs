//! Executing verified models: the code-generation pillar.
//!
//! Model-based development closes the loop between verification and
//! implementation by *deriving* the runtime from the verified model
//! rather than re-implementing it by hand. [`AutomatonExecutor`]
//! interprets a single [`Automaton`] under the same discrete-time
//! semantics the checker explores: what the checker proved is what the
//! executor runs. Conformance tests in `mcps-core` drive the executor
//! and the hand-written device side by side and assert agreement.
//!
//! The executor is deliberately *deterministic* where the model is
//! nondeterministic: urgent/forced transitions fire as soon as they are
//! enabled (the earliest behaviour in the model's set), which is the
//! standard refinement choice for generated controllers.

use crate::automaton::{Action, Automaton, LocId};
use serde::{Deserialize, Serialize};

/// What happened during one executor step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecEvent {
    /// An internal edge fired.
    Fired {
        /// The edge label.
        label: String,
    },
    /// Time advanced without any forced transition.
    Idle,
}

/// Error: the offered channel event has no enabled receiving edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NotEnabled {
    /// The channel that was offered.
    pub channel: String,
    /// The location the executor was in.
    pub location: String,
}

impl std::fmt::Display for NotEnabled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no enabled edge receives {:?} in location {}", self.channel, self.location)
    }
}

impl std::error::Error for NotEnabled {}

/// A deterministic interpreter of one timed automaton.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutomatonExecutor {
    automaton: Automaton,
    loc: LocId,
    clocks: Vec<u32>,
    ceilings: Vec<u32>,
    fired_log: Vec<(u64, String)>,
    /// Total discrete time units elapsed.
    elapsed: u64,
}

impl AutomatonExecutor {
    /// Creates an executor at the automaton's initial location.
    ///
    /// # Panics
    ///
    /// Panics if the automaton is invalid.
    pub fn new(automaton: Automaton) -> Self {
        if let Err(e) = automaton.validate() {
            panic!("invalid automaton: {e}");
        }
        let ceilings = automaton.clock_ceilings();
        let clocks = vec![0; automaton.clocks().len()];
        let loc = automaton.initial();
        AutomatonExecutor { automaton, loc, clocks, ceilings, fired_log: Vec::new(), elapsed: 0 }
    }

    /// The current location's name.
    pub fn location(&self) -> &str {
        &self.automaton.locations()[self.loc.0].name
    }

    /// Whether the executor is in the named location.
    pub fn in_location(&self, name: &str) -> bool {
        self.location() == name
    }

    /// The (capped) value of a clock by name.
    ///
    /// # Panics
    ///
    /// Panics if the clock does not exist.
    pub fn clock(&self, name: &str) -> u32 {
        let i = self
            .automaton
            .clocks()
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no clock named {name}"));
        self.clocks[i]
    }

    /// Total time units elapsed.
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// The log of fired edges as `(elapsed, label)`.
    pub fn fired_log(&self) -> &[(u64, String)] {
        &self.fired_log
    }

    fn edge_enabled(&self, e: &crate::automaton::Edge) -> bool {
        self.loc == e.from && e.guard.eval(&self.clocks) && {
            let mut clocks = self.clocks.clone();
            for r in &e.resets {
                clocks[r.0] = 0;
            }
            self.automaton.locations()[e.to.0].invariant.eval(&clocks)
        }
    }

    fn apply(&mut self, idx: usize) {
        let e = &self.automaton.edges()[idx];
        self.loc = e.to;
        let label = e.label.clone();
        for r in &e.resets {
            self.clocks[r.0] = 0;
        }
        self.fired_log.push((self.elapsed, label));
    }

    /// Offers a channel event (as `channel?` input). Fires the first
    /// enabled receiving edge.
    ///
    /// # Errors
    ///
    /// Returns [`NotEnabled`] if no receiving edge is enabled — the
    /// caller decides whether that is a protocol error or an ignorable
    /// duplicate.
    pub fn offer(&mut self, channel: &str) -> Result<String, NotEnabled> {
        let idx = self
            .automaton
            .edges()
            .iter()
            .position(|e| e.action == Action::Recv(channel.to_owned()) && self.edge_enabled(e));
        match idx {
            Some(i) => {
                self.apply(i);
                Ok(self.fired_log.last().expect("just pushed").1.clone())
            }
            None => Err(NotEnabled {
                channel: channel.to_owned(),
                location: self.location().to_owned(),
            }),
        }
    }

    /// Fires enabled *forced* internal edges: any internal edge whose
    /// source invariant would otherwise be violated by waiting, and —
    /// deterministically — any internal edge that is enabled while its
    /// location is urgent. Returns the labels fired.
    fn fire_forced(&mut self) -> Vec<String> {
        let mut fired = Vec::new();
        loop {
            let urgent = self.automaton.locations()[self.loc.0].urgent;
            // Would the invariant still hold after one more tick?
            let bumped: Vec<u32> = self
                .clocks
                .iter()
                .enumerate()
                .map(|(c, &v)| (v + 1).min(self.ceilings[c]))
                .collect();
            let must_move =
                urgent || !self.automaton.locations()[self.loc.0].invariant.eval(&bumped);
            if !must_move {
                return fired;
            }
            let idx = self
                .automaton
                .edges()
                .iter()
                .position(|e| e.action == Action::Internal && self.edge_enabled(e));
            match idx {
                Some(i) => {
                    self.apply(i);
                    fired.push(self.fired_log.last().expect("just pushed").1.clone());
                }
                None => return fired, // deadlocked model; caller observes no progress
            }
        }
    }

    /// Advances time by `units`, firing forced transitions at the
    /// instants the model requires them. Returns every edge fired.
    pub fn advance(&mut self, units: u64) -> Vec<String> {
        let mut fired = self.fire_forced();
        for _ in 0..units {
            for (c, v) in self.clocks.iter_mut().enumerate() {
                *v = (*v + 1).min(self.ceilings[c]);
            }
            self.elapsed += 1;
            fired.extend(self.fire_forced());
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Guard;
    use crate::models::{pump_ticket_model, TICKET_VALIDITY};

    /// A lamp: Off --press?--> On (invariant x<=5), On --x>=5--> Off.
    fn lamp() -> AutomatonExecutor {
        let mut b = Automaton::builder("lamp");
        let x = b.clock("x");
        let off = b.location("Off");
        let on = b.location("On");
        b.invariant(on, Guard::Le(x, 5));
        b.edge("press", off, on, Guard::True, Action::Recv("press".into()), vec![x]);
        b.edge("timeout", on, off, Guard::Ge(x, 5), Action::Internal, vec![]);
        AutomatonExecutor::new(b.build())
    }

    #[test]
    fn offer_fires_receiving_edge() {
        let mut e = lamp();
        assert!(e.in_location("Off"));
        assert_eq!(e.offer("press").unwrap(), "press");
        assert!(e.in_location("On"));
        assert_eq!(e.clock("x"), 0);
    }

    #[test]
    fn offer_without_enabled_edge_errors() {
        let mut e = lamp();
        let err = e.offer("bogus").unwrap_err();
        assert_eq!(err.channel, "bogus");
        assert!(err.to_string().contains("Off"));
    }

    #[test]
    fn invariant_forces_timeout() {
        let mut e = lamp();
        e.offer("press").unwrap();
        let fired = e.advance(5);
        assert_eq!(fired, vec!["timeout".to_owned()]);
        assert!(e.in_location("Off"));
        assert_eq!(e.elapsed(), 5);
    }

    #[test]
    fn advance_without_pressure_is_quiet() {
        let mut e = lamp();
        assert!(e.advance(100).is_empty());
        assert!(e.in_location("Off"));
    }

    #[test]
    fn fired_log_records_history() {
        let mut e = lamp();
        e.offer("press").unwrap();
        e.advance(5);
        e.offer("press").unwrap();
        let labels: Vec<&str> = e.fired_log().iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(labels, vec!["press", "timeout", "press"]);
    }

    /// Executing the verified ticket-pump model: it must self-stop
    /// exactly when the model says — `TICKET_VALIDITY` after the last
    /// ticket.
    #[test]
    fn ticket_pump_model_executes_to_its_verified_deadline() {
        let mut e = AutomatonExecutor::new(pump_ticket_model());
        assert!(e.in_location("Running"));
        // Keep it alive with tickets every 2 units for a while.
        for _ in 0..10 {
            e.advance(2);
            e.offer("ticket_d").expect("ticket accepted while running");
        }
        assert!(e.in_location("Running"));
        // Tickets cease: the pump must stop exactly at validity.
        let fired = e.advance(u64::from(TICKET_VALIDITY));
        assert_eq!(fired, vec!["expire".to_owned()]);
        assert!(e.in_location("Stopped"));
        // A fresh ticket resurrects delivery (matching the executable
        // pump, whose supervisor resumes granting after recovery).
        e.offer("ticket_d").expect("fresh ticket resurrects");
        assert!(e.in_location("Running"));
        assert_eq!(e.clock("t"), 0);
    }
}
