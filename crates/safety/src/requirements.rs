//! Safety-requirements traceability.
//!
//! Regulators audit the *chain*: every hazard must derive requirements,
//! every requirement must cite verification evidence, and nothing may
//! dangle. [`TraceabilityMatrix`] holds that chain and checks its
//! completeness mechanically; [`pca_requirements`] ships the PCA
//! closed-loop system's requirement set, cross-linked to the hazard log
//! in [`crate::hazard::pca_hazard_log`] and to the experiments and
//! tests in this repository as evidence.

use crate::hazard::{HazardLog, RiskClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// How a requirement is verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VerificationMethod {
    /// Exhaustive model checking.
    ModelChecking,
    /// Simulation-based experiment.
    Experiment,
    /// Unit / property test.
    Test,
    /// Design inspection / analysis.
    Analysis,
}

impl fmt::Display for VerificationMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerificationMethod::ModelChecking => "model checking",
            VerificationMethod::Experiment => "experiment",
            VerificationMethod::Test => "test",
            VerificationMethod::Analysis => "analysis",
        };
        f.write_str(s)
    }
}

/// One item of verification evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    /// Verification method.
    pub method: VerificationMethod,
    /// Pointer (experiment id, test path, model variant).
    pub reference: String,
}

/// One safety requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyRequirement {
    /// Stable id, e.g. `"SR1"`.
    pub id: String,
    /// Normative statement ("shall").
    pub text: String,
    /// Hazards this requirement mitigates (ids into the hazard log).
    pub derived_from: Vec<String>,
    /// Evidence of satisfaction.
    pub verified_by: Vec<Evidence>,
}

/// A traceability problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceIssue {
    /// A requirement cites a hazard that is not in the log.
    UnknownHazard {
        /// Requirement id.
        requirement: String,
        /// The missing hazard id.
        hazard: String,
    },
    /// A requirement has no evidence at all.
    Unverified {
        /// Requirement id.
        requirement: String,
    },
    /// A hazard with unacceptable or ALARP initial risk has no
    /// requirement addressing it.
    UncoveredHazard {
        /// Hazard id.
        hazard: String,
    },
    /// Two requirements share an id.
    DuplicateId {
        /// The duplicated id.
        id: String,
    },
}

impl fmt::Display for TraceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIssue::UnknownHazard { requirement, hazard } => {
                write!(f, "{requirement} cites unknown hazard {hazard}")
            }
            TraceIssue::Unverified { requirement } => {
                write!(f, "{requirement} has no verification evidence")
            }
            TraceIssue::UncoveredHazard { hazard } => {
                write!(f, "hazard {hazard} has no requirement addressing it")
            }
            TraceIssue::DuplicateId { id } => write!(f, "duplicate requirement id {id}"),
        }
    }
}

/// Requirements + hazard log, checked together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceabilityMatrix {
    requirements: Vec<SafetyRequirement>,
}

impl TraceabilityMatrix {
    /// Creates a matrix from requirements.
    pub fn new(requirements: Vec<SafetyRequirement>) -> Self {
        TraceabilityMatrix { requirements }
    }

    /// The requirements.
    pub fn requirements(&self) -> &[SafetyRequirement] {
        &self.requirements
    }

    /// Looks a requirement up by id.
    pub fn get(&self, id: &str) -> Option<&SafetyRequirement> {
        self.requirements.iter().find(|r| r.id == id)
    }

    /// Requirements that mitigate a given hazard.
    pub fn for_hazard(&self, hazard_id: &str) -> Vec<&SafetyRequirement> {
        self.requirements.iter().filter(|r| r.derived_from.iter().any(|h| h == hazard_id)).collect()
    }

    /// Full traceability check against a hazard log.
    pub fn check(&self, hazards: &HazardLog) -> Vec<TraceIssue> {
        let mut issues = Vec::new();
        let mut seen = BTreeSet::new();
        for r in &self.requirements {
            if !seen.insert(r.id.clone()) {
                issues.push(TraceIssue::DuplicateId { id: r.id.clone() });
            }
            for h in &r.derived_from {
                if hazards.get(h).is_none() {
                    issues.push(TraceIssue::UnknownHazard {
                        requirement: r.id.clone(),
                        hazard: h.clone(),
                    });
                }
            }
            if r.verified_by.is_empty() {
                issues.push(TraceIssue::Unverified { requirement: r.id.clone() });
            }
        }
        for h in hazards.hazards() {
            let needs_coverage = h.initial_risk() >= RiskClass::Alarp;
            if needs_coverage && self.for_hazard(&h.id).is_empty() {
                issues.push(TraceIssue::UncoveredHazard { hazard: h.id.clone() });
            }
        }
        issues
    }

    /// Renders the matrix as a table.
    pub fn render_table(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{:<5} {:<58} {:<10} evidence", "id", "requirement", "hazards");
        for r in &self.requirements {
            let hz = r.derived_from.join(",");
            let ev = r
                .verified_by
                .iter()
                .map(|e| format!("{} ({})", e.reference, e.method))
                .collect::<Vec<_>>()
                .join("; ");
            let text =
                if r.text.len() > 58 { format!("{}…", &r.text[..57]) } else { r.text.clone() };
            let _ = writeln!(out, "{:<5} {:<58} {:<10} {}", r.id, text, hz, ev);
        }
        out
    }
}

fn ev(method: VerificationMethod, reference: &str) -> Evidence {
    Evidence { method, reference: reference.to_owned() }
}

/// The PCA closed-loop system's safety requirements, cross-linked to
/// the shipped hazard log and this repository's evidence.
pub fn pca_requirements() -> TraceabilityMatrix {
    TraceabilityMatrix::new(vec![
        SafetyRequirement {
            id: "SR1".into(),
            text: "The pump shall cease delivery within 30 s of detected respiratory depression".into(),
            derived_from: vec!["H1".into()],
            verified_by: vec![
                ev(VerificationMethod::ModelChecking, "PcaModelVariant::CommandReliable"),
                ev(VerificationMethod::Experiment, "E1"),
                ev(VerificationMethod::Test, "tests/end_to_end.rs::command_and_ticket_strategies_both_respond_to_danger"),
            ],
        },
        SafetyRequirement {
            id: "SR2".into(),
            text: "Loss of monitoring data or connectivity shall halt delivery within 30 s".into(),
            derived_from: vec!["H1".into(), "H2".into()],
            verified_by: vec![
                ev(VerificationMethod::ModelChecking, "PcaModelVariant::TicketLossy"),
                ev(VerificationMethod::Experiment, "E4, E8"),
                ev(VerificationMethod::Test, "tests/end_to_end.rs::monitor_crash_stops_therapy_but_keeps_patient_safe"),
            ],
        },
        SafetyRequirement {
            id: "SR3".into(),
            text: "The pump shall enforce per-bolus lockout and a sliding-hour dose cap independent of the network".into(),
            derived_from: vec!["H1".into()],
            verified_by: vec![
                ev(VerificationMethod::Test, "tests/properties.rs::pump_hourly_cap_is_inviolable"),
                ev(VerificationMethod::Test, "pump::tests::lockout_blocks_early_redemand"),
            ],
        },
        SafetyRequirement {
            id: "SR4".into(),
            text: "Clinical alarms shall corroborate across parameters to bound false alarms below 1/patient-hour".into(),
            derived_from: vec!["H3".into(), "H4".into()],
            verified_by: vec![ev(VerificationMethod::Experiment, "E2")],
        },
        SafetyRequirement {
            id: "SR5".into(),
            text: "A frozen (stuck-value) vital stream shall be treated as untrustworthy within 45 s".into(),
            derived_from: vec!["H1".into()],
            verified_by: vec![
                ev(VerificationMethod::Experiment, "E8 (stuck-value + plausibility arm)"),
                ev(VerificationMethod::Test, "interlock::tests::plausibility_check_catches_stuck_sensor"),
            ],
        },
        SafetyRequirement {
            id: "SR6".into(),
            text: "Ventilation pauses shall be bounded by the device and auto-resume on budget exhaustion".into(),
            derived_from: vec!["H5".into()],
            verified_by: vec![
                ev(VerificationMethod::Test, "ventilator::tests::pause_freezes_and_auto_resumes"),
                ev(VerificationMethod::Experiment, "E3"),
            ],
        },
        SafetyRequirement {
            id: "SR7".into(),
            text: "Pump programmes shall be validated against the drug library; hard-limit violations shall not run".into(),
            derived_from: vec!["H1".into()],
            verified_by: vec![ev(VerificationMethod::Test, "ders::tests::unit_mixup_hits_hard_limit")],
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::pca_hazard_log;

    #[test]
    fn shipped_matrix_is_complete() {
        let issues = pca_requirements().check(&pca_hazard_log());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn uncovered_hazard_is_flagged() {
        let m = TraceabilityMatrix::new(vec![]);
        let issues = m.check(&pca_hazard_log());
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::UncoveredHazard { hazard } if hazard == "H1")));
    }

    #[test]
    fn unknown_hazard_is_flagged() {
        let m = TraceabilityMatrix::new(vec![SafetyRequirement {
            id: "SRX".into(),
            text: "x".into(),
            derived_from: vec!["H99".into()],
            verified_by: vec![ev(VerificationMethod::Analysis, "none")],
        }]);
        let issues = m.check(&pca_hazard_log());
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::UnknownHazard { hazard, .. } if hazard == "H99")));
    }

    #[test]
    fn unverified_requirement_is_flagged() {
        let m = TraceabilityMatrix::new(vec![SafetyRequirement {
            id: "SRX".into(),
            text: "x".into(),
            derived_from: vec!["H1".into()],
            verified_by: vec![],
        }]);
        let issues = m.check(&pca_hazard_log());
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::Unverified { requirement } if requirement == "SRX")));
    }

    #[test]
    fn duplicate_ids_flagged() {
        let r = SafetyRequirement {
            id: "SR1".into(),
            text: "x".into(),
            derived_from: vec!["H1".into()],
            verified_by: vec![ev(VerificationMethod::Test, "t")],
        };
        let m = TraceabilityMatrix::new(vec![r.clone(), r]);
        let issues = m.check(&pca_hazard_log());
        assert!(issues.iter().any(|i| matches!(i, TraceIssue::DuplicateId { id } if id == "SR1")));
    }

    #[test]
    fn lookup_and_filtering() {
        let m = pca_requirements();
        assert!(m.get("SR1").is_some());
        assert!(m.get("SR99").is_none());
        let h1 = m.for_hazard("H1");
        assert!(h1.len() >= 3, "H1 is the big hazard; got {}", h1.len());
        assert!(m.for_hazard("H5").iter().any(|r| r.id == "SR6"));
    }

    #[test]
    fn table_lists_all_requirements() {
        let m = pca_requirements();
        let table = m.render_table();
        for r in m.requirements() {
            assert!(table.contains(&r.id));
        }
    }

    #[test]
    fn issue_display_is_informative() {
        let i = TraceIssue::UncoveredHazard { hazard: "H9".into() };
        assert!(i.to_string().contains("H9"));
    }
}
