//! Hazard analysis with a severity × likelihood risk matrix.
//!
//! The front end of the assurance workflow: enumerate hazards, rate
//! them, attach mitigations, and check that every unacceptable risk is
//! mitigated down to an acceptable residual level. The PCA hazard log
//! shipped in [`pca_hazard_log`] seeds the experiments' assurance case.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Harm severity (IEC 62304-flavoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Inconvenience, no injury.
    Negligible,
    /// Minor, reversible injury.
    Minor,
    /// Serious, possibly irreversible injury.
    Serious,
    /// Death or permanent disability.
    Catastrophic,
}

/// Likelihood of occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Likelihood {
    /// Not expected in the system's lifetime.
    Improbable,
    /// May occur a few times in the lifetime.
    Remote,
    /// Expected to occur occasionally.
    Occasional,
    /// Expected to occur repeatedly.
    Frequent,
}

/// Risk acceptability classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RiskClass {
    /// Broadly acceptable without further action.
    Acceptable,
    /// Tolerable if reduced as low as reasonably practicable.
    Alarp,
    /// Must be mitigated before deployment.
    Unacceptable,
}

impl fmt::Display for RiskClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RiskClass::Acceptable => "acceptable",
            RiskClass::Alarp => "ALARP",
            RiskClass::Unacceptable => "UNACCEPTABLE",
        };
        f.write_str(s)
    }
}

/// The risk matrix: classifies a (severity, likelihood) pair.
pub fn classify(severity: Severity, likelihood: Likelihood) -> RiskClass {
    use Likelihood as L;
    use Severity as S;
    let s = match severity {
        S::Negligible => 0,
        S::Minor => 1,
        S::Serious => 2,
        S::Catastrophic => 3,
    };
    let l = match likelihood {
        L::Improbable => 0,
        L::Remote => 1,
        L::Occasional => 2,
        L::Frequent => 3,
    };
    match s + l {
        0..=1 => RiskClass::Acceptable,
        2..=3 => RiskClass::Alarp,
        _ => RiskClass::Unacceptable,
    }
}

/// A mitigation applied to a hazard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mitigation {
    /// What the mitigation is.
    pub description: String,
    /// Residual likelihood after the mitigation.
    pub residual_likelihood: Likelihood,
    /// Pointer to evidence (GSN solution label, test id, …).
    pub evidence: String,
}

/// One hazard log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hazard {
    /// Stable identifier, e.g. `"H1"`.
    pub id: String,
    /// What can go wrong.
    pub description: String,
    /// Causal chain / source.
    pub cause: String,
    /// Harm severity (unchanged by mitigations).
    pub severity: Severity,
    /// Likelihood before mitigation.
    pub initial_likelihood: Likelihood,
    /// Mitigations applied.
    pub mitigations: Vec<Mitigation>,
}

impl Hazard {
    /// Risk class before mitigation.
    pub fn initial_risk(&self) -> RiskClass {
        classify(self.severity, self.initial_likelihood)
    }

    /// Likelihood after the *best* mitigation (mitigations are
    /// alternatives layered in depth; the lowest residual governs).
    pub fn residual_likelihood(&self) -> Likelihood {
        self.mitigations
            .iter()
            .map(|m| m.residual_likelihood)
            .min()
            .unwrap_or(self.initial_likelihood)
    }

    /// Risk class after mitigation.
    pub fn residual_risk(&self) -> RiskClass {
        classify(self.severity, self.residual_likelihood())
    }
}

/// A hazard log with acceptance checking.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HazardLog {
    hazards: Vec<Hazard>,
}

impl HazardLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a hazard.
    ///
    /// # Panics
    ///
    /// Panics if the id duplicates an existing entry.
    pub fn add(&mut self, hazard: Hazard) {
        assert!(
            !self.hazards.iter().any(|h| h.id == hazard.id),
            "duplicate hazard id {}",
            hazard.id
        );
        self.hazards.push(hazard);
    }

    /// All hazards.
    pub fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    /// Looks a hazard up by id.
    pub fn get(&self, id: &str) -> Option<&Hazard> {
        self.hazards.iter().find(|h| h.id == id)
    }

    /// Hazards whose residual risk is still unacceptable.
    pub fn unmitigated(&self) -> Vec<&Hazard> {
        self.hazards.iter().filter(|h| h.residual_risk() == RiskClass::Unacceptable).collect()
    }

    /// Whether the system is releasable: no hazard remains unacceptable.
    pub fn is_acceptable(&self) -> bool {
        self.unmitigated().is_empty()
    }

    /// Renders the log as a fixed-width table.
    pub fn render_table(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:<52} {:>13} {:>13} {:>14}",
            "id", "hazard", "severity", "initial", "residual"
        );
        for h in &self.hazards {
            let _ = writeln!(
                out,
                "{:<5} {:<52} {:>13} {:>13} {:>14}",
                h.id,
                truncate(&h.description, 52),
                format!("{:?}", h.severity),
                h.initial_risk().to_string(),
                h.residual_risk().to_string()
            );
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

/// The PCA closed-loop hazard log used by the experiments and the
/// shipped assurance case.
pub fn pca_hazard_log() -> HazardLog {
    let mut log = HazardLog::new();
    log.add(Hazard {
        id: "H1".into(),
        description: "Opioid overdose from dose stacking (PCA-by-proxy or misprogrammed basal)"
            .into(),
        cause: "Demands issued while patient already sedated; pump cannot observe the patient"
            .into(),
        severity: Severity::Catastrophic,
        initial_likelihood: Likelihood::Occasional,
        mitigations: vec![
            Mitigation {
                description: "Closed-loop safety interlock stops pump on respiratory depression"
                    .into(),
                residual_likelihood: Likelihood::Improbable,
                evidence: "E1 cohort study; E5 model-checking (CommandReliable, TicketLossy)"
                    .into(),
            },
            Mitigation {
                description: "Hourly dose hard limit in pump firmware".into(),
                residual_likelihood: Likelihood::Remote,
                evidence: "pump::tests::hourly_limit_denies_and_caps".into(),
            },
        ],
    });
    log.add(Hazard {
        id: "H2".into(),
        description: "Interlock defeated by network failure (stop command lost)".into(),
        cause: "Packet loss/partition between supervisor and pump".into(),
        severity: Severity::Catastrophic,
        initial_likelihood: Likelihood::Occasional,
        mitigations: vec![Mitigation {
            description: "Ticket-based permission: pump self-stops when grants cease".into(),
            residual_likelihood: Likelihood::Improbable,
            evidence: "E4 QoS sweep; E5 TicketLossy proof".into(),
        }],
    });
    log.add(Hazard {
        id: "H3".into(),
        description: "Missed deterioration due to alarm fatigue (true alarms ignored)".into(),
        cause: "High false-alarm rate of single-threshold monitoring".into(),
        severity: Severity::Serious,
        initial_likelihood: Likelihood::Frequent,
        mitigations: vec![Mitigation {
            description: "Multi-parameter fusion smart alarm with artifact rejection".into(),
            residual_likelihood: Likelihood::Remote,
            evidence: "E2 ward study".into(),
        }],
    });
    log.add(Hazard {
        id: "H4".into(),
        description: "Analgesia withheld (interlock false positive stops a safe pump)".into(),
        cause: "Sensor artifact misread as respiratory depression".into(),
        severity: Severity::Minor,
        initial_likelihood: Likelihood::Frequent,
        mitigations: vec![Mitigation {
            description: "Fusion alarm requires corroboration across SpO2/RR/EtCO2".into(),
            residual_likelihood: Likelihood::Occasional,
            evidence: "E1 analgesia-availability metric".into(),
        }],
    });
    log.add(Hazard {
        id: "H5".into(),
        description: "Patient harmed during imaging (breath-hold overrun or blurred retake)".into(),
        cause: "Manual x-ray/ventilator coordination timing errors".into(),
        severity: Severity::Serious,
        initial_likelihood: Likelihood::Occasional,
        mitigations: vec![Mitigation {
            description: "ICE-coordinated pause/expose/resume with device-enforced max pause"
                .into(),
            residual_likelihood: Likelihood::Improbable,
            evidence: "E3 coordination study; ventilator auto-resume unit tests".into(),
        }],
    });
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_corners() {
        assert_eq!(classify(Severity::Negligible, Likelihood::Improbable), RiskClass::Acceptable);
        assert_eq!(classify(Severity::Catastrophic, Likelihood::Frequent), RiskClass::Unacceptable);
        assert_eq!(classify(Severity::Minor, Likelihood::Remote), RiskClass::Alarp);
        assert_eq!(classify(Severity::Catastrophic, Likelihood::Improbable), RiskClass::Alarp);
    }

    #[test]
    fn matrix_is_monotone() {
        use Likelihood::*;
        use Severity::*;
        let sevs = [Negligible, Minor, Serious, Catastrophic];
        let liks = [Improbable, Remote, Occasional, Frequent];
        for w in sevs.windows(2) {
            for &l in &liks {
                assert!(classify(w[0], l) <= classify(w[1], l));
            }
        }
        for w in liks.windows(2) {
            for &s in &sevs {
                assert!(classify(s, w[0]) <= classify(s, w[1]));
            }
        }
    }

    #[test]
    fn residual_risk_takes_best_mitigation() {
        let log = pca_hazard_log();
        let h1 = log.get("H1").unwrap();
        assert_eq!(h1.initial_risk(), RiskClass::Unacceptable);
        assert_eq!(h1.residual_likelihood(), Likelihood::Improbable);
        assert_eq!(h1.residual_risk(), RiskClass::Alarp);
    }

    #[test]
    fn unmitigated_hazard_blocks_release() {
        let mut log = HazardLog::new();
        log.add(Hazard {
            id: "HX".into(),
            description: "raw".into(),
            cause: "c".into(),
            severity: Severity::Catastrophic,
            initial_likelihood: Likelihood::Frequent,
            mitigations: vec![],
        });
        assert!(!log.is_acceptable());
        assert_eq!(log.unmitigated().len(), 1);
    }

    #[test]
    fn shipped_pca_log_is_releasable() {
        let log = pca_hazard_log();
        assert!(log.is_acceptable(), "{:?}", log.unmitigated());
        assert_eq!(log.hazards().len(), 5);
    }

    #[test]
    fn table_renders_every_hazard() {
        let log = pca_hazard_log();
        let table = log.render_table();
        for h in log.hazards() {
            assert!(table.contains(&h.id));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate hazard id")]
    fn duplicate_ids_rejected() {
        let mut log = pca_hazard_log();
        log.add(Hazard {
            id: "H1".into(),
            description: "dup".into(),
            cause: "c".into(),
            severity: Severity::Minor,
            initial_likelihood: Likelihood::Remote,
            mitigations: vec![],
        });
    }
}
