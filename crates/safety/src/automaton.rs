//! Timed automata with integer clocks.
//!
//! The model-based development story of the paper rests on verifying
//! device and interlock state machines *before* deployment. This module
//! defines the modelling vocabulary: automata with locations, location
//! invariants, guarded edges, clock resets and CCS-style channel
//! synchronization (`send`/`recv` rendezvous). Semantics are
//! **discrete-time**: clocks advance in unit steps, which is adequate
//! for the second-granularity timing properties of clinical interlocks
//! and keeps the checker (see [`crate::checker`]) fully self-contained.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a location within one automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocId(pub usize);

/// Index of a clock within one automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClockId(pub usize);

/// A conjunction-structured clock constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Guard {
    /// Always satisfied.
    True,
    /// `clock >= bound`.
    Ge(ClockId, u32),
    /// `clock > bound`.
    Gt(ClockId, u32),
    /// `clock <= bound`.
    Le(ClockId, u32),
    /// `clock < bound`.
    Lt(ClockId, u32),
    /// `clock == bound`.
    Eq(ClockId, u32),
    /// All subguards hold.
    And(Vec<Guard>),
}

impl Guard {
    /// Evaluates against a clock valuation.
    pub fn eval(&self, clocks: &[u32]) -> bool {
        match self {
            Guard::True => true,
            Guard::Ge(c, b) => clocks[c.0] >= *b,
            Guard::Gt(c, b) => clocks[c.0] > *b,
            Guard::Le(c, b) => clocks[c.0] <= *b,
            Guard::Lt(c, b) => clocks[c.0] < *b,
            Guard::Eq(c, b) => clocks[c.0] == *b,
            Guard::And(gs) => gs.iter().all(|g| g.eval(clocks)),
        }
    }

    /// Whether the guard constrains `clock` at all (for the checker's
    /// clock-activity reduction).
    pub fn mentions(&self, clock: ClockId) -> bool {
        match self {
            Guard::True => false,
            Guard::Ge(c, _)
            | Guard::Gt(c, _)
            | Guard::Le(c, _)
            | Guard::Lt(c, _)
            | Guard::Eq(c, _) => *c == clock,
            Guard::And(gs) => gs.iter().any(|g| g.mentions(clock)),
        }
    }

    /// The largest constant mentioned for `clock` (for ceiling
    /// computation).
    pub fn max_constant(&self, clock: ClockId) -> u32 {
        match self {
            Guard::True => 0,
            Guard::Ge(c, b)
            | Guard::Gt(c, b)
            | Guard::Le(c, b)
            | Guard::Lt(c, b)
            | Guard::Eq(c, b) => {
                if *c == clock {
                    *b
                } else {
                    0
                }
            }
            Guard::And(gs) => gs.iter().map(|g| g.max_constant(clock)).max().unwrap_or(0),
        }
    }
}

/// What an edge does besides moving between locations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Purely internal step.
    Internal,
    /// Offer a rendezvous on `channel` (`channel!`).
    Send(String),
    /// Accept a rendezvous on `channel` (`channel?`).
    Recv(String),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Internal => f.write_str("τ"),
            Action::Send(c) => write!(f, "{c}!"),
            Action::Recv(c) => write!(f, "{c}?"),
        }
    }
}

/// A guarded, possibly synchronizing transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source location.
    pub from: LocId,
    /// Target location.
    pub to: LocId,
    /// Enabling clock constraint.
    pub guard: Guard,
    /// Clocks reset to zero when the edge fires.
    pub resets: Vec<ClockId>,
    /// Synchronization behaviour.
    pub action: Action,
    /// Display label for traces.
    pub label: String,
}

/// A location with its time-progress invariant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// Display name.
    pub name: String,
    /// Time may only pass while the invariant holds.
    pub invariant: Guard,
    /// Urgent locations forbid the passage of time entirely.
    pub urgent: bool,
}

/// One timed automaton.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Automaton {
    name: String,
    locations: Vec<Location>,
    clocks: Vec<String>,
    edges: Vec<Edge>,
    initial: LocId,
}

impl Automaton {
    /// Starts building an automaton.
    pub fn builder(name: &str) -> AutomatonBuilder {
        AutomatonBuilder {
            a: Automaton {
                name: name.to_owned(),
                locations: Vec::new(),
                clocks: Vec::new(),
                edges: Vec::new(),
                initial: LocId(0),
            },
        }
    }

    /// The automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Clock names.
    pub fn clocks(&self) -> &[String] {
        &self.clocks
    }

    /// The initial location.
    pub fn initial(&self) -> LocId {
        self.initial
    }

    /// Finds a location id by name.
    pub fn location_id(&self, name: &str) -> Option<LocId> {
        self.locations.iter().position(|l| l.name == name).map(LocId)
    }

    /// The ceiling (max constant + 1) of each clock across all guards
    /// and invariants. Clock values above the ceiling are
    /// indistinguishable, so the checker caps them there.
    pub fn clock_ceilings(&self) -> Vec<u32> {
        (0..self.clocks.len())
            .map(|i| {
                let c = ClockId(i);
                let g = self.edges.iter().map(|e| e.guard.max_constant(c)).max().unwrap_or(0);
                let inv =
                    self.locations.iter().map(|l| l.invariant.max_constant(c)).max().unwrap_or(0);
                g.max(inv) + 1
            })
            .collect()
    }

    /// Bits needed to pack this automaton's location index — layout
    /// metadata for the checker's packed state encoding
    /// (see [`crate::pack::PackedLayout`]).
    pub fn loc_bits(&self) -> u32 {
        bits_for(self.locations.len() as u64 - 1)
    }

    /// Bits needed to pack each ceiling-capped clock of this automaton,
    /// in clock order. Companion of [`Self::loc_bits`].
    pub fn clock_bits(&self) -> Vec<u32> {
        self.clock_ceilings().iter().map(|&c| bits_for(u64::from(c))).collect()
    }

    /// Basic well-formedness: edges reference valid locations/clocks,
    /// initial location exists.
    pub fn validate(&self) -> Result<(), String> {
        if self.locations.is_empty() {
            return Err(format!("automaton {} has no locations", self.name));
        }
        if self.initial.0 >= self.locations.len() {
            return Err(format!("automaton {}: initial location out of range", self.name));
        }
        for e in &self.edges {
            if e.from.0 >= self.locations.len() || e.to.0 >= self.locations.len() {
                return Err(format!(
                    "automaton {}: edge {} references unknown location",
                    self.name, e.label
                ));
            }
            for r in &e.resets {
                if r.0 >= self.clocks.len() {
                    return Err(format!(
                        "automaton {}: edge {} resets unknown clock",
                        self.name, e.label
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Bits needed to represent every value in `0..=max` (0 bits for
/// `max == 0`).
pub(crate) fn bits_for(max: u64) -> u32 {
    64 - max.leading_zeros()
}

/// Builder for [`Automaton`].
#[derive(Debug, Clone)]
pub struct AutomatonBuilder {
    a: Automaton,
}

impl AutomatonBuilder {
    /// Declares a clock; returns its id.
    pub fn clock(&mut self, name: &str) -> ClockId {
        self.a.clocks.push(name.to_owned());
        ClockId(self.a.clocks.len() - 1)
    }

    /// Declares a location; the first one declared is initial unless
    /// [`Self::initial`] overrides it.
    pub fn location(&mut self, name: &str) -> LocId {
        self.a.locations.push(Location {
            name: name.to_owned(),
            invariant: Guard::True,
            urgent: false,
        });
        LocId(self.a.locations.len() - 1)
    }

    /// Declares an urgent location (time cannot pass in it).
    pub fn urgent_location(&mut self, name: &str) -> LocId {
        let id = self.location(name);
        self.a.locations[id.0].urgent = true;
        id
    }

    /// Sets a location's invariant.
    pub fn invariant(&mut self, loc: LocId, inv: Guard) -> &mut Self {
        self.a.locations[loc.0].invariant = inv;
        self
    }

    /// Overrides the initial location.
    pub fn initial(&mut self, loc: LocId) -> &mut Self {
        self.a.initial = loc;
        self
    }

    /// Adds an edge.
    pub fn edge(
        &mut self,
        label: &str,
        from: LocId,
        to: LocId,
        guard: Guard,
        action: Action,
        resets: Vec<ClockId>,
    ) -> &mut Self {
        self.a.edges.push(Edge { from, to, guard, resets, action, label: label.to_owned() });
        self
    }

    /// Finishes the automaton.
    ///
    /// # Panics
    ///
    /// Panics if the automaton fails [`Automaton::validate`].
    pub fn build(self) -> Automaton {
        if let Err(e) = self.a.validate() {
            panic!("invalid automaton: {e}");
        }
        self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Automaton {
        let mut b = Automaton::builder("lamp");
        let x = b.clock("x");
        let off = b.location("Off");
        let on = b.location("On");
        b.invariant(on, Guard::Le(x, 10));
        b.edge("press", off, on, Guard::True, Action::Recv("press".into()), vec![x]);
        b.edge("timeout", on, off, Guard::Ge(x, 10), Action::Internal, vec![]);
        b.build()
    }

    #[test]
    fn guard_evaluation() {
        let c = ClockId(0);
        assert!(Guard::Ge(c, 5).eval(&[5]));
        assert!(!Guard::Gt(c, 5).eval(&[5]));
        assert!(Guard::Le(c, 5).eval(&[5]));
        assert!(!Guard::Lt(c, 5).eval(&[5]));
        assert!(Guard::Eq(c, 5).eval(&[5]));
        assert!(Guard::And(vec![Guard::Ge(c, 3), Guard::Le(c, 7)]).eval(&[5]));
        assert!(!Guard::And(vec![Guard::Ge(c, 3), Guard::Le(c, 4)]).eval(&[5]));
        assert!(Guard::True.eval(&[5]));
    }

    #[test]
    fn ceilings_cover_guards_and_invariants() {
        let a = simple();
        assert_eq!(a.clock_ceilings(), vec![11]);
    }

    #[test]
    fn location_lookup() {
        let a = simple();
        assert_eq!(a.location_id("On"), Some(LocId(1)));
        assert_eq!(a.location_id("Nope"), None);
        assert_eq!(a.initial(), LocId(0));
    }

    #[test]
    fn max_constant_per_clock() {
        let g = Guard::And(vec![Guard::Ge(ClockId(0), 7), Guard::Le(ClockId(1), 3)]);
        assert_eq!(g.max_constant(ClockId(0)), 7);
        assert_eq!(g.max_constant(ClockId(1)), 3);
    }

    #[test]
    #[should_panic(expected = "invalid automaton")]
    fn empty_automaton_rejected() {
        let _ = Automaton::builder("empty").build();
    }

    #[test]
    fn packing_widths() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
        let a = simple();
        // Two locations -> 1 bit; one clock with ceiling 11 -> 4 bits.
        assert_eq!(a.loc_bits(), 1);
        assert_eq!(a.clock_bits(), vec![4]);
    }

    #[test]
    fn action_display() {
        assert_eq!(Action::Send("stop".into()).to_string(), "stop!");
        assert_eq!(Action::Recv("stop".into()).to_string(), "stop?");
        assert_eq!(Action::Internal.to_string(), "τ");
    }
}
