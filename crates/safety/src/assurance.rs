//! Assembling the complete assurance case from the safety artefacts.
//!
//! Ties the pillars together mechanically: the hazard log provides the
//! claims, the traceability matrix provides the decomposition and
//! evidence, and fresh verification verdicts are attached as solutions.
//! The resulting GSN case is structurally validated — an undeveloped
//! goal or an uncovered hazard fails the build, not the audit.

use crate::checker::CheckOutcome;
use crate::gsn::{AssuranceCase, NodeKind};
use crate::hazard::HazardLog;
use crate::models::PcaModelVariant;
use crate::requirements::TraceabilityMatrix;

/// Builds the GSN assurance case for a system described by `hazards`
/// and `matrix`, attaching `verification` verdicts as live evidence.
///
/// The argument structure is the standard hazard-directed pattern:
/// top goal → strategy "argue over every hazard" → per-hazard goals →
/// per-requirement goals → solution nodes citing the evidence.
pub fn build_assurance_case(
    system_name: &str,
    hazards: &HazardLog,
    matrix: &TraceabilityMatrix,
    verification: &[(PcaModelVariant, CheckOutcome)],
) -> AssuranceCase {
    let mut ac = AssuranceCase::new();
    let g_top = ac.goal("G1", &format!("{system_name} is acceptably safe for clinical use"));
    let ctx = ac.add(
        NodeKind::Context,
        "C1",
        "ICE architecture; devices associate on demand via capability profiles",
    );
    ac.in_context_of(g_top, ctx);
    let s1 = ac.strategy("S1", "Argue mitigation of every identified hazard");
    ac.supported_by(g_top, s1);
    let j1 = ac.add(
        NodeKind::Justification,
        "J1",
        "Hazard log reviewed for completeness against the clinical scenario set",
    );
    ac.in_context_of(s1, j1);

    for h in hazards.hazards() {
        let gh = ac.goal(&format!("G-{}", h.id), &format!("{} is mitigated", h.description));
        ac.supported_by(s1, gh);
        let reqs = matrix.for_hazard(&h.id);
        if reqs.is_empty() {
            // Leave the goal undeveloped: validation will flag it.
            continue;
        }
        for r in reqs {
            let gr = ac.goal(&format!("G-{}", r.id), &r.text);
            ac.supported_by(gh, gr);
            let evidence = r
                .verified_by
                .iter()
                .map(|e| format!("{} [{}]", e.reference, e.method))
                .collect::<Vec<_>>()
                .join("; ");
            let sn = ac.solution(&format!("Sn-{}", r.id), &evidence);
            ac.supported_by(gr, sn);
        }
    }

    // Live verification verdicts.
    if !verification.is_empty() {
        let gv = ac.goal("G-V", "Interlock timing properties verified by model checking");
        ac.supported_by(s1, gv);
        for (variant, outcome) in verification {
            let text = match outcome {
                CheckOutcome::Holds { states } => {
                    format!("{}: HOLDS over {states} states", variant.description())
                }
                CheckOutcome::Violated { trace, .. } => format!(
                    "{}: VIOLATED (defect demonstrated in {} model-time units)",
                    variant.description(),
                    trace.elapsed()
                ),
                CheckOutcome::Exhausted { budget } => {
                    format!("{}: exploration exhausted at {budget}", variant.description())
                }
            };
            let sn = ac.solution(&format!("Sn-V-{variant:?}"), &text);
            ac.supported_by(gv, sn);
        }
    }
    ac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::pca_hazard_log;
    use crate::models::check_pca_variant;
    use crate::requirements::pca_requirements;

    fn verdicts() -> Vec<(PcaModelVariant, CheckOutcome)> {
        [PcaModelVariant::CommandReliable, PcaModelVariant::TicketLossy]
            .into_iter()
            .map(|v| (v, check_pca_variant(v, 2_000_000)))
            .collect()
    }

    #[test]
    fn shipped_artifacts_build_a_complete_case() {
        let ac = build_assurance_case(
            "The PCA closed-loop MCPS",
            &pca_hazard_log(),
            &pca_requirements(),
            &verdicts(),
        );
        let issues = ac.validate();
        assert!(issues.is_empty(), "{issues:?}");
        let text = ac.render_text();
        for needle in ["G-H1", "G-SR1", "Sn-SR5", "G-V", "HOLDS"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn uncovered_hazard_leaves_undeveloped_goal() {
        let mut hazards = pca_hazard_log();
        hazards.add(crate::hazard::Hazard {
            id: "H9".into(),
            description: "novel hazard nobody addressed".into(),
            cause: "?".into(),
            severity: crate::hazard::Severity::Serious,
            initial_likelihood: crate::hazard::Likelihood::Occasional,
            mitigations: vec![],
        });
        let ac = build_assurance_case("X", &hazards, &pca_requirements(), &[]);
        let issues = ac.validate();
        assert!(
            issues.iter().any(|i| i.to_string().contains("G-H9")),
            "undeveloped goal must surface: {issues:?}"
        );
    }

    #[test]
    fn case_without_verification_is_still_structured() {
        let ac = build_assurance_case("X", &pca_hazard_log(), &pca_requirements(), &[]);
        assert!(ac.validate().is_empty());
        assert!(!ac.render_dot().contains("G-V"));
    }
}
