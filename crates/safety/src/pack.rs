//! The packed-state exploration core of the model checker.
//!
//! The first-generation engine allocated a [`NetState`] per explored
//! state and cloned full states as SipHash map keys for the visited
//! set and the parent map; allocation and hashing dominated the run
//! time. This module rebuilds exploration the way UPPAAL-lineage
//! checkers do:
//!
//! * **Bit-packed states** — [`PackedLayout`] precomputes, per
//!   automaton, how many bits a location index and each ceiling-capped
//!   clock need, and packs a whole network state (plus the
//!   bounded-response obligation age) into a fixed-width `u64` word
//!   vector, usually one or two words.
//! * **Interned arena** — every distinct packed state is appended once
//!   to a [`StateArena`] and addressed by `u32` id everywhere else:
//!   the BFS frontier is a `Vec<u32>`, the visited set an
//!   open-addressing id table hashed with `fxhash`, and the parent map
//!   a dense `Vec<(u32, CStep)>` indexed by id. Successor generation
//!   and trace reconstruction never clone a state.
//! * **Deterministic layer-parallel BFS** — one depth layer at a time
//!   is split across worker threads (via
//!   [`mcps_runtime::shard::run_shards`], the workspace's
//!   order-preserving worker pool) and the discovered successors are
//!   merged in worker-index order, so verdicts, counterexample traces
//!   and state counts are bit-identical to the serial engine — proven
//!   by differential tests against the retained reference
//!   implementation ([`Network::check_safety_reference`]).
//!
//! An optional **clock-activity reduction** ([`Reduction::ClockActive`])
//! shrinks the explored space further by normalizing *inactive* clocks
//! — clocks whose current value cannot influence any guard or
//! invariant before their next reset — to a canonical value before
//! interning, merging states that differ only in dead clock readings.
//!
//! [`NetState`]: crate::checker::NetState

use crate::automaton::{bits_for, Action, ClockId, Edge};
use crate::checker::{CheckOutcome, MonitorVerdict, NetState, Network, StateView, Step, Trace};
use fxhash::FxHashMap;
use std::ops::ControlFlow;

/// Id of the initial state's (absent) parent in the dense parent map.
const NO_PARENT: u32 = u32::MAX;

/// Empty slot marker in the open-addressing visited table.
const EMPTY: u32 = u32::MAX;

/// Below this frontier width, `ExploreMode::Auto` stays serial: the
/// per-layer thread fan-out costs more than it saves.
const AUTO_PAR_MIN_LAYER: usize = 2048;

/// How the exploration engine schedules BFS layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreMode {
    /// Single-threaded exploration.
    Serial,
    /// Layer-parallel exploration for every non-trivial layer (used by
    /// the determinism tests; prefer `Auto` otherwise).
    Parallel,
    /// Layer-parallel only for layers wide enough to amortize the
    /// thread fan-out; serial below that. The default.
    #[default]
    Auto,
}

/// State-space reduction applied by the exploration engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Explore the exact product state space — bit-identical to the
    /// reference engine (states, verdicts, traces). The default.
    #[default]
    None,
    /// Inactive-clock normalization (Daws/Yovine-style clock-activity
    /// symmetry): a per-location static analysis marks each clock
    /// *active* where its value can still reach a guard or invariant
    /// before being reset; everywhere else the clock is normalized to
    /// its ceiling before the state is interned. States differing only
    /// in dead clock readings merge, shrinking the space without
    /// changing any verdict — enabledness never reads an inactive
    /// clock, and counterexample traces remain real behaviours of the
    /// unreduced network (they replay on [`Network::replay`]).
    ///
    /// Property predicates must not read a clock (via
    /// [`StateView::clock`]) in locations where its automaton no
    /// longer constrains it — they would observe the canonical ceiling
    /// instead of the concrete value.
    ClockActive,
}

/// The clock-activity table behind [`Reduction::ClockActive`]: for
/// every (automaton, location, clock), whether the clock's value can
/// influence a future guard or invariant before its next reset.
///
/// Computed by a backward fixpoint per automaton: a clock is active in
/// a location if the location's invariant or an outgoing edge's guard
/// mentions it, or some outgoing edge that does not reset it leads to
/// a location where it is active.
#[derive(Debug)]
struct ClockActivity {
    /// Per automaton: `active[loc * n_clocks + clock]`.
    active: Vec<Vec<bool>>,
}

impl ClockActivity {
    /// Builds the table, or `None` when every clock is active in every
    /// location (normalization would be a no-op).
    fn new(net: &Network) -> Option<ClockActivity> {
        let mut any_inactive = false;
        let active: Vec<Vec<bool>> = net
            .automata()
            .iter()
            .map(|a| {
                let nc = a.clocks().len();
                let mut act = vec![false; a.locations().len() * nc];
                for (li, loc) in a.locations().iter().enumerate() {
                    for c in 0..nc {
                        act[li * nc + c] = loc.invariant.mentions(ClockId(c));
                    }
                }
                for e in a.edges() {
                    for c in 0..nc {
                        if e.guard.mentions(ClockId(c)) {
                            act[e.from.0 * nc + c] = true;
                        }
                    }
                }
                let mut changed = true;
                while changed {
                    changed = false;
                    for e in a.edges() {
                        for c in 0..nc {
                            if act[e.to.0 * nc + c]
                                && !act[e.from.0 * nc + c]
                                && !e.resets.iter().any(|r| r.0 == c)
                            {
                                act[e.from.0 * nc + c] = true;
                                changed = true;
                            }
                        }
                    }
                }
                any_inactive |= act.iter().any(|&b| !b);
                act
            })
            .collect();
        any_inactive.then_some(ClockActivity { active })
    }
}

/// Statistics of one exploration run, for perf baselines and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states interned (including the initial state).
    pub states: usize,
    /// Peak size of the state arena in bytes.
    pub arena_bytes: usize,
    /// `u64` words per packed state.
    pub words_per_state: usize,
    /// BFS layers expanded.
    pub layers: usize,
    /// Widest BFS layer encountered.
    pub peak_layer: usize,
}

/// One bit field inside a packed state word vector.
#[derive(Debug, Clone, Copy)]
struct Field {
    off: u32,
    bits: u32,
}

/// The bit-packed state layout of one [`Network`].
///
/// Fields are laid out in automaton order — each automaton's location
/// index, then its ceiling-capped clocks — followed by one trailing
/// field for the bounded-response obligation age. Widths come from the
/// automaton layout metadata ([`crate::automaton::Automaton::loc_bits`]
/// and [`crate::automaton::Automaton::clock_bits`]), so every value the
/// checker can produce fits its field exactly.
#[derive(Debug, Clone)]
pub struct PackedLayout {
    locs: Vec<Field>,
    clocks: Vec<Field>,
    /// Per-automaton offset into the flat clock array.
    clock_off: Vec<usize>,
    pending: Field,
    words: usize,
}

impl PackedLayout {
    /// Computes the layout for `net`. `pending_values` is the number of
    /// distinct obligation encodings (1 for plain safety, deadline + 2
    /// for bounded response: `None` plus ages `0..=deadline`).
    pub(crate) fn new(net: &Network, pending_values: u64) -> Self {
        let mut off = 0u32;
        let mut locs = Vec::new();
        let mut clocks = Vec::new();
        let mut clock_off = Vec::new();
        for a in net.automata() {
            let bits = a.loc_bits();
            locs.push(Field { off, bits });
            off += bits;
            clock_off.push(clocks.len());
            for bits in a.clock_bits() {
                clocks.push(Field { off, bits });
                off += bits;
            }
        }
        let pending = Field { off, bits: bits_for(pending_values - 1) };
        off += pending.bits;
        let words = (off as usize).div_ceil(64);
        PackedLayout { locs, clocks, clock_off, pending, words: words.max(1) }
    }

    /// `u64` words each packed state occupies.
    pub fn words_per_state(&self) -> usize {
        self.words
    }

    /// Total packed bits per state (locations + clocks + obligation).
    pub fn bits_per_state(&self) -> u32 {
        self.pending.off + self.pending.bits
    }

    /// Packs a [`NetState`] plus obligation age into a fresh word
    /// vector. Clock values must be ceiling-capped (as every state the
    /// checker produces is).
    pub fn encode(&self, state: &NetState, pending: Option<u32>) -> Vec<u64> {
        let mut out = vec![0u64; self.words];
        let flat: Vec<u32> = state.clocks.iter().flatten().copied().collect();
        self.encode_flat(&state.locs, &flat, pending, &mut out);
        out
    }

    /// Unpacks a word vector back into a [`NetState`] and obligation
    /// age. Inverse of [`Self::encode`].
    pub fn decode(&self, words: &[u64]) -> (NetState, Option<u32>) {
        let mut locs = vec![0u16; self.locs.len()];
        let mut flat = vec![0u32; self.clocks.len()];
        let pending = self.decode_flat(words, &mut locs, &mut flat);
        let mut clocks = Vec::with_capacity(self.clock_off.len());
        for (i, &start) in self.clock_off.iter().enumerate() {
            let end = self.clock_off.get(i + 1).copied().unwrap_or(self.clocks.len());
            clocks.push(flat[start..end].to_vec());
        }
        (NetState { locs, clocks }, pending)
    }

    /// Packs flat location/clock arrays into `out` (which must hold
    /// [`Self::words_per_state`] words; it is zeroed first).
    fn encode_flat(&self, locs: &[u16], clocks: &[u32], pending: Option<u32>, out: &mut [u64]) {
        out.fill(0);
        for (f, &l) in self.locs.iter().zip(locs) {
            write_bits(out, f, u64::from(l));
        }
        for (f, &c) in self.clocks.iter().zip(clocks) {
            write_bits(out, f, u64::from(c));
        }
        let p = pending.map_or(0, |a| u64::from(a) + 1);
        write_bits(out, &self.pending, p);
    }

    /// Unpacks a word vector into flat location/clock arrays, returning
    /// the obligation age.
    fn decode_flat(&self, words: &[u64], locs: &mut [u16], clocks: &mut [u32]) -> Option<u32> {
        for (f, l) in self.locs.iter().zip(locs.iter_mut()) {
            *l = read_bits(words, f) as u16;
        }
        for (f, c) in self.clocks.iter().zip(clocks.iter_mut()) {
            *c = read_bits(words, f) as u32;
        }
        match read_bits(words, &self.pending) {
            0 => None,
            p => Some((p - 1) as u32),
        }
    }
}

#[inline]
fn write_bits(words: &mut [u64], f: &Field, val: u64) {
    if f.bits == 0 {
        debug_assert_eq!(val, 0);
        return;
    }
    debug_assert!(f.bits == 64 || val < (1u64 << f.bits), "value {val} overflows {} bits", f.bits);
    let w = (f.off / 64) as usize;
    let s = f.off % 64;
    words[w] |= val << s;
    if s + f.bits > 64 {
        words[w + 1] |= val >> (64 - s);
    }
}

#[inline]
fn read_bits(words: &[u64], f: &Field) -> u64 {
    if f.bits == 0 {
        return 0;
    }
    let w = (f.off / 64) as usize;
    let s = f.off % 64;
    let mut v = words[w] >> s;
    if s + f.bits > 64 {
        v |= words[w + 1] << (64 - s);
    }
    v & (u64::MAX >> (64 - f.bits))
}

/// Append-only interned storage of packed states, addressed by `u32`
/// id. Each state occupies a fixed number of `u64` words.
#[derive(Debug, Clone)]
struct StateArena {
    words: Vec<u64>,
    w: usize,
}

impl StateArena {
    fn new(w: usize) -> Self {
        StateArena { words: Vec::new(), w }
    }

    fn len(&self) -> usize {
        self.words.len() / self.w
    }

    #[inline]
    fn get(&self, id: u32) -> &[u64] {
        let i = id as usize * self.w;
        &self.words[i..i + self.w]
    }

    fn push(&mut self, state: &[u64]) -> u32 {
        let id = self.len();
        assert!(id < u32::MAX as usize, "state arena overflow (>= 2^32 - 1 states)");
        self.words.extend_from_slice(state);
        id as u32
    }

    fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Open-addressing visited set mapping packed states (stored once in
/// the arena) to their ids. Fx-hashed, linear probing, power-of-two
/// capacity.
#[derive(Debug, Clone)]
struct IdTable {
    slots: Vec<u32>,
    len: usize,
}

enum Lookup {
    // The interned id is read by tests; exploration only needs to know
    // the state was seen.
    Found(#[allow(dead_code)] u32),
    Inserted(u32),
    OverBudget,
}

impl IdTable {
    /// A table pre-sized to hold `expected` states without growing —
    /// each `grow` rehashes every interned state, so a bounded search
    /// that knows its budget should pay for the slots once up front.
    /// Capacity is clamped to \[1024, 2^22\] slots (16 MiB of ids) so an
    /// unbounded budget doesn't pre-commit the address space; beyond
    /// the clamp the table grows as usual.
    fn with_capacity(expected: usize) -> Self {
        let want = (expected.saturating_mul(10) / 7).saturating_add(1);
        let cap = want.clamp(1024, 1 << 22).next_power_of_two();
        IdTable { slots: vec![EMPTY; cap], len: 0 }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Finds `state` or interns it. Refuses the insert (without side
    /// effects) once `budget` states are stored.
    fn lookup_or_insert(&mut self, state: &[u64], arena: &mut StateArena, budget: usize) -> Lookup {
        let mask = self.slots.len() - 1;
        let mut i = (fxhash::hash_words(state) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                if self.len >= budget {
                    return Lookup::OverBudget;
                }
                let id = arena.push(state);
                self.slots[i] = id;
                self.len += 1;
                if self.len * 10 >= self.slots.len() * 7 {
                    self.grow(arena);
                }
                return Lookup::Inserted(id);
            }
            if arena.get(s) == state {
                return Lookup::Found(s);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self, arena: &StateArena) {
        let mut slots = vec![EMPTY; self.slots.len() * 2];
        let mask = slots.len() - 1;
        for &id in self.slots.iter().filter(|&&s| s != EMPTY) {
            let mut i = (fxhash::hash_words(arena.get(id)) as usize) & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = id;
        }
        self.slots = slots;
    }
}

/// A compact, name-free step record for the dense parent map. Expanded
/// into a display [`Step`] only during trace reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CStep {
    Edge { aut: u16, edge: u16 },
    Sync { s_aut: u16, s_edge: u16, r_aut: u16, r_edge: u16 },
    Delay,
}

/// Precomputed successor-generation plan: edges grouped by action kind
/// with channels interned to dense ids, so the inner rendezvous loop
/// never compares channel strings, plus the flat clock geometry.
#[derive(Debug)]
struct Plan {
    /// Per automaton: internal edge indices in edge order.
    internal: Vec<Vec<u16>>,
    /// Per automaton: `(edge index, channel id)` for send edges.
    sends: Vec<Vec<(u16, u16)>>,
    /// `[channel id][automaton]` -> receiving edge indices.
    recvs: Vec<Vec<Vec<u16>>>,
    /// Per automaton: offset into the flat clock array.
    clock_off: Vec<usize>,
    /// Ceiling of every clock, flat.
    ceilings_flat: Vec<u32>,
}

impl Plan {
    fn new(net: &Network) -> Self {
        let autos = net.automata();
        let n = autos.len();
        assert!(n <= usize::from(u16::MAX), "too many automata");
        let mut chan_ids: FxHashMap<&str, u16> = FxHashMap::default();
        for a in autos {
            for e in a.edges() {
                if let Action::Send(c) | Action::Recv(c) = &e.action {
                    if !chan_ids.contains_key(c.as_str()) {
                        let id = u16::try_from(chan_ids.len()).expect("too many channels");
                        chan_ids.insert(c, id);
                    }
                }
            }
        }
        let mut internal = vec![Vec::new(); n];
        let mut sends = vec![Vec::new(); n];
        let mut recvs = vec![vec![Vec::new(); n]; chan_ids.len()];
        for (i, a) in autos.iter().enumerate() {
            assert!(a.edges().len() <= usize::from(u16::MAX), "too many edges");
            for (ei, e) in a.edges().iter().enumerate() {
                let ei = ei as u16;
                match &e.action {
                    Action::Internal => internal[i].push(ei),
                    Action::Send(c) => sends[i].push((ei, chan_ids[c.as_str()])),
                    Action::Recv(c) => recvs[usize::from(chan_ids[c.as_str()])][i].push(ei),
                }
            }
        }
        let mut clock_off = Vec::with_capacity(n);
        let mut ceilings_flat = Vec::new();
        for ceil in net.ceilings() {
            clock_off.push(ceilings_flat.len());
            ceilings_flat.extend_from_slice(ceil);
        }
        Plan { internal, sends, recvs, clock_off, ceilings_flat }
    }
}

/// A decoded network state in flat reusable buffers — the only mutable
/// state representation on the hot path.
#[derive(Debug, Clone)]
struct Scratch {
    locs: Vec<u16>,
    clocks: Vec<u32>,
}

impl Scratch {
    #[inline]
    fn copy_from(&mut self, src: &Scratch) {
        self.locs.copy_from_slice(&src.locs);
        self.clocks.copy_from_slice(&src.clocks);
    }
}

/// Reusable successor-generation buffers.
#[derive(Debug)]
struct SuccBufs {
    succ: Scratch,
    tmp: Vec<u32>,
}

/// Per-worker buffers: the decoded parent plus successor scratch.
#[derive(Debug)]
struct WorkBufs {
    parent: Scratch,
    work: SuccBufs,
}

/// Mutable exploration state shared across layers.
struct Search {
    table: IdTable,
    arena: StateArena,
    /// `parents[id] = (parent id, step from parent)`; the initial
    /// state's parent is [`NO_PARENT`].
    parents: Vec<(u32, CStep)>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    word: Vec<u64>,
}

/// Candidate successors produced by one parallel worker, in generation
/// order. `bad` (always last, if present) is a monitor violation that
/// aborted the worker's chunk.
#[derive(Default)]
struct CandBuf {
    words: Vec<u64>,
    meta: Vec<(u32, CStep)>,
    bad: Option<(u32, CStep)>,
}

/// The packed exploration engine, built per check call.
pub(crate) struct Engine<'n> {
    net: &'n Network,
    layout: PackedLayout,
    plan: Plan,
    /// Clock-activity table when [`Reduction::ClockActive`] is on and
    /// at least one clock is inactive somewhere; `None` otherwise.
    activity: Option<ClockActivity>,
}

impl<'n> Engine<'n> {
    pub(crate) fn new(net: &'n Network, pending_values: u64, reduction: Reduction) -> Self {
        let activity = match reduction {
            Reduction::None => None,
            Reduction::ClockActive => ClockActivity::new(net),
        };
        Engine {
            net,
            layout: PackedLayout::new(net, pending_values),
            plan: Plan::new(net),
            activity,
        }
    }

    fn initial_scratch(&self) -> Scratch {
        let locs = self.net.automata().iter().map(|a| a.initial().0 as u16).collect();
        let mut s = Scratch { locs, clocks: vec![0; self.plan.ceilings_flat.len()] };
        for i in 0..self.net.automata().len() {
            self.normalize_one(&mut s, i);
        }
        s
    }

    /// Normalizes automaton `i`'s inactive clocks (per its current
    /// location in `s`) to their ceiling — the canonical dead value.
    /// No-op without an activity table.
    #[inline]
    fn normalize_one(&self, s: &mut Scratch, i: usize) {
        let Some(act) = &self.activity else { return };
        let table = &act.active[i];
        let off = self.plan.clock_off[i];
        let nc = self.net.automata()[i].clocks().len();
        let base = usize::from(s.locs[i]) * nc;
        for c in 0..nc {
            if !table[base + c] {
                s.clocks[off + c] = self.plan.ceilings_flat[off + c];
            }
        }
    }

    fn bufs(&self) -> WorkBufs {
        let parent = self.initial_scratch();
        let work = SuccBufs { succ: parent.clone(), tmp: Vec::new() };
        WorkBufs { parent, work }
    }

    #[inline]
    fn flat_view<'a>(&'a self, s: &'a Scratch) -> StateView<'a> {
        StateView::flat(self.net, &s.locs, &s.clocks, &self.plan.clock_off)
    }

    /// Whether `e` of automaton `i` is enabled in `s` (guard holds and
    /// the target invariant survives the resets).
    fn enabled(&self, s: &Scratch, i: usize, e: &Edge, tmp: &mut Vec<u32>) -> bool {
        if usize::from(s.locs[i]) != e.from.0 {
            return false;
        }
        let a = &self.net.automata()[i];
        let off = self.plan.clock_off[i];
        let local = &s.clocks[off..off + a.clocks().len()];
        if !e.guard.eval(local) {
            return false;
        }
        let inv = &a.locations()[e.to.0].invariant;
        if e.resets.is_empty() {
            inv.eval(local)
        } else {
            tmp.clear();
            tmp.extend_from_slice(local);
            for r in &e.resets {
                tmp[r.0] = 0;
            }
            inv.eval(tmp)
        }
    }

    #[inline]
    fn patch(&self, dst: &mut Scratch, i: usize, e: &Edge) {
        dst.locs[i] = e.to.0 as u16;
        let off = self.plan.clock_off[i];
        for r in &e.resets {
            dst.clocks[off + r.0] = 0;
        }
    }

    fn delay_allowed(&self, s: &Scratch, tmp: &mut Vec<u32>) -> bool {
        for (i, a) in self.net.automata().iter().enumerate() {
            let loc = &a.locations()[usize::from(s.locs[i])];
            if loc.urgent {
                return false;
            }
            let off = self.plan.clock_off[i];
            let nc = a.clocks().len();
            tmp.clear();
            for (c, &v) in s.clocks[off..off + nc].iter().enumerate() {
                tmp.push((v + 1).min(self.plan.ceilings_flat[off + c]));
            }
            if !loc.invariant.eval(tmp) {
                return false;
            }
        }
        true
    }

    /// Generates the successors of `s` in the canonical order (internal
    /// edges, channel rendezvous, delay — matching the reference
    /// engine's [`Network::successors`]), calling `emit` for each.
    fn for_each_successor<B>(
        &self,
        s: &Scratch,
        work: &mut SuccBufs,
        mut emit: impl FnMut(CStep, &Scratch) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let autos = self.net.automata();
        for (i, edges) in self.plan.internal.iter().enumerate() {
            for &ei in edges {
                let e = &autos[i].edges()[usize::from(ei)];
                if self.enabled(s, i, e, &mut work.tmp) {
                    work.succ.copy_from(s);
                    self.patch(&mut work.succ, i, e);
                    self.normalize_one(&mut work.succ, i);
                    if let ControlFlow::Break(b) =
                        emit(CStep::Edge { aut: i as u16, edge: ei }, &work.succ)
                    {
                        return ControlFlow::Break(b);
                    }
                }
            }
        }
        for (i, sends) in self.plan.sends.iter().enumerate() {
            for &(ei, chan) in sends {
                let e = &autos[i].edges()[usize::from(ei)];
                if !self.enabled(s, i, e, &mut work.tmp) {
                    continue;
                }
                for (j, recv_edges) in self.plan.recvs[usize::from(chan)].iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    for &ej in recv_edges {
                        let e2 = &autos[j].edges()[usize::from(ej)];
                        if self.enabled(s, j, e2, &mut work.tmp) {
                            work.succ.copy_from(s);
                            self.patch(&mut work.succ, i, e);
                            self.patch(&mut work.succ, j, e2);
                            self.normalize_one(&mut work.succ, i);
                            self.normalize_one(&mut work.succ, j);
                            let step = CStep::Sync {
                                s_aut: i as u16,
                                s_edge: ei,
                                r_aut: j as u16,
                                r_edge: ej,
                            };
                            if let ControlFlow::Break(b) = emit(step, &work.succ) {
                                return ControlFlow::Break(b);
                            }
                        }
                    }
                }
            }
        }
        if self.delay_allowed(s, &mut work.tmp) {
            work.succ.copy_from(s);
            for (c, v) in work.succ.clocks.iter_mut().enumerate() {
                *v = (*v + 1).min(self.plan.ceilings_flat[c]);
            }
            if let ControlFlow::Break(b) = emit(CStep::Delay, &work.succ) {
                return ControlFlow::Break(b);
            }
        }
        ControlFlow::Continue(())
    }

    /// Expands a display [`Step`] from a compact one.
    fn step_of(&self, c: CStep) -> Step {
        let autos = self.net.automata();
        match c {
            CStep::Edge { aut, edge } => {
                let a = &autos[usize::from(aut)];
                Step::Edge {
                    automaton: a.name().to_owned(),
                    label: a.edges()[usize::from(edge)].label.clone(),
                }
            }
            CStep::Sync { s_aut, s_edge, r_aut, r_edge } => {
                let sender = &autos[usize::from(s_aut)];
                let receiver = &autos[usize::from(r_aut)];
                let Action::Send(channel) = &sender.edges()[usize::from(s_edge)].action else {
                    unreachable!("sync step's sender edge is not a send");
                };
                let _ = r_edge;
                Step::Sync {
                    channel: channel.clone(),
                    sender: sender.name().to_owned(),
                    receiver: receiver.name().to_owned(),
                }
            }
            CStep::Delay => Step::Delay,
        }
    }

    /// Rebuilds the shortest trace ending with `last` taken from state
    /// `cur`, by walking the dense parent map.
    fn reconstruct(&self, parents: &[(u32, CStep)], mut cur: u32, last: CStep) -> Trace {
        let mut steps = vec![self.step_of(last)];
        loop {
            let (p, s) = parents[cur as usize];
            if p == NO_PARENT {
                break;
            }
            steps.push(self.step_of(s));
            cur = p;
        }
        steps.reverse();
        Trace { steps }
    }

    /// Explores the reachable state space breadth-first under
    /// `monitor`, interning every distinct (state, obligation) pair.
    pub(crate) fn explore<M>(
        &self,
        max_states: usize,
        mode: ExploreMode,
        monitor: &M,
    ) -> (CheckOutcome, ExploreStats)
    where
        M: Fn(&StateView<'_>, Option<u32>) -> MonitorVerdict + Sync,
    {
        let w = self.layout.words;
        let mut stats = ExploreStats {
            states: 1,
            arena_bytes: 0,
            words_per_state: w,
            layers: 0,
            peak_layer: 0,
        };
        let init = self.initial_scratch();
        let init_pending = match monitor(&self.flat_view(&init), None) {
            MonitorVerdict::Bad => {
                return (
                    CheckOutcome::Violated { trace: Trace { steps: vec![] }, states: 1 },
                    stats,
                )
            }
            MonitorVerdict::Ok(p) => p,
        };
        let mut search = Search {
            table: IdTable::with_capacity(max_states),
            arena: StateArena::new(w),
            parents: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            word: vec![0u64; w],
        };
        self.layout.encode_flat(&init.locs, &init.clocks, init_pending, &mut search.word);
        match search.table.lookup_or_insert(&search.word, &mut search.arena, usize::MAX) {
            Lookup::Inserted(id) => debug_assert_eq!(id, 0),
            _ => unreachable!("initial state must intern as id 0"),
        }
        search.parents.push((NO_PARENT, CStep::Delay));
        search.frontier.push(0);

        let workers = match mode {
            ExploreMode::Serial => 1,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        };
        let par_min = match mode {
            ExploreMode::Parallel => 2,
            _ => AUTO_PAR_MIN_LAYER,
        };
        let mut bufs = self.bufs();
        while !search.frontier.is_empty() {
            stats.layers += 1;
            stats.peak_layer = stats.peak_layer.max(search.frontier.len());
            let flow = if workers > 1 && search.frontier.len() >= par_min {
                self.expand_parallel(&mut search, monitor, max_states, workers)
            } else {
                self.expand_serial(&mut search, &mut bufs, monitor, max_states)
            };
            stats.states = search.table.len();
            stats.arena_bytes = search.arena.bytes();
            if let ControlFlow::Break(out) = flow {
                return (out, stats);
            }
            std::mem::swap(&mut search.frontier, &mut search.next);
            search.next.clear();
        }
        (CheckOutcome::Holds { states: search.table.len() }, stats)
    }

    fn expand_serial<M>(
        &self,
        search: &mut Search,
        bufs: &mut WorkBufs,
        monitor: &M,
        max_states: usize,
    ) -> ControlFlow<CheckOutcome>
    where
        M: Fn(&StateView<'_>, Option<u32>) -> MonitorVerdict + Sync,
    {
        let Search { table, arena, parents, frontier, next, word } = search;
        for &pid in frontier.iter() {
            let pending = self.layout.decode_flat(
                arena.get(pid),
                &mut bufs.parent.locs,
                &mut bufs.parent.clocks,
            );
            let flow = self.for_each_successor(&bufs.parent, &mut bufs.work, |step, succ| {
                let aged = match step {
                    CStep::Delay => pending.map(|a| a + 1),
                    _ => pending,
                };
                match monitor(&self.flat_view(succ), aged) {
                    MonitorVerdict::Bad => ControlFlow::Break(CheckOutcome::Violated {
                        trace: self.reconstruct(parents, pid, step),
                        states: table.len(),
                    }),
                    MonitorVerdict::Ok(p) => {
                        self.layout.encode_flat(&succ.locs, &succ.clocks, p, word);
                        match table.lookup_or_insert(word, arena, max_states) {
                            Lookup::Found(_) => ControlFlow::Continue(()),
                            Lookup::Inserted(id) => {
                                parents.push((pid, step));
                                next.push(id);
                                ControlFlow::Continue(())
                            }
                            Lookup::OverBudget => {
                                ControlFlow::Break(CheckOutcome::Exhausted { budget: max_states })
                            }
                        }
                    }
                }
            });
            if flow.is_break() {
                return flow;
            }
        }
        ControlFlow::Continue(())
    }

    /// Expands one layer across worker threads. Workers only *read* the
    /// arena and produce candidate buffers; the merge loop below
    /// processes them in worker-index order, so interning order — and
    /// with it ids, verdicts, counts and traces — is identical to
    /// [`Self::expand_serial`].
    fn expand_parallel<M>(
        &self,
        search: &mut Search,
        monitor: &M,
        max_states: usize,
        workers: usize,
    ) -> ControlFlow<CheckOutcome>
    where
        M: Fn(&StateView<'_>, Option<u32>) -> MonitorVerdict + Sync,
    {
        let w = self.layout.words;
        let Search { table, arena, parents, frontier, next, .. } = search;
        let chunk = frontier.len().div_ceil(workers);
        let chunks: Vec<&[u32]> = frontier.chunks(chunk).collect();
        let arena_ref: &StateArena = arena;
        let cand_bufs = mcps_runtime::shard::run_shards(chunks, |ids: &[u32]| {
            let mut bufs = self.bufs();
            let mut word = vec![0u64; w];
            let mut out = CandBuf::default();
            for &pid in ids {
                let pending = self.layout.decode_flat(
                    arena_ref.get(pid),
                    &mut bufs.parent.locs,
                    &mut bufs.parent.clocks,
                );
                let flow = self.for_each_successor(&bufs.parent, &mut bufs.work, |step, succ| {
                    let aged = match step {
                        CStep::Delay => pending.map(|a| a + 1),
                        _ => pending,
                    };
                    match monitor(&self.flat_view(succ), aged) {
                        MonitorVerdict::Bad => {
                            out.bad = Some((pid, step));
                            ControlFlow::Break(())
                        }
                        MonitorVerdict::Ok(p) => {
                            self.layout.encode_flat(&succ.locs, &succ.clocks, p, &mut word);
                            out.words.extend_from_slice(&word);
                            out.meta.push((pid, step));
                            ControlFlow::Continue(())
                        }
                    }
                });
                if flow.is_break() {
                    break;
                }
            }
            out
        });
        for buf in &cand_bufs {
            for (k, &(pid, step)) in buf.meta.iter().enumerate() {
                let words = &buf.words[k * w..(k + 1) * w];
                match table.lookup_or_insert(words, arena, max_states) {
                    Lookup::Found(_) => {}
                    Lookup::Inserted(id) => {
                        parents.push((pid, step));
                        next.push(id);
                    }
                    Lookup::OverBudget => {
                        return ControlFlow::Break(CheckOutcome::Exhausted { budget: max_states })
                    }
                }
            }
            if let Some((pid, step)) = buf.bad {
                return ControlFlow::Break(CheckOutcome::Violated {
                    trace: self.reconstruct(parents, pid, step),
                    states: table.len(),
                });
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Action, Automaton, Guard};

    fn two_automata_net() -> Network {
        let mut a = Automaton::builder("a");
        let x = a.clock("x");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        a.invariant(l0, Guard::Le(x, 9));
        a.edge("go", l0, l1, Guard::Ge(x, 2), Action::Internal, vec![x]);
        let mut b = Automaton::builder("b");
        let y = b.clock("y");
        let m0 = b.location("M0");
        b.invariant(m0, Guard::Le(y, 3));
        b.edge("tick", m0, m0, Guard::Ge(y, 1), Action::Internal, vec![y]);
        Network::new(vec![a.build(), b.build()])
    }

    #[test]
    fn bit_rw_roundtrip_within_word() {
        let mut words = [0u64; 2];
        let f1 = Field { off: 3, bits: 7 };
        let f2 = Field { off: 10, bits: 13 };
        write_bits(&mut words, &f1, 100);
        write_bits(&mut words, &f2, 8000);
        assert_eq!(read_bits(&words, &f1), 100);
        assert_eq!(read_bits(&words, &f2), 8000);
    }

    #[test]
    fn bit_rw_roundtrip_across_word_boundary() {
        let mut words = [0u64; 2];
        let f = Field { off: 60, bits: 20 };
        write_bits(&mut words, &f, 0xABCDE);
        assert_eq!(read_bits(&words, &f), 0xABCDE);
        // Bits below the field stay untouched.
        let lo = Field { off: 0, bits: 60 };
        assert_eq!(read_bits(&words, &lo), 0);
    }

    #[test]
    fn zero_bit_fields_read_zero() {
        let words = [u64::MAX];
        let f = Field { off: 5, bits: 0 };
        assert_eq!(read_bits(&words, &f), 0);
    }

    #[test]
    fn layout_roundtrips_reachable_states() {
        let net = two_automata_net();
        let layout = net.packed_layout(Some(7));
        let mut stack = vec![net.initial_state()];
        let mut seen = 0;
        while let Some(s) = stack.pop() {
            if seen > 200 {
                break;
            }
            seen += 1;
            for pending in [None, Some(0), Some(7)] {
                let words = layout.encode(&s, pending);
                assert_eq!(words.len(), layout.words_per_state());
                let (back, p) = layout.decode(&words);
                assert_eq!(back, s);
                assert_eq!(p, pending);
            }
            if seen < 40 {
                stack.extend(net.successors(&s).into_iter().map(|(_, n)| n));
            }
        }
    }

    #[test]
    fn layout_is_compact() {
        let net = two_automata_net();
        let layout = net.packed_layout(None);
        // 2 one-bit locations (a has 2 locs, b has 1 -> 0 bits), clocks
        // with ceilings 10 and 4 -> 4 + 3 bits, no pending.
        assert!(layout.bits_per_state() <= 10, "bits = {}", layout.bits_per_state());
        assert_eq!(layout.words_per_state(), 1);
    }

    #[test]
    fn arena_and_table_intern_distinct_states() {
        let mut arena = StateArena::new(1);
        let mut table = IdTable::with_capacity(0);
        for v in 0..5000u64 {
            match table.lookup_or_insert(&[v], &mut arena, usize::MAX) {
                Lookup::Inserted(id) => assert_eq!(u64::from(id), v),
                _ => panic!("fresh state must insert"),
            }
        }
        for v in 0..5000u64 {
            match table.lookup_or_insert(&[v], &mut arena, usize::MAX) {
                Lookup::Found(id) => assert_eq!(u64::from(id), v),
                _ => panic!("seen state must be found"),
            }
        }
        assert_eq!(table.len(), 5000);
        assert_eq!(arena.bytes(), 5000 * 8);
    }

    #[test]
    fn table_respects_budget() {
        let mut arena = StateArena::new(1);
        let mut table = IdTable::with_capacity(0);
        for v in 0..3u64 {
            assert!(matches!(table.lookup_or_insert(&[v], &mut arena, 3), Lookup::Inserted(_)));
        }
        assert!(matches!(table.lookup_or_insert(&[99], &mut arena, 3), Lookup::OverBudget));
        // Existing states still found at budget.
        assert!(matches!(table.lookup_or_insert(&[1], &mut arena, 3), Lookup::Found(1)));
    }
}
