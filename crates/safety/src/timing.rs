//! The failover timing contract, shared by the implementation and the
//! verification models.
//!
//! These constants define the supervisor/pump failover protocol's
//! time base: heartbeat and checkpoint cadence, the standby's
//! missed-checkpoint promotion threshold, and the pump's device-local
//! fail-safe deadlines. `mcps-core` derives its `SimDuration` timers
//! from them and `models::failover` builds its integer-clock automata
//! from them, so the model checker and the runtime verify/execute the
//! *same* protocol by construction. A conformance test on each side
//! asserts the derivation (see `sans_io.rs` / `actors.rs` tests and
//! [`crate::models::failover`]).
//!
//! All values are whole seconds (the model's clock unit).

/// Primary → pump heartbeat period.
pub const HEARTBEAT_SECS: u32 = 5;

/// Primary → standby checkpoint replication period.
pub const CHECKPOINT_SECS: u32 = 2;

/// Checkpoints the standby must miss before it promotes itself.
pub const MISSED_CHECKPOINT_LIMIT: u32 = 5;

/// Checkpoint silence (strictly exceeded) that triggers promotion:
/// [`CHECKPOINT_SECS`] × [`MISSED_CHECKPOINT_LIMIT`].
pub const PROMOTION_SILENCE_SECS: u32 = CHECKPOINT_SECS * MISSED_CHECKPOINT_LIMIT;

/// Supervision silence at which the pump latches its local fail-safe
/// and drops to basal-only delivery.
pub const LOCAL_FAILSAFE_DEADLINE_SECS: u32 = 15;

/// Heartbeat-ack gap at or above which the supervisor proactively
/// resumes a pump (it may have latched its local fail-safe meanwhile).
pub const FAILSAFE_RELEASE_GAP_SECS: u32 = 15;

/// Clean sensor data required before the supervisor exits degraded
/// mode.
pub const DEGRADED_EXIT_HYSTERESIS_SECS: u32 = 15;

/// Worst-case *clean* failover latency: the primary may die up to one
/// heartbeat period after it last fed the pump's watchdog, and the
/// standby needs checkpoint silence *strictly greater* than
/// [`PROMOTION_SILENCE_SECS`] (one extra second at its 1 Hz tick
/// granularity) before it promotes.
///
/// Note this is **16 s > [`LOCAL_FAILSAFE_DEADLINE_SECS`] (15 s)**: a
/// maximally unlucky clean failover can transiently latch the pump's
/// fail-safe before the promoted standby's first heartbeat lands. That
/// is by design — the pump prefers basal-only over trusting a silent
/// control plane — and the latch is bounded: the freshly promoted
/// standby heartbeats immediately and releases the pump on the first
/// ack (`failovers > 0` ⇒ `ResumePump`). The model checker verifies
/// the bound ([`crate::models::failover`]'s promotion-liveness
/// property) and `supervisor::sans_io` pins the transient-latch
/// schedule as a regression test.
pub const WORST_CLEAN_FAILOVER_SECS: u32 = HEARTBEAT_SECS + PROMOTION_SILENCE_SECS + 1;

// The orderings the protocol's safety argument relies on, enforced at
// compile time. If a future tuning breaks one of these, the failover
// analysis in the module docs (and DESIGN.md E13) must be revisited,
// not just the constant.
//
// Promotion must be detectable before the pump gives up on supervision
// entirely (silence threshold < failsafe deadline).
const _: () = assert!(PROMOTION_SILENCE_SECS < LOCAL_FAILSAFE_DEADLINE_SECS);
// Several heartbeats fit in one release gap, so a live pair never
// spuriously triggers the proactive resume path.
const _: () = assert!(FAILSAFE_RELEASE_GAP_SECS >= 2 * HEARTBEAT_SECS);
// Checkpoints are strictly denser than heartbeats: the standby learns
// of primary death no later than the pump does.
const _: () = assert!(CHECKPOINT_SECS < HEARTBEAT_SECS);
// The documented worst case really does exceed the deadline — the
// transient-latch regression tests depend on it.
const _: () = assert!(WORST_CLEAN_FAILOVER_SECS > LOCAL_FAILSAFE_DEADLINE_SECS);
