//! Conformance tests: the packed-state engine must be observationally
//! identical to the retained first-generation (reference) engine on the
//! E5 verification models — same verdicts, same state counts, same
//! counterexample traces — and the layer-parallel scheduler must be
//! bit-identical to serial exploration.

use mcps_safety::models::{
    check_pca_variant_reference, check_pca_variant_stats, pca_model, PcaModelVariant,
};
use mcps_safety::pack::ExploreMode;
use mcps_safety::CheckOutcome;

const BUDGET: usize = 2_000_000;

/// Every E5 variant (correct designs and seeded mutants): full
/// `CheckOutcome` equality between the packed engine and the reference
/// engine, in every exploration mode.
#[test]
fn e5_variants_match_reference_in_all_modes() {
    for variant in PcaModelVariant::ALL {
        let reference = check_pca_variant_reference(variant, BUDGET);
        for mode in [ExploreMode::Serial, ExploreMode::Parallel, ExploreMode::Auto] {
            let (packed, stats) = check_pca_variant_stats(variant, BUDGET, mode);
            assert_eq!(
                reference, packed,
                "{variant:?} in {mode:?} diverged from the reference engine"
            );
            assert!(stats.states > 0, "{variant:?}: no states interned");
            assert_eq!(
                stats.arena_bytes,
                stats.states * stats.words_per_state * 8,
                "{variant:?}: arena size inconsistent with state count"
            );
        }
    }
}

/// The mutants' counterexamples found by the packed engine replay as
/// genuine behaviours ending in a violation-relevant state.
#[test]
fn e5_mutant_counterexamples_replay() {
    for variant in PcaModelVariant::ALL.into_iter().filter(|v| !v.expected_safe()) {
        let (out, _) = check_pca_variant_stats(variant, BUDGET, ExploreMode::Auto);
        let trace = out.trace().unwrap_or_else(|| panic!("{variant:?} should be violated"));
        let net = pca_model(variant);
        assert!(net.replay(trace).is_some(), "{variant:?}: counterexample does not replay");
    }
}

/// Serial and parallel exploration agree bit-for-bit on verdicts,
/// traces and state counts — including under a budget that exhausts
/// mid-search, where insertion order determines the cutoff point.
#[test]
fn serial_and_parallel_bit_identical_under_exhaustion() {
    for variant in PcaModelVariant::ALL {
        for budget in [100, 5_000, 100_000] {
            let net = pca_model(variant);
            let check = |mode| {
                net.check_bounded_response_in(
                    |v| v.in_location("monitor", "Breached"),
                    |v| v.in_location("pump", "Stopped"),
                    variant.deadline(),
                    budget,
                    mode,
                )
            };
            let serial = check(ExploreMode::Serial);
            let parallel = check(ExploreMode::Parallel);
            assert_eq!(serial, parallel, "{variant:?} budget {budget}: modes diverged");
        }
    }
}

/// The safe designs still verify and the state counts are stable —
/// a regression fence for the exploration semantics (a changed count
/// means the successor relation or dedup changed).
#[test]
fn verdicts_and_state_counts_are_stable() {
    for variant in PcaModelVariant::ALL {
        let (out, stats) = check_pca_variant_stats(variant, BUDGET, ExploreMode::Auto);
        assert_eq!(out.holds(), variant.expected_safe(), "{variant:?}: verdict flipped ({out:?})");
        match out {
            CheckOutcome::Holds { states } | CheckOutcome::Violated { states, .. } => {
                assert_eq!(states, stats.states, "{variant:?}: outcome/stats state mismatch");
            }
            CheckOutcome::Exhausted { budget } => {
                panic!("{variant:?}: exhausted at {budget} — raise BUDGET")
            }
        }
    }
}
