//! Conformance tests: the packed-state engine must be observationally
//! identical to the retained first-generation (reference) engine on the
//! E5 verification models and the E13 failover models — same verdicts,
//! same state counts, same counterexample traces — the layer-parallel
//! scheduler must be bit-identical to serial exploration, and the
//! clock-activity reduction must preserve every verdict while shrinking
//! the explored space.

use mcps_safety::models::{
    check_failover_variant_reference, check_failover_variant_stats, check_pca_variant_reference,
    check_pca_variant_stats, failover_model, pca_model, FailoverModelVariant, PcaModelVariant,
};
use mcps_safety::pack::{ExploreMode, Reduction};
use mcps_safety::CheckOutcome;

const BUDGET: usize = 2_000_000;
const FAILOVER_BUDGET: usize = 8_000_000;

/// The failover variants cheap enough for the *unreduced* space to be
/// explored by the debug-mode reference engine. `SplitBrain` is the
/// outlier (2.35M unreduced states — tens of seconds even in release);
/// it joins the lockstep loops only in release runs (ci runs this suite
/// in release as well), and its reduced check is covered by the
/// `mcps-safety` unit tests in every profile.
fn lockstep_variants() -> Vec<FailoverModelVariant> {
    FailoverModelVariant::ALL
        .into_iter()
        .filter(|v| cfg!(not(debug_assertions)) || *v != FailoverModelVariant::SplitBrain)
        .collect()
}

/// Every E5 variant (correct designs and seeded mutants): full
/// `CheckOutcome` equality between the packed engine and the reference
/// engine, in every exploration mode.
#[test]
fn e5_variants_match_reference_in_all_modes() {
    for variant in PcaModelVariant::ALL {
        let reference = check_pca_variant_reference(variant, BUDGET);
        for mode in [ExploreMode::Serial, ExploreMode::Parallel, ExploreMode::Auto] {
            let (packed, stats) = check_pca_variant_stats(variant, BUDGET, mode);
            assert_eq!(
                reference, packed,
                "{variant:?} in {mode:?} diverged from the reference engine"
            );
            assert!(stats.states > 0, "{variant:?}: no states interned");
            assert_eq!(
                stats.arena_bytes,
                stats.states * stats.words_per_state * 8,
                "{variant:?}: arena size inconsistent with state count"
            );
        }
    }
}

/// The mutants' counterexamples found by the packed engine replay as
/// genuine behaviours ending in a violation-relevant state.
#[test]
fn e5_mutant_counterexamples_replay() {
    for variant in PcaModelVariant::ALL.into_iter().filter(|v| !v.expected_safe()) {
        let (out, _) = check_pca_variant_stats(variant, BUDGET, ExploreMode::Auto);
        let trace = out.trace().unwrap_or_else(|| panic!("{variant:?} should be violated"));
        let net = pca_model(variant);
        assert!(net.replay(trace).is_some(), "{variant:?}: counterexample does not replay");
    }
}

/// Serial and parallel exploration agree bit-for-bit on verdicts,
/// traces and state counts — including under a budget that exhausts
/// mid-search, where insertion order determines the cutoff point.
#[test]
fn serial_and_parallel_bit_identical_under_exhaustion() {
    for variant in PcaModelVariant::ALL {
        for budget in [100, 5_000, 100_000] {
            let net = pca_model(variant);
            let check = |mode| {
                net.check_bounded_response_in(
                    |v| v.in_location("monitor", "Breached"),
                    |v| v.in_location("pump", "Stopped"),
                    variant.deadline(),
                    budget,
                    mode,
                )
            };
            let serial = check(ExploreMode::Serial);
            let parallel = check(ExploreMode::Parallel);
            assert_eq!(serial, parallel, "{variant:?} budget {budget}: modes diverged");
        }
    }
}

/// Every E13 failover variant: with the reduction off, full
/// `CheckOutcome` equality (verdict, trace, state count) between the
/// packed engine and the reference engine, in every exploration mode.
#[test]
fn failover_variants_match_reference_in_all_modes() {
    for variant in lockstep_variants() {
        let reference = check_failover_variant_reference(variant, FAILOVER_BUDGET);
        for mode in [ExploreMode::Serial, ExploreMode::Parallel, ExploreMode::Auto] {
            let (packed, stats) =
                check_failover_variant_stats(variant, FAILOVER_BUDGET, mode, Reduction::None);
            assert_eq!(
                reference, packed,
                "{variant:?} in {mode:?} diverged from the reference engine"
            );
            assert!(stats.states > 0, "{variant:?}: no states interned");
        }
    }
}

/// The clock-activity reduction is an equivalence, not an
/// approximation: every failover verdict is identical with the
/// reduction on and off, violated variants' reduced counterexamples
/// replay as genuine behaviours of the *unreduced* network, and the
/// reduced space is strictly smaller on every variant.
#[test]
fn failover_reduction_preserves_verdicts_and_shrinks_the_space() {
    for variant in lockstep_variants() {
        let (full, full_stats) = check_failover_variant_stats(
            variant,
            FAILOVER_BUDGET,
            ExploreMode::Auto,
            Reduction::None,
        );
        let (red, red_stats) = check_failover_variant_stats(
            variant,
            FAILOVER_BUDGET,
            ExploreMode::Auto,
            Reduction::ClockActive,
        );
        assert_eq!(full.holds(), red.holds(), "{variant:?}: reduction changed the verdict");
        if let Some(trace) = red.trace() {
            let net = failover_model(variant);
            assert!(
                net.replay(trace).is_some(),
                "{variant:?}: reduced counterexample does not replay on the unreduced model"
            );
        }
        assert!(
            red_stats.states < full_stats.states,
            "{variant:?}: reduction did not shrink the space ({} vs {})",
            red_stats.states,
            full_stats.states
        );
    }
}

/// Reduced exploration stays bit-identical between serial and parallel
/// scheduling — including under budgets that exhaust mid-search, where
/// insertion order determines the cutoff point.
#[test]
fn failover_reduction_modes_agree_under_exhaustion() {
    for variant in [FailoverModelVariant::PrimaryCrash, FailoverModelVariant::UnfencedPump] {
        for budget in [100, 5_000, 100_000] {
            let serial = check_failover_variant_stats(
                variant,
                budget,
                ExploreMode::Serial,
                Reduction::ClockActive,
            );
            let parallel = check_failover_variant_stats(
                variant,
                budget,
                ExploreMode::Parallel,
                Reduction::ClockActive,
            );
            assert_eq!(serial.0, parallel.0, "{variant:?} budget {budget}: modes diverged");
        }
    }
}

/// The safe designs still verify and the state counts are stable —
/// a regression fence for the exploration semantics (a changed count
/// means the successor relation or dedup changed).
#[test]
fn verdicts_and_state_counts_are_stable() {
    for variant in PcaModelVariant::ALL {
        let (out, stats) = check_pca_variant_stats(variant, BUDGET, ExploreMode::Auto);
        assert_eq!(out.holds(), variant.expected_safe(), "{variant:?}: verdict flipped ({out:?})");
        match out {
            CheckOutcome::Holds { states } | CheckOutcome::Violated { states, .. } => {
                assert_eq!(states, stats.states, "{variant:?}: outcome/stats state mismatch");
            }
            CheckOutcome::Exhausted { budget } => {
                panic!("{variant:?}: exhausted at {budget} — raise BUDGET")
            }
        }
    }
}
