//! Property-based tests of the model checker on randomly generated
//! timed-automata networks.

use mcps_safety::automaton::{Action, Automaton, Guard, LocId};
use mcps_safety::checker::{CheckOutcome, Network};
use mcps_safety::pack::ExploreMode;
use proptest::prelude::*;

/// Strategy: a random automaton with `n_locs` locations, one clock,
/// and random guarded internal edges (optionally one send/recv pair of
/// channels shared across the network).
fn arb_automaton(
    name: String,
    n_locs: usize,
    edges: Vec<(usize, usize, u32, bool)>,
    invariant_bound: Option<u32>,
) -> Automaton {
    let mut b = Automaton::builder(&name);
    let x = b.clock("x");
    let locs: Vec<LocId> = (0..n_locs).map(|i| b.location(&format!("L{i}"))).collect();
    if let Some(bound) = invariant_bound {
        b.invariant(locs[0], Guard::Le(x, bound));
    }
    for (i, (from, to, bound, reset)) in edges.into_iter().enumerate() {
        let from = locs[from % n_locs];
        let to = locs[to % n_locs];
        let resets = if reset { vec![x] } else { vec![] };
        b.edge(&format!("e{i}"), from, to, Guard::Ge(x, bound % 5), Action::Internal, resets);
    }
    b.build()
}

fn arb_network() -> impl Strategy<Value = Network> {
    let automaton = (
        2usize..5,
        proptest::collection::vec((0usize..5, 0usize..5, 0u32..5, any::<bool>()), 0..6),
        proptest::option::of(1u32..6),
    );
    proptest::collection::vec(automaton, 1..3).prop_map(|specs| {
        let automata = specs
            .into_iter()
            .enumerate()
            .map(|(i, (n_locs, edges, inv))| arb_automaton(format!("a{i}"), n_locs, edges, inv))
            .collect();
        Network::new(automata)
    })
}

/// Like [`arb_automaton`] but each edge may also be a send or receive
/// on one of two shared channels, so networks exercise rendezvous.
fn arb_sync_automaton(
    name: String,
    n_locs: usize,
    edges: Vec<(usize, usize, u32, bool, u8)>,
) -> Automaton {
    let mut b = Automaton::builder(&name);
    let x = b.clock("x");
    let locs: Vec<LocId> = (0..n_locs).map(|i| b.location(&format!("L{i}"))).collect();
    for (i, (from, to, bound, reset, act)) in edges.into_iter().enumerate() {
        let from = locs[from % n_locs];
        let to = locs[to % n_locs];
        let resets = if reset { vec![x] } else { vec![] };
        let action = match act % 5 {
            0 | 1 => Action::Internal,
            2 => Action::Send(format!("c{}", act % 2)),
            3 => Action::Recv(format!("c{}", act % 2)),
            _ => Action::Send("c0".into()),
        };
        b.edge(&format!("e{i}"), from, to, Guard::Ge(x, bound % 4), action, resets);
    }
    b.build()
}

/// A network of 2–3 automata with internal, send and receive edges.
fn arb_sync_network() -> impl Strategy<Value = Network> {
    let automaton = (
        2usize..4,
        proptest::collection::vec((0usize..4, 0usize..4, 0u32..4, any::<bool>(), 0u8..5), 1..5),
    );
    proptest::collection::vec(automaton, 2..4).prop_map(|specs| {
        let automata = specs
            .into_iter()
            .enumerate()
            .map(|(i, (n_locs, edges))| arb_sync_automaton(format!("a{i}"), n_locs, edges))
            .collect();
        Network::new(automata)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `false` is never reachable: the checker always returns Holds
    /// (or hits its budget) and never fabricates a violation.
    #[test]
    fn no_false_violations(net in arb_network()) {
        let out = net.check_safety(|_| false, 200_000);
        prop_assert!(!matches!(out, CheckOutcome::Violated { .. }), "{out:?}");
    }

    /// The checker is deterministic: two runs agree exactly.
    #[test]
    fn checker_is_deterministic(net in arb_network()) {
        let a = net.check_safety(|v| v.in_location("a0", "L1"), 200_000);
        let b = net.check_safety(|v| v.in_location("a0", "L1"), 200_000);
        prop_assert_eq!(a, b);
    }

    /// Every counterexample the checker returns replays as a genuine
    /// behaviour of the network, and its final state is actually bad.
    #[test]
    fn counterexamples_replay(net in arb_network()) {
        let bad = |v: &mcps_safety::checker::StateView<'_>| v.in_location("a0", "L1");
        if let CheckOutcome::Violated { trace, .. } = net.check_safety(bad, 200_000) {
            let end = net.replay(&trace).expect("trace must be executable");
            prop_assert!(bad(&net.view(&end)), "replayed end state is not bad");
        }
    }

    /// Reachability of a location is monotone in the exploration
    /// budget: if a violation is found with a small budget, it is also
    /// found with a larger one (and with the same shortest length).
    #[test]
    fn violations_stable_under_bigger_budget(net in arb_network()) {
        let bad = |v: &mcps_safety::checker::StateView<'_>| v.in_location("a0", "L1");
        if let CheckOutcome::Violated { trace, .. } = net.check_safety(bad, 50_000) {
            match net.check_safety(bad, 500_000) {
                CheckOutcome::Violated { trace: bigger, .. } => {
                    prop_assert_eq!(trace.steps.len(), bigger.steps.len());
                }
                other => prop_assert!(false, "lost violation: {:?}", other),
            }
        }
    }

    /// Packed encode/decode is the identity on every reachable state,
    /// for every obligation age the layout admits.
    #[test]
    fn packed_encoding_roundtrips(net in arb_sync_network(), deadline in 0u32..7) {
        let layout = net.packed_layout(Some(deadline));
        let mut frontier = vec![net.initial_state()];
        let mut seen = 0usize;
        while let Some(s) = frontier.pop() {
            seen += 1;
            if seen > 64 {
                break;
            }
            for pending in (0..=deadline).map(Some).chain([None]) {
                let words = layout.encode(&s, pending);
                prop_assert_eq!(words.len(), layout.words_per_state());
                let (back, p) = layout.decode(&words);
                prop_assert_eq!(&back, &s);
                prop_assert_eq!(p, pending);
            }
            if seen < 32 {
                frontier.extend(net.successors(&s).into_iter().map(|(_, n)| n));
            }
        }
    }

    /// The packed engine agrees with the reference engine on verdict,
    /// state count and counterexample — full `CheckOutcome` equality —
    /// for plain safety checks on rendezvous-heavy random networks.
    #[test]
    fn packed_safety_matches_reference(net in arb_sync_network()) {
        let bad = |v: &mcps_safety::checker::StateView<'_>| v.in_location("a0", "L1");
        let reference = net.check_safety_reference(bad, 100_000);
        let packed = net.check_safety_in(bad, 100_000, ExploreMode::Serial);
        prop_assert_eq!(&reference, &packed);
        let parallel = net.check_safety_in(bad, 100_000, ExploreMode::Parallel);
        prop_assert_eq!(&reference, &parallel);
    }

    /// Same for bounded response, where the obligation age is part of
    /// the packed state.
    #[test]
    fn packed_bounded_response_matches_reference(net in arb_sync_network(), d in 0u32..5) {
        let p = |v: &mcps_safety::checker::StateView<'_>| v.in_location("a0", "L0");
        let q = |v: &mcps_safety::checker::StateView<'_>| v.in_location("a1", "L1");
        let reference = net.check_bounded_response_reference(p, q, d, 100_000);
        let packed = net.check_bounded_response_in(p, q, d, 100_000, ExploreMode::Serial);
        prop_assert_eq!(&reference, &packed);
        let parallel = net.check_bounded_response_in(p, q, d, 100_000, ExploreMode::Parallel);
        prop_assert_eq!(&reference, &parallel);
    }

    /// Budget exhaustion fires at exactly the same point in both
    /// engines — the packed engine must not intern more or fewer
    /// states before giving up.
    #[test]
    fn packed_exhaustion_matches_reference(net in arb_sync_network(), budget in 1usize..40) {
        let reference = net.check_safety_reference(|_| false, budget);
        let packed = net.check_safety_in(|_| false, budget, ExploreMode::Serial);
        prop_assert_eq!(&reference, &packed);
        let parallel = net.check_safety_in(|_| false, budget, ExploreMode::Parallel);
        prop_assert_eq!(&reference, &parallel);
    }

    /// Bounded response with an enormous deadline follows from plain
    /// unreachability: if Q's negation is unreachable-from-P never
    /// flagged at deadline 0, it can't be flagged at a huge deadline...
    /// concretely: deadline monotonicity — a property that holds at a
    /// small deadline also holds at any larger one.
    #[test]
    fn bounded_response_monotone_in_deadline(net in arb_network(), d in 0u32..6) {
        let p = |v: &mcps_safety::checker::StateView<'_>| v.in_location("a0", "L0");
        let q = |v: &mcps_safety::checker::StateView<'_>| v.in_location("a0", "L1");
        let small = net.check_bounded_response(p, q, d, 300_000);
        if small.holds() {
            let big = net.check_bounded_response(p, q, d + 3, 300_000);
            prop_assert!(
                !matches!(big, CheckOutcome::Violated { .. }),
                "holds at {d} but violated at {}: {:?}",
                d + 3,
                big
            );
        }
    }
}
