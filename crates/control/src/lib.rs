//! # mcps-control — closed-loop physiological control
//!
//! The autonomy pillar of the paper: supervisory algorithms that close
//! the loop between physiological monitoring and actuation.
//!
//! * [`interlock`] — the PCA safety-interlock supervisor (command and
//!   fail-safe ticket strategies, threshold or fusion detection).
//! * [`closed_loop`] — infusion controllers: open-loop fixed rate,
//!   target-controlled infusion (TCI), and TCI with respiratory-rate
//!   feedback.
//! * [`pid`] — the discrete PI(D) primitive with anti-windup.
//!
//! ## Example
//!
//! ```
//! use mcps_control::interlock::{InterlockConfig, PcaInterlock};
//! use mcps_patient::vitals::VitalKind;
//! use mcps_sim::time::SimTime;
//!
//! let mut supervisor = PcaInterlock::new(InterlockConfig::default());
//! supervisor.on_measurement(SimTime::from_secs(1), VitalKind::Spo2, 97.0);
//! supervisor.on_measurement(SimTime::from_secs(1), VitalKind::RespRate, 14.0);
//! let actions = supervisor.on_tick(SimTime::from_secs(1));
//! assert!(!actions.is_empty()); // healthy + fresh data ⇒ a ticket is granted
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_loop;
pub mod interlock;
pub mod pid;

pub use closed_loop::{
    FeedbackTciController, FixedRateController, InfusionController, TciController,
    MAX_RATE_MG_PER_H,
};
pub use interlock::{
    DenyReason, DetectorKind, InterlockAction, InterlockConfig, InterlockStrategy, PcaInterlock,
};
pub use pid::{Pid, PidConfig};
