//! Closed-loop drug-delivery controllers and the open-loop baseline.
//!
//! Experiment E6 compares three ways of running a continuous analgesic
//! infusion toward a target effect-site concentration:
//!
//! * [`FixedRateController`] — the open-loop clinical default: a
//!   weight-based constant rate, blind to the individual patient.
//! * [`TciController`] — target-controlled infusion: a *nominal* PK
//!   observer dead-reckons the effect-site concentration from the dose
//!   history and a bang-bang-with-taper law steers it to target. Still
//!   open loop with respect to the patient (model mismatch persists).
//! * [`FeedbackTciController`] — TCI plus a slow PI trim driven by the
//!   measured respiratory rate, closing the loop through the patient's
//!   actual physiology.
//!
//! All three emit an infusion rate in mg/h, clamped to a hard safety
//! ceiling; the experiment scores time-in-therapeutic-band of the
//! *true* effect-site concentration.

use crate::pid::{Pid, PidConfig};
use mcps_patient::pk::{PkModel, PkParams};
use serde::{Deserialize, Serialize};

/// Hard ceiling every controller respects, mg/h.
pub const MAX_RATE_MG_PER_H: f64 = 6.0;

/// A controller that produces an infusion rate each step.
pub trait InfusionController {
    /// One decision step. `dt_secs` since the last step; `measured_rr`
    /// is the latest respiratory-rate measurement if available.
    /// Returns the commanded rate, mg/h.
    fn step(&mut self, dt_secs: f64, measured_rr: Option<f64>) -> f64;

    /// Short display name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Open-loop weight-based fixed rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedRateController {
    rate_mg_per_h: f64,
}

impl FixedRateController {
    /// The standard prescription: 0.03 mg/kg/h.
    pub fn for_weight(weight_kg: f64) -> Self {
        FixedRateController { rate_mg_per_h: (0.03 * weight_kg).min(MAX_RATE_MG_PER_H) }
    }

    /// The constant rate.
    pub fn rate(&self) -> f64 {
        self.rate_mg_per_h
    }
}

impl InfusionController for FixedRateController {
    fn step(&mut self, _dt_secs: f64, _measured_rr: Option<f64>) -> f64 {
        self.rate_mg_per_h
    }

    fn name(&self) -> &'static str {
        "fixed-rate"
    }
}

/// Target-controlled infusion against a nominal PK observer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TciController {
    observer: PkModel,
    target_ce: f64,
}

impl TciController {
    /// Creates a TCI controller targeting `target_ce` (mg/L) using the
    /// *nominal* PK model for the given weight (the controller does not
    /// know the patient's true parameters).
    pub fn new(weight_kg: f64, target_ce: f64) -> Self {
        TciController { observer: PkModel::new(PkParams::for_weight_kg(weight_kg)), target_ce }
    }

    /// The observer's current effect-site estimate.
    pub fn estimated_ce(&self) -> f64 {
        self.observer.effect_site_conc()
    }

    /// The target effect-site concentration.
    pub fn target_ce(&self) -> f64 {
        self.target_ce
    }

    fn rate_for(&self, target: f64) -> f64 {
        // Proportional taper toward the target with a feedforward hold
        // term (the rate that sustains the target at steady state).
        let est = self.observer.effect_site_conc();
        let p = self.observer.params();
        let hold = target * p.k10 * p.v1 * 60.0; // mg/h to sustain target
        let error = target - est;
        let correction = 400.0 * error * p.v1 / 60.0; // aggressive taper
        (hold + correction).clamp(0.0, MAX_RATE_MG_PER_H)
    }
}

impl InfusionController for TciController {
    fn step(&mut self, dt_secs: f64, _measured_rr: Option<f64>) -> f64 {
        let rate = self.rate_for(self.target_ce);
        // Advance the observer under the commanded rate.
        self.observer.set_infusion_rate(rate / 60.0);
        self.observer.step(dt_secs);
        rate
    }

    fn name(&self) -> &'static str {
        "tci"
    }
}

/// TCI plus respiratory-rate feedback trim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackTciController {
    tci: TciController,
    trim: Pid,
    rr_floor: f64,
    /// Multiplicative target adjustment from feedback, bounded.
    target_scale: f64,
}

impl FeedbackTciController {
    /// Creates a feedback TCI controller. `rr_floor` is the respiratory
    /// rate the controller refuses to depress below (trim shrinks the
    /// target as RR approaches it).
    pub fn new(weight_kg: f64, target_ce: f64, rr_floor: f64) -> Self {
        FeedbackTciController {
            tci: TciController::new(weight_kg, target_ce),
            // The trim only ever *reduces* the target: feedback is a
            // safety backstop, not a licence to exceed the prescription.
            trim: Pid::new(PidConfig {
                kp: 0.02,
                ki: 0.0005,
                kd: 0.0,
                out_min: -0.7,
                out_max: 0.0,
            }),
            rr_floor,
            target_scale: 1.0,
        }
    }

    /// The current effective (trimmed) target.
    pub fn effective_target(&self) -> f64 {
        self.tci.target_ce * self.target_scale
    }
}

impl InfusionController for FeedbackTciController {
    fn step(&mut self, dt_secs: f64, measured_rr: Option<f64>) -> f64 {
        if let Some(rr) = measured_rr {
            // Error > 0 when breathing comfortably above the floor + margin.
            let error = rr - (self.rr_floor + 3.0);
            let adj = self.trim.step(error, dt_secs);
            self.target_scale = (1.0 + adj).clamp(0.3, 1.0);
        }
        let target = self.tci.target_ce * self.target_scale;
        let rate = self.tci.rate_for(target);
        self.tci.observer.set_infusion_rate(rate / 60.0);
        self.tci.observer.step(dt_secs);
        rate
    }

    fn name(&self) -> &'static str {
        "tci+feedback"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_scales_with_weight_and_caps() {
        assert!((FixedRateController::for_weight(70.0).rate() - 2.1).abs() < 1e-9);
        assert_eq!(FixedRateController::for_weight(500.0).rate(), MAX_RATE_MG_PER_H);
        let mut c = FixedRateController::for_weight(70.0);
        assert_eq!(c.step(1.0, Some(14.0)), c.rate());
    }

    #[test]
    fn tci_reaches_its_own_target_on_nominal_patient() {
        let target = 0.06;
        let mut c = TciController::new(70.0, target);
        let mut plant = PkModel::new(PkParams::for_weight_kg(70.0));
        for _ in 0..(3 * 3600) {
            let rate = c.step(1.0, None);
            plant.set_infusion_rate(rate / 60.0);
            plant.step(1.0);
        }
        let ce = plant.effect_site_conc();
        assert!(
            (ce - target).abs() / target < 0.1,
            "nominal patient should reach target: ce={ce} target={target}"
        );
    }

    #[test]
    fn tci_respects_rate_ceiling() {
        let mut c = TciController::new(70.0, 0.5); // absurd target
        for _ in 0..100 {
            let r = c.step(1.0, None);
            assert!(r <= MAX_RATE_MG_PER_H + 1e-9);
        }
    }

    #[test]
    fn feedback_backs_off_when_rr_falls() {
        let mut c = FeedbackTciController::new(70.0, 0.08, 8.0);
        // Comfortable breathing: target stays near nominal.
        for _ in 0..600 {
            c.step(1.0, Some(14.0));
        }
        let scale_comfortable = c.target_scale;
        // Respiratory depression: the trim must shrink the target.
        for _ in 0..600 {
            c.step(1.0, Some(7.0));
        }
        assert!(
            c.target_scale < scale_comfortable - 0.1,
            "feedback should back off: {} → {}",
            scale_comfortable,
            c.target_scale
        );
        assert!(c.effective_target() < 0.08 * scale_comfortable);
    }

    #[test]
    fn feedback_scale_is_bounded() {
        let mut c = FeedbackTciController::new(70.0, 0.08, 8.0);
        for _ in 0..10_000 {
            c.step(1.0, Some(0.0));
        }
        assert!(c.target_scale >= 0.3);
        for _ in 0..10_000 {
            c.step(1.0, Some(40.0));
        }
        assert!(c.target_scale <= 1.0, "feedback must never raise the target");
    }

    #[test]
    fn controller_names_are_distinct() {
        let a = FixedRateController::for_weight(70.0);
        let b = TciController::new(70.0, 0.06);
        let c = FeedbackTciController::new(70.0, 0.06, 8.0);
        let names = [a.name(), b.name(), c.name()];
        assert_eq!(names.iter().collect::<std::collections::BTreeSet<_>>().len(), 3);
    }
}
