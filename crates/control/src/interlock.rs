//! The PCA safety-interlock supervisor algorithm.
//!
//! The paper's flagship closed-loop scenario: a supervisor watches the
//! pulse oximeter and capnograph and revokes the PCA pump's permission
//! to infuse when the patient shows respiratory depression — breaking
//! the overdose causal chain that the pump alone cannot see.
//!
//! Two enforcement strategies are implemented (the E4/E5 ablation):
//!
//! * **Command** — on danger, send an explicit `StopPump`; trusts the
//!   network to deliver it.
//! * **Ticket** — the pump only runs while it holds a short-lived
//!   permission ticket; the supervisor keeps granting tickets *while
//!   everything is provably fine* and simply stops granting on danger
//!   or stale data. Loss of connectivity fails safe by construction.
//!
//! The supervisor is a pure state machine: feed it measurements and
//! clock ticks, collect [`InterlockAction`]s to forward to the pump.

use mcps_alarms::fusion::FusionAlarm;
use mcps_alarms::plausibility::{FlatlineConfig, PlausibilityMonitor};
use mcps_alarms::threshold::ThresholdAlarm;
use mcps_alarms::trend::{DeteriorationTrend, TrendConfig};
use mcps_net::monitor::FreshnessMonitor;
use mcps_patient::vitals::VitalKind;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Enforcement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterlockStrategy {
    /// Explicit stop/resume commands.
    Command,
    /// Periodic permission tickets; silence fails safe.
    Ticket {
        /// How long each granted ticket remains valid.
        validity: SimDuration,
        /// How often a fresh ticket is granted while safe.
        period: SimDuration,
    },
}

/// Which detector decides "danger".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Single-parameter threshold rules (baseline).
    Threshold,
    /// Multi-parameter fusion (smart alarm).
    Fusion,
    /// Fusion plus slope-based early deterioration detection.
    FusionWithTrend,
}

/// Supervisor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterlockConfig {
    /// Enforcement strategy.
    pub strategy: InterlockStrategy,
    /// Danger detector.
    pub detector: DetectorKind,
    /// A vital stream older than this is *stale*; stale required data
    /// is treated as danger (fail-safe on silence).
    pub freshness_timeout: SimDuration,
    /// After danger clears, wait this long before resuming/regranting
    /// (hysteresis against flapping).
    pub resume_holdoff: SimDuration,
    /// The vital streams the interlock requires to consider the
    /// patient observable. SpO₂ and respiratory rate by default.
    pub required_streams: [Option<VitalKind>; 4],
    /// Enables flatline/plausibility screening: a required stream whose
    /// values are frozen (a stuck sensor republishing stale data with
    /// fresh timestamps) is treated like stale data. Off by default to
    /// keep the E8 ablation honest; the safe deployment turns it on.
    pub plausibility_check: bool,
}

impl Default for InterlockConfig {
    fn default() -> Self {
        InterlockConfig {
            strategy: InterlockStrategy::Ticket {
                validity: SimDuration::from_secs(15),
                period: SimDuration::from_secs(5),
            },
            detector: DetectorKind::Fusion,
            freshness_timeout: SimDuration::from_secs(10),
            resume_holdoff: SimDuration::from_mins(5),
            required_streams: [Some(VitalKind::Spo2), Some(VitalKind::RespRate), None, None],
            plausibility_check: false,
        }
    }
}

/// An action the supervisor wants delivered to the pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterlockAction {
    /// Halt infusion immediately.
    StopPump,
    /// Resume infusion.
    ResumePump,
    /// Grant a permission ticket of the given validity.
    GrantTicket {
        /// Ticket lifetime.
        validity: SimDuration,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Detector {
    Threshold(ThresholdAlarm),
    Fusion(FusionAlarm),
    FusionTrend(FusionAlarm, DeteriorationTrend),
}

impl Detector {
    fn observe(&mut self, now: SimTime, values: &BTreeMap<VitalKind, f64>) {
        match self {
            Detector::Threshold(t) => {
                let _ = t.observe(now, values);
            }
            Detector::Fusion(f) => {
                let _ = f.observe(now, values);
            }
            Detector::FusionTrend(f, trend) => {
                let _ = f.observe(now, values);
                for (&kind, &v) in values {
                    trend.observe(now, kind, v);
                }
            }
        }
    }

    fn danger(&self) -> bool {
        match self {
            Detector::Threshold(t) => t.any_active(),
            Detector::Fusion(f) => f.is_active(),
            Detector::FusionTrend(f, trend) => f.is_active() || trend.is_deteriorating(),
        }
    }
}

/// Why the interlock currently denies permission (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenyReason {
    /// Detector reports clinical danger.
    Danger,
    /// Required data is stale or absent.
    StaleData,
    /// Required data is implausible (stuck sensor).
    ImplausibleData,
    /// In the post-danger holdoff window.
    Holdoff,
}

/// The interlock supervisor state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaInterlock {
    config: InterlockConfig,
    detector: Detector,
    freshness: FreshnessMonitor,
    latest: BTreeMap<VitalKind, (SimTime, f64)>,
    plausibility: PlausibilityMonitor,
    pump_stopped: bool,
    danger_cleared_at: Option<SimTime>,
    last_grant: Option<SimTime>,
    last_command_sent: Option<SimTime>,
    stops_issued: u32,
    grants_issued: u64,
}

/// How often command-mode stop/resume orders are re-sent while their
/// condition persists (commands may be lost in the network; re-sending
/// converts loss into latency).
const COMMAND_RESEND: SimDuration = SimDuration::from_secs(2);

impl PcaInterlock {
    /// Creates a supervisor.
    pub fn new(config: InterlockConfig) -> Self {
        let detector = match config.detector {
            DetectorKind::Threshold => Detector::Threshold(ThresholdAlarm::pca_default()),
            DetectorKind::Fusion => Detector::Fusion(FusionAlarm::pca_default()),
            DetectorKind::FusionWithTrend => Detector::FusionTrend(
                FusionAlarm::pca_default(),
                DeteriorationTrend::new(TrendConfig::default()),
            ),
        };
        PcaInterlock {
            detector,
            freshness: FreshnessMonitor::new(config.freshness_timeout),
            latest: BTreeMap::new(),
            plausibility: PlausibilityMonitor::new(FlatlineConfig::default()),
            pump_stopped: false,
            danger_cleared_at: None,
            last_grant: None,
            last_command_sent: None,
            stops_issued: 0,
            grants_issued: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &InterlockConfig {
        &self.config
    }

    /// Records an arriving measurement.
    pub fn on_measurement(&mut self, now: SimTime, kind: VitalKind, value: f64) {
        self.freshness.observe(&kind.to_string(), now);
        self.latest.insert(kind, (now, value));
        if self.config.plausibility_check {
            self.plausibility.observe(now, kind, value);
        }
    }

    /// Whether any *required* stream is currently implausible (stuck).
    pub fn data_implausible(&self) -> bool {
        if !self.config.plausibility_check {
            return false;
        }
        let stuck = self.plausibility.implausible();
        self.config.required_streams.iter().flatten().any(|k| stuck.contains(k))
    }

    /// Whether any *required* stream is stale at `now`.
    pub fn data_stale(&self, now: SimTime) -> bool {
        self.config
            .required_streams
            .iter()
            .flatten()
            .any(|k| self.freshness.is_stale(&k.to_string(), now))
    }

    /// Current deny reason, if permission is being withheld.
    pub fn deny_reason(&self, now: SimTime) -> Option<DenyReason> {
        if self.detector.danger() {
            Some(DenyReason::Danger)
        } else if self.data_stale(now) {
            Some(DenyReason::StaleData)
        } else if self.data_implausible() {
            Some(DenyReason::ImplausibleData)
        } else if let Some(cleared) = self.danger_cleared_at {
            if now.saturating_since(cleared) < self.config.resume_holdoff {
                Some(DenyReason::Holdoff)
            } else {
                None
            }
        } else {
            None
        }
    }

    /// Periodic decision step; call at the supervisor's control rate
    /// (e.g. 1 Hz). Returns the actions to transmit to the pump.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<InterlockAction> {
        // Feed the detector only fresh values.
        let fresh: BTreeMap<VitalKind, f64> = self
            .latest
            .iter()
            .filter(|(_, (t, _))| now.saturating_since(*t) <= self.config.freshness_timeout)
            .map(|(k, (_, v))| (*k, *v))
            .collect();
        let was_danger = self.detector.danger();
        self.detector.observe(now, &fresh);
        let danger = self.detector.danger();
        if was_danger && !danger {
            self.danger_cleared_at = Some(now);
        }

        let deny = self.deny_reason(now);
        let mut actions = Vec::new();
        match self.config.strategy {
            InterlockStrategy::Command => match deny {
                Some(DenyReason::Danger | DenyReason::StaleData | DenyReason::ImplausibleData) => {
                    // Level-triggered: re-send the stop while the
                    // condition persists, so a lost packet only delays
                    // (rather than defeats) the interlock.
                    let due = self
                        .last_command_sent
                        .is_none_or(|t| now.saturating_since(t) >= COMMAND_RESEND);
                    if !self.pump_stopped {
                        self.stops_issued += 1;
                    }
                    if !self.pump_stopped || due {
                        self.pump_stopped = true;
                        self.last_command_sent = Some(now);
                        actions.push(InterlockAction::StopPump);
                    }
                }
                Some(DenyReason::Holdoff) => {}
                None => {
                    let due = self
                        .last_command_sent
                        .is_none_or(|t| now.saturating_since(t) >= COMMAND_RESEND);
                    if self.pump_stopped && due {
                        // Re-send resume as well; once the condition has
                        // been clear for a full holdoff + resend cycle we
                        // assume delivery (the pump also acks upstream).
                        self.last_command_sent = Some(now);
                        self.pump_stopped = false;
                        actions.push(InterlockAction::ResumePump);
                    }
                }
            },
            InterlockStrategy::Ticket { validity, period } => {
                if deny.is_none() {
                    let due = self.last_grant.is_none_or(|t| now.saturating_since(t) >= period);
                    if due {
                        self.last_grant = Some(now);
                        self.grants_issued += 1;
                        actions.push(InterlockAction::GrantTicket { validity });
                    }
                }
            }
        }
        actions
    }

    /// Stop commands issued so far (command strategy).
    pub fn stops_issued(&self) -> u32 {
        self.stops_issued
    }

    /// Tickets granted so far (ticket strategy).
    pub fn grants_issued(&self) -> u64 {
        self.grants_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn feed_healthy(il: &mut PcaInterlock, now: u64) {
        il.on_measurement(t(now), VitalKind::Spo2, 97.0);
        il.on_measurement(t(now), VitalKind::RespRate, 14.0);
        il.on_measurement(t(now), VitalKind::Etco2, 38.0);
        il.on_measurement(t(now), VitalKind::HeartRate, 72.0);
    }

    fn feed_depressed(il: &mut PcaInterlock, now: u64) {
        // Correlated respiratory depression.
        il.on_measurement(t(now), VitalKind::Spo2, 86.0);
        il.on_measurement(t(now), VitalKind::RespRate, 5.0);
        il.on_measurement(t(now), VitalKind::Etco2, 60.0);
        il.on_measurement(t(now), VitalKind::HeartRate, 80.0);
    }

    fn feed_gradual_depression(
        il: &mut PcaInterlock,
        start: u64,
        steps: u64,
    ) -> Vec<(u64, Vec<InterlockAction>)> {
        let mut out = Vec::new();
        for i in 0..steps {
            let k = i as f64 / steps as f64;
            let now = start + i;
            il.on_measurement(t(now), VitalKind::Spo2, 97.0 - 11.0 * k);
            il.on_measurement(t(now), VitalKind::RespRate, 14.0 - 9.0 * k);
            il.on_measurement(t(now), VitalKind::Etco2, 38.0 + 22.0 * k);
            il.on_measurement(t(now), VitalKind::HeartRate, 72.0);
            out.push((now, il.on_tick(t(now))));
        }
        out
    }

    #[test]
    fn ticket_mode_grants_while_healthy() {
        let mut il = PcaInterlock::new(InterlockConfig::default());
        let mut grants = 0;
        for s in 0..60 {
            feed_healthy(&mut il, s);
            for a in il.on_tick(t(s)) {
                if matches!(a, InterlockAction::GrantTicket { .. }) {
                    grants += 1;
                }
            }
        }
        // period 5 s over 60 s ⇒ ~12 grants.
        assert!((10..=13).contains(&grants), "grants={grants}");
    }

    #[test]
    fn ticket_mode_stops_granting_on_danger() {
        let mut il = PcaInterlock::new(InterlockConfig::default());
        for s in 0..20 {
            feed_healthy(&mut il, s);
            il.on_tick(t(s));
        }
        let actions = feed_gradual_depression(&mut il, 20, 120);
        let last_grant = actions
            .iter()
            .filter(|(_, a)| a.iter().any(|x| matches!(x, InterlockAction::GrantTicket { .. })))
            .map(|(s, _)| *s)
            .max()
            .unwrap();
        // Granting must cease once danger is detected (well before the end).
        assert!(last_grant < 130, "grants persisted to {last_grant}");
        assert_eq!(il.deny_reason(t(140)), Some(DenyReason::Danger));
    }

    #[test]
    fn ticket_mode_stops_granting_on_stale_data() {
        let mut il = PcaInterlock::new(InterlockConfig::default());
        for s in 0..10 {
            feed_healthy(&mut il, s);
            il.on_tick(t(s));
        }
        // Data stops arriving entirely (network partition).
        let mut grants_after_timeout = 0;
        for s in 10..60 {
            for a in il.on_tick(t(s)) {
                if matches!(a, InterlockAction::GrantTicket { .. }) && s > 21 {
                    grants_after_timeout += 1;
                }
            }
        }
        assert_eq!(grants_after_timeout, 0, "no grants on stale data");
        assert_eq!(il.deny_reason(t(30)), Some(DenyReason::StaleData));
    }

    #[test]
    fn command_mode_stops_on_danger_and_resumes_after_holdoff() {
        let cfg = InterlockConfig {
            strategy: InterlockStrategy::Command,
            resume_holdoff: SimDuration::from_secs(30),
            ..InterlockConfig::default()
        };
        let mut il = PcaInterlock::new(cfg);
        for s in 0..10 {
            feed_healthy(&mut il, s);
            il.on_tick(t(s));
        }
        // Sudden but *corroborated* deterioration.
        let mut stopped_at = None;
        for s in 10..200 {
            feed_depressed(&mut il, s);
            for a in il.on_tick(t(s)) {
                if a == InterlockAction::StopPump {
                    stopped_at = Some(s);
                }
            }
            if stopped_at.is_some() {
                break;
            }
        }
        let stopped_at = stopped_at.expect("must stop");
        // Recovery: healthy data again.
        let mut resumed_at = None;
        for s in stopped_at + 1..stopped_at + 300 {
            feed_healthy(&mut il, s);
            for a in il.on_tick(t(s)) {
                if a == InterlockAction::ResumePump {
                    resumed_at = Some(s);
                }
            }
            if resumed_at.is_some() {
                break;
            }
        }
        let resumed_at = resumed_at.expect("must resume eventually");
        assert!(resumed_at > stopped_at + 30, "holdoff respected: {stopped_at} → {resumed_at}");
        assert_eq!(il.stops_issued(), 1);
    }

    #[test]
    fn command_mode_stops_on_silence() {
        let cfg =
            InterlockConfig { strategy: InterlockStrategy::Command, ..InterlockConfig::default() };
        let mut il = PcaInterlock::new(cfg);
        for s in 0..5 {
            feed_healthy(&mut il, s);
            il.on_tick(t(s));
        }
        let mut stop = false;
        for s in 5..40 {
            stop |= il.on_tick(t(s)).contains(&InterlockAction::StopPump);
        }
        assert!(stop, "silence must stop the pump in command mode too");
    }

    #[test]
    fn never_grants_before_first_data() {
        let mut il = PcaInterlock::new(InterlockConfig::default());
        for s in 0..30 {
            assert!(il.on_tick(t(s)).is_empty(), "no data ⇒ no permission");
        }
    }

    #[test]
    fn plausibility_check_catches_stuck_sensor() {
        let cfg = InterlockConfig { plausibility_check: true, ..InterlockConfig::default() };
        let mut il = PcaInterlock::new(cfg);
        // Healthy, *varying* data: grants flow.
        for s in 0..40 {
            il.on_measurement(t(s), VitalKind::Spo2, 96.0 + (s % 3) as f64 * 0.5);
            il.on_measurement(t(s), VitalKind::RespRate, 13.0 + (s % 2) as f64);
            il.on_tick(t(s));
        }
        assert_eq!(il.deny_reason(t(39)), None);
        // The sensor freezes: identical values keep arriving with
        // fresh timestamps (so freshness stays green).
        let mut granted_after_detect = 0;
        for s in 40..120 {
            il.on_measurement(t(s), VitalKind::Spo2, 96.5);
            il.on_measurement(t(s), VitalKind::RespRate, 13.0);
            for a in il.on_tick(t(s)) {
                if matches!(a, InterlockAction::GrantTicket { .. }) && s > 80 {
                    granted_after_detect += 1;
                }
            }
        }
        assert!(!il.data_stale(t(119)), "freshness alone cannot see this fault");
        assert_eq!(il.deny_reason(t(119)), Some(DenyReason::ImplausibleData));
        assert_eq!(granted_after_detect, 0, "no grants once the flatline is detected");
    }

    #[test]
    fn plausibility_check_off_misses_stuck_sensor() {
        let mut il = PcaInterlock::new(InterlockConfig::default());
        for s in 0..120 {
            il.on_measurement(t(s), VitalKind::Spo2, 96.5);
            il.on_measurement(t(s), VitalKind::RespRate, 13.0);
            il.on_tick(t(s));
        }
        assert_eq!(il.deny_reason(t(119)), None, "the documented gap when screening is off");
    }

    #[test]
    fn trend_detector_stops_earlier_on_gradual_deterioration() {
        let run = |detector: DetectorKind| -> Option<u64> {
            let cfg = InterlockConfig { detector, ..InterlockConfig::default() };
            let mut il = PcaInterlock::new(cfg);
            for s in 0..30 {
                feed_healthy(&mut il, s);
                il.on_tick(t(s));
            }
            // Slow correlated slide over 10 minutes.
            for s in 30..630u64 {
                let k = (s - 30) as f64 / 600.0;
                il.on_measurement(t(s), VitalKind::Spo2, 97.0 - 9.0 * k);
                il.on_measurement(t(s), VitalKind::RespRate, 14.0 - 8.0 * k);
                il.on_measurement(t(s), VitalKind::Etco2, 38.0 + 22.0 * k);
                il.on_measurement(t(s), VitalKind::HeartRate, 72.0);
                il.on_tick(t(s));
                if il.deny_reason(t(s)) == Some(DenyReason::Danger) {
                    return Some(s);
                }
            }
            None
        };
        let fusion_at = run(DetectorKind::Fusion).expect("fusion must eventually detect");
        let trend_at = run(DetectorKind::FusionWithTrend).expect("trend must detect");
        assert!(
            trend_at + 30 < fusion_at,
            "trend should lead by >=30s: trend {trend_at}s vs fusion {fusion_at}s"
        );
    }

    #[test]
    fn threshold_detector_variant_works() {
        let cfg =
            InterlockConfig { detector: DetectorKind::Threshold, ..InterlockConfig::default() };
        let mut il = PcaInterlock::new(cfg);
        for s in 0..10 {
            feed_healthy(&mut il, s);
            il.on_tick(t(s));
        }
        for s in 10..20 {
            feed_depressed(&mut il, s);
            il.on_tick(t(s));
        }
        assert_eq!(il.deny_reason(t(20)), Some(DenyReason::Danger));
    }
}
