//! A discrete PI(D) controller with output clamping and anti-windup.

use serde::{Deserialize, Serialize};

/// PID gains and output limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per second).
    pub ki: f64,
    /// Derivative gain (seconds).
    pub kd: f64,
    /// Minimum output.
    pub out_min: f64,
    /// Maximum output.
    pub out_max: f64,
}

impl PidConfig {
    /// Validates gains and limits.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.out_min.is_finite() && self.out_max.is_finite() && self.out_min < self.out_max) {
            return Err(format!("output limits invalid: [{}, {}]", self.out_min, self.out_max));
        }
        for (n, v) in [("kp", self.kp), ("ki", self.ki), ("kd", self.kd)] {
            if !v.is_finite() {
                return Err(format!("gain {n} must be finite, got {v}"));
            }
        }
        Ok(())
    }
}

/// The controller state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a controller at rest.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`PidConfig::validate`].
    pub fn new(config: PidConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid PID config: {e}");
        }
        Pid { config, integral: 0.0, last_error: None }
    }

    /// The configuration.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// One control step: `error = setpoint − measurement`, `dt_secs`
    /// since the previous step. Returns the clamped output.
    pub fn step(&mut self, error: f64, dt_secs: f64) -> f64 {
        debug_assert!(dt_secs > 0.0);
        let p = self.config.kp * error;
        let d = match self.last_error {
            Some(prev) => self.config.kd * (error - prev) / dt_secs,
            None => 0.0,
        };
        self.last_error = Some(error);
        // Tentative integral; wound back if the output saturates in the
        // same direction (clamping anti-windup).
        let tentative_integral = self.integral + error * dt_secs;
        let unclamped = p + self.config.ki * tentative_integral + d;
        let out = unclamped.clamp(self.config.out_min, self.config.out_max);
        let saturated_same_direction = (unclamped > self.config.out_max && error > 0.0)
            || (unclamped < self.config.out_min && error < 0.0);
        if !saturated_same_direction {
            self.integral = tentative_integral;
        }
        out
    }

    /// Resets dynamic state (integral and derivative memory).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// The accumulated integral term (diagnostic).
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PidConfig {
        PidConfig { kp: 2.0, ki: 0.5, kd: 0.1, out_min: -10.0, out_max: 10.0 }
    }

    #[test]
    fn proportional_action() {
        let mut pid = Pid::new(PidConfig { ki: 0.0, kd: 0.0, ..config() });
        assert!((pid.step(1.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((pid.step(-2.0, 1.0) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = Pid::new(PidConfig { kp: 0.0, kd: 0.0, ..config() });
        let o1 = pid.step(1.0, 1.0);
        let o2 = pid.step(1.0, 1.0);
        assert!(o2 > o1, "integral should grow: {o1} {o2}");
    }

    #[test]
    fn derivative_damps_change() {
        let mut pid = Pid::new(PidConfig { kp: 0.0, ki: 0.0, kd: 1.0, ..config() });
        pid.step(0.0, 1.0);
        let out = pid.step(2.0, 1.0);
        assert!((out - 2.0).abs() < 1e-12, "d = (2-0)/1 * kd");
    }

    #[test]
    fn output_clamped_and_antiwindup_holds() {
        let mut pid = Pid::new(PidConfig { kp: 0.0, ki: 1.0, kd: 0.0, ..config() });
        // Large persistent error: output saturates at 10.
        for _ in 0..100 {
            assert!(pid.step(100.0, 1.0) <= 10.0);
        }
        // Integral must not have wound far past the saturation point:
        // when the error flips, recovery is quick.
        let mut steps_to_recover = 0;
        loop {
            let out = pid.step(-100.0, 1.0);
            steps_to_recover += 1;
            if out <= 0.0 || steps_to_recover > 10 {
                break;
            }
        }
        assert!(steps_to_recover <= 2, "anti-windup failed: {steps_to_recover} steps");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(config());
        pid.step(5.0, 1.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        let out = pid.step(1.0, 1.0);
        // No derivative kick after reset.
        assert!((out - (2.0 + 0.5)).abs() < 1e-9, "got {out}");
    }

    #[test]
    #[should_panic(expected = "invalid PID config")]
    fn bad_limits_panic() {
        let _ = Pid::new(PidConfig { out_min: 1.0, out_max: 1.0, ..config() });
    }
}
