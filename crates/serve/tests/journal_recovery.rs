//! Journal crash-replay sweep: a `kill -9` can land mid-`write`, so
//! the WAL must recover cleanly from a segment truncated at *any* byte
//! offset of its last record — never panic, never serve a damaged
//! checkpoint, always fall back to the last intact one.

use mcps_core::supervisor::CheckpointState;
use mcps_serve::journal::{Journal, RECORD_HEADER_LEN};
use std::fs;
use std::path::PathBuf;

fn ckpt(epoch: u64) -> CheckpointState {
    CheckpointState {
        epoch,
        next_command_id: 100 + epoch,
        degraded: epoch.is_multiple_of(2),
        stop_unconfirmed: false,
        inflight_ids: vec![epoch, epoch + 1],
        last_data: Vec::new(),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcps-jrec-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Byte offsets where each record starts, plus the total length.
fn record_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut pos = 0;
    while pos + RECORD_HEADER_LEN <= bytes.len() {
        offsets.push(pos);
        let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
        pos += RECORD_HEADER_LEN + len;
    }
    assert_eq!(pos, bytes.len(), "segment did not parse into whole records");
    offsets
}

#[test]
fn truncation_at_every_byte_of_the_last_record_recovers_cleanly() {
    // Build a segment holding three checkpoints.
    let dir = fresh_dir("sweep");
    let base = dir.join("ckpt");
    let segment = {
        let (mut journal, _) = Journal::open(&base).unwrap();
        for e in 1..=3 {
            journal.append(&ckpt(e)).unwrap();
        }
        journal.current_segment()
    };
    let bytes = fs::read(&segment).unwrap();
    let offsets = record_offsets(&bytes);
    assert_eq!(offsets.len(), 3);
    let last_start = offsets[2];

    // Sweep: cut the file at every length from "last record entirely
    // gone" up to "fully intact".
    for cut in last_start..=bytes.len() {
        let case = fresh_dir(&format!("cut{cut}"));
        let case_base = case.join("ckpt");
        fs::write(case.join("ckpt.000000.wal"), &bytes[..cut]).unwrap();
        let (_, recovery) = Journal::open(&case_base).unwrap();
        if cut == bytes.len() {
            assert_eq!(recovery.state, Some(ckpt(3)), "intact file must replay fully");
            assert!(!recovery.torn_tail && !recovery.corrupt_stopped);
        } else {
            assert_eq!(
                recovery.state,
                Some(ckpt(2)),
                "cut at {cut}: must fall back to the last intact record"
            );
            assert_eq!(recovery.records, 2, "cut at {cut}");
            // A cut exactly on the record boundary looks like a clean
            // end; anything inside the record is a torn tail.
            if cut > last_start {
                assert!(recovery.torn_tail, "cut at {cut}: tear not reported");
            }
        }
        let _ = fs::remove_dir_all(&case);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// After recovering from a torn tail, the journal must remain fully
/// usable: appends land in a fresh segment and the next replay sees
/// them (the torn segment is never appended to again).
#[test]
fn torn_journal_stays_usable_after_recovery() {
    let dir = fresh_dir("usable");
    let base = dir.join("ckpt");
    let segment = {
        let (mut journal, _) = Journal::open(&base).unwrap();
        journal.append(&ckpt(1)).unwrap();
        journal.append(&ckpt(2)).unwrap();
        journal.current_segment()
    };
    // Tear mid-way through the second record.
    let bytes = fs::read(&segment).unwrap();
    let offsets = record_offsets(&bytes);
    fs::write(&segment, &bytes[..offsets[1] + RECORD_HEADER_LEN + 3]).unwrap();

    // Recover, then keep journaling.
    {
        let (mut journal, recovery) = Journal::open(&base).unwrap();
        assert_eq!(recovery.state, Some(ckpt(1)));
        assert!(recovery.torn_tail);
        assert_ne!(journal.current_segment(), segment, "must not append after a torn tail");
        journal.append(&ckpt(7)).unwrap();
    }
    let (_, recovery) = Journal::open(&base).unwrap();
    assert_eq!(recovery.state, Some(ckpt(7)), "post-recovery appends must be replayable");
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupted byte (not a truncation) inside an *earlier* record
/// stops replay at the last record before the damage — the journal
/// never trusts anything after a checksum failure.
#[test]
fn corruption_stops_replay_at_the_damage() {
    let dir = fresh_dir("flip");
    let base = dir.join("ckpt");
    let segment = {
        let (mut journal, _) = Journal::open(&base).unwrap();
        for e in 1..=4 {
            journal.append(&ckpt(e)).unwrap();
        }
        journal.current_segment()
    };
    let mut bytes = fs::read(&segment).unwrap();
    let offsets = record_offsets(&bytes);
    bytes[offsets[1] + RECORD_HEADER_LEN + 5] ^= 0x10;
    fs::write(&segment, &bytes).unwrap();
    let (_, recovery) = Journal::open(&base).unwrap();
    assert_eq!(recovery.state, Some(ckpt(1)));
    assert!(recovery.corrupt_stopped);
    let _ = fs::remove_dir_all(&dir);
}
