//! End-to-end serve-mode loop: a [`ServeHost`] and a [`PcaBedClient`]
//! talking over an in-memory transport, run cooperatively on one
//! thread (the bed holds `Rc` patient state and is deliberately not
//! `Send`). Proves the full live path — announce, associate, stream
//! vitals, detect danger, stop the pump — outside the simulator.

use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::{PcaSafetyApp, SupervisorCore};
use mcps_patient::vitals::VitalKind;
use mcps_serve::client::{PcaBedClient, SUP_EP};
use mcps_serve::host::{ServeConfig, ServeHost};
use mcps_serve::transport::ChannelTransport;
use mcps_sim::time::SimDuration;
use std::time::{Duration, Instant};

const SPEED: f64 = 200.0;

fn command_core() -> SupervisorCore {
    let config = InterlockConfig {
        strategy: InterlockStrategy::Command,
        detector: DetectorKind::Threshold,
        resume_holdoff: SimDuration::from_secs(10),
        ..InterlockConfig::default()
    };
    SupervisorCore::new(PcaSafetyApp::new(config), SUP_EP, SimDuration::from_secs(2))
}

/// Runs host and client rounds until `done` holds or `wall_budget`
/// expires, injecting `(spo2, rr)` vitals each round.
fn run_rounds(
    host: &mut ServeHost<ChannelTransport>,
    client: &mut PcaBedClient<ChannelTransport>,
    vitals: (f64, f64),
    wall_budget: Duration,
    mut done: impl FnMut(&ServeHost<ChannelTransport>, &PcaBedClient<ChannelTransport>) -> bool,
) -> bool {
    let start = Instant::now();
    while start.elapsed() < wall_budget {
        client.send_vital(VitalKind::Spo2, vitals.0);
        client.send_vital(VitalKind::RespRate, vitals.1);
        host.poll();
        client.step();
        if done(host, client) {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    false
}

#[test]
fn live_association_then_danger_stops_pump() {
    let (server_t, client_t) = ChannelTransport::pair();
    let mut host = ServeHost::new(
        command_core(),
        server_t,
        ServeConfig {
            speed: SPEED,
            ingress_capacity: 64,
            trace: false,
            seed: 1,
            ..Default::default()
        },
    );
    let mut client = PcaBedClient::new(client_t, SPEED);
    client.announce_monitors();

    // Phase 1: healthy vitals until the supervisor is fully associated.
    let associated =
        run_rounds(&mut host, &mut client, (97.0, 14.0), Duration::from_secs(20), |h, _| {
            h.core().associated_at().is_some()
        });
    assert!(associated, "supervisor never associated: {:?}", host.core().manager());
    assert!(
        run_rounds(&mut host, &mut client, (97.0, 14.0), Duration::from_secs(20), |_, c| {
            c.is_permitted()
        }),
        "pump never reached a permitted state under healthy vitals"
    );

    // Phase 2: SpO₂ crosses the danger threshold (< 90). The interlock
    // must push a stop through the transport to the bed's pump.
    let danger_at = client.sim_now();
    let stopped =
        run_rounds(&mut host, &mut client, (85.0, 14.0), Duration::from_secs(20), |_, c| {
            c.first_stop_at_or_after(danger_at).is_some()
        });
    assert!(stopped, "pump never received a stop after danger crossing");
    let stop_at = client.first_stop_at_or_after(danger_at).unwrap();
    let latency = stop_at.saturating_since(danger_at);
    assert!(latency <= SimDuration::from_secs(10), "danger→stop latency too high: {latency:?}");
    assert!(!client.is_permitted(), "pump still permits boluses after stop");

    // The host never dropped a protocol message while doing all this.
    assert_eq!(host.stats().critical_overflow, 0);
    assert!(!client.server_closed());
}

#[test]
fn host_survives_client_disconnect() {
    let (server_t, client_t) = ChannelTransport::pair();
    let mut host = ServeHost::new(
        command_core(),
        server_t,
        ServeConfig {
            speed: SPEED,
            ingress_capacity: 64,
            trace: false,
            seed: 2,
            ..Default::default()
        },
    );
    let client = PcaBedClient::new(client_t, SPEED);
    drop(client);
    // The next polls observe the closed transport and report the
    // session over, without panicking or spinning.
    let mut open = true;
    for _ in 0..100 {
        open = host.poll();
        if !open {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(!open, "host failed to notice the peer going away");
    assert!(host.is_closed());
}
