//! Serve mode under fire: the live loop driven through a
//! [`ChaosTransport`] (drops, duplicates, delays, reorders, truncated
//! and bit-flipped frames on a real decoder), and an in-process
//! crash → journal-resume → reconnect cycle proving the fencing
//! invariants hold across a restart.

use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::{PcaSafetyApp, SupervisorCore};
use mcps_patient::vitals::VitalKind;
use mcps_serve::chaos::{ChaosConfig, ChaosTransport};
use mcps_serve::client::{PcaBedClient, ReconnectPolicy, SUP_EP};
use mcps_serve::host::{ServeConfig, ServeHost};
use mcps_serve::journal::Journal;
use mcps_serve::transport::{ChannelTransport, Transport};
use mcps_sim::time::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

const SPEED: f64 = 200.0;

fn command_core(resume_holdoff_secs: u64) -> SupervisorCore {
    let config = InterlockConfig {
        strategy: InterlockStrategy::Command,
        detector: DetectorKind::Threshold,
        resume_holdoff: SimDuration::from_secs(resume_holdoff_secs),
        ..InterlockConfig::default()
    };
    SupervisorCore::new(PcaSafetyApp::new(config), SUP_EP, SimDuration::from_secs(2))
}

/// Cooperative host/client rounds until `done` or the wall budget
/// runs out; monitors are re-announced periodically because a chaos
/// link can eat the first announce.
fn run_rounds<H: Transport, C: Transport>(
    host: &mut ServeHost<H>,
    client: &mut PcaBedClient<C>,
    vitals: (f64, f64),
    wall_budget: Duration,
    mut done: impl FnMut(&ServeHost<H>, &PcaBedClient<C>) -> bool,
) -> bool {
    let start = Instant::now();
    let mut round = 0u64;
    while start.elapsed() < wall_budget {
        client.send_vital(VitalKind::Spo2, vitals.0);
        client.send_vital(VitalKind::RespRate, vitals.1);
        if round.is_multiple_of(50) {
            client.announce_monitors();
        }
        round += 1;
        host.poll();
        client.step();
        if done(host, client) {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    false
}

/// The full live path — associate, stream, danger, stop — with every
/// chaos fault class active on both directions of both ends. The
/// decoder must resync past corruption, the protocol must retry
/// through loss, and the pump must never double-actuate.
#[test]
fn danger_stops_pump_through_a_chaotic_link() {
    let (server_raw, client_raw) = ChannelTransport::pair();
    let server_t = ChaosTransport::new(server_raw, ChaosConfig::storm(21));
    let client_t = ChaosTransport::new(client_raw, ChaosConfig::storm(22));
    let host_chaos = server_t.stats();
    let client_chaos = client_t.stats();

    let mut host = ServeHost::new(
        command_core(10),
        server_t,
        ServeConfig {
            speed: SPEED,
            ingress_capacity: 64,
            trace: false,
            seed: 5,
            ..Default::default()
        },
    );
    let mut client = PcaBedClient::new(client_t, SPEED);
    client.announce_monitors();

    assert!(
        run_rounds(&mut host, &mut client, (97.0, 14.0), Duration::from_secs(30), |h, c| {
            h.core().associated_at().is_some() && c.is_permitted()
        }),
        "bed never associated through the chaotic link"
    );

    let danger_at = client.sim_now();
    assert!(
        run_rounds(&mut host, &mut client, (85.0, 14.0), Duration::from_secs(30), |_, c| {
            c.first_stop_at_or_after(danger_at).is_some()
        }),
        "pump never stopped after danger through the chaotic link"
    );

    // Safety through the noise: duplicated/replayed commands never
    // double-actuate, and corruption was really exercised.
    assert_eq!(client.pump_actor().double_actuations(), 0);
    let corrupted = host_chaos.corrupted() + client_chaos.corrupted();
    let resynced = host_chaos.resynced_total() + client_chaos.resynced_total();
    assert!(corrupted > 0, "chaos plan never corrupted a frame — test proves nothing");
    assert!(resynced > 0, "decoder never resynced — corruption was not live");
}

/// Crash → resume in one process: a journaled host dies mid-session,
/// a successor resumes from the journal with a strictly higher epoch,
/// the client re-dials under backoff and re-announces, and the
/// protocol (including danger→stop and fencing) carries on.
#[test]
fn journal_resume_and_reconnect_restore_the_session() {
    let dir = std::env::temp_dir().join(format!("mcps-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("ckpt");

    // The dialer pulls fresh transports from a slot the test refills
    // after each "restart".
    let slot: Rc<RefCell<Option<ChannelTransport>>> = Rc::new(RefCell::new(None));
    let dial_slot = Rc::clone(&slot);
    let (server_t, client_t) = ChannelTransport::pair();
    let mut client = PcaBedClient::new(client_t, SPEED).with_reconnect(
        move || dial_slot.borrow_mut().take(),
        ReconnectPolicy { base_ms: 5, max_ms: 40, jitter_seed: 3 },
    );

    // Generation 1: journaled host, associate, observe a first stop.
    let (journal, recovery) = Journal::open(&base).unwrap();
    assert!(recovery.state.is_none());
    let mut host = ServeHost::new(
        command_core(5),
        server_t,
        ServeConfig {
            speed: SPEED,
            ingress_capacity: 64,
            trace: false,
            seed: 6,
            ..Default::default()
        },
    );
    host.attach_journal(journal);
    client.announce_monitors();
    assert!(
        run_rounds(&mut host, &mut client, (97.0, 14.0), Duration::from_secs(20), |h, c| {
            // Fully up = associated, pump permitted, and at least one
            // epoch-stamped heartbeat seen by the pump.
            h.core().associated_at().is_some()
                && c.is_permitted()
                && c.pump_actor().max_epoch_seen() >= h.core().epoch()
        }),
        "generation 1 never fully associated"
    );
    let epoch1 = host.core().epoch();
    assert!(host.journal().unwrap().appended() > 0, "journal never received a checkpoint");

    // Kill generation 1 (drop = the process dies; the WAL survives).
    drop(host);

    // Generation 2: replay the journal, resume fenced, reconnect.
    let (journal2, recovery2) = Journal::open(&base).unwrap();
    let ckpt = recovery2.state.expect("journal must replay generation 1's state");
    assert_eq!(ckpt.epoch, epoch1);
    let core2 = command_core(5).resume_from(&ckpt);
    let epoch2 = core2.epoch();
    assert!(epoch2 > epoch1, "resumed epoch must be strictly higher");
    let (server_t2, client_t2) = ChannelTransport::pair();
    let mut host2 = ServeHost::new(
        core2,
        server_t2,
        ServeConfig {
            speed: SPEED,
            ingress_capacity: 64,
            trace: false,
            seed: 7,
            ..Default::default()
        },
    );
    host2.attach_journal(journal2);
    *slot.borrow_mut() = Some(client_t2);

    // The client notices the dead link, re-dials, re-announces; the
    // pump re-binds via its periodic announce and accepts the new
    // epoch.
    assert!(
        run_rounds(&mut host2, &mut client, (97.0, 14.0), Duration::from_secs(30), |h, c| {
            h.core().associated_at().is_some()
                && c.is_permitted()
                && c.pump_actor().max_epoch_seen() >= epoch2
        }),
        "generation 2 never re-associated after reconnect (reconnects={}, dial_failures={})",
        client.reconnects(),
        client.dial_failures(),
    );
    assert_eq!(client.reconnects(), 1);
    assert!(host2.core().restored(), "generation 2 must know it resumed");

    // Danger→stop still works across the restart, and the fencing
    // invariants held: nothing double-actuated, the pump follows the
    // strictly-higher epoch.
    let danger_at = client.sim_now();
    assert!(
        run_rounds(&mut host2, &mut client, (85.0, 14.0), Duration::from_secs(20), |_, c| {
            c.first_stop_at_or_after(danger_at).is_some()
        }),
        "no stop after danger in generation 2"
    );
    assert_eq!(client.pump_actor().double_actuations(), 0);
    assert!(client.pump_actor().max_epoch_seen() >= epoch2);

    let _ = std::fs::remove_dir_all(&dir);
}
