//! The crash harness: kill -9 the live supervisor mid-bolus and prove
//! the bed's device-local fail-safe watchdog holds on its own.
//!
//! This is the serve-mode analogue of the simulator's fault campaigns,
//! but with a *real* process boundary: the `mcps-serve` binary runs as
//! a child speaking frames over its pipes, the bed client runs in the
//! test, and the kill is an actual `SIGKILL` — no destructor, no
//! goodbye frame, exactly what a hardware watchdog scenario assumes.
//! After the kill the pump must engage its local fail-safe (bolus
//! suspension) within the 15-second supervision deadline, with no help
//! from the dead supervisor.

#![cfg(unix)]

use mcps_patient::vitals::VitalKind;
use mcps_serve::client::PcaBedClient;
use mcps_serve::transport::FramedTransport;
use mcps_sim::time::SimDuration;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Sim-seconds per wall-second for the whole scenario: 15 protocol
/// seconds of watchdog window pass in half a wall second.
const SPEED: f64 = 30.0;

/// Steps the client with healthy vitals until `done` or wall budget.
fn drive(
    client: &mut PcaBedClient<FramedTransport<std::process::ChildStdin>>,
    vitals: Option<(f64, f64)>,
    wall_budget: Duration,
    mut done: impl FnMut(&PcaBedClient<FramedTransport<std::process::ChildStdin>>) -> bool,
) -> bool {
    let start = Instant::now();
    while start.elapsed() < wall_budget {
        if let Some((spo2, rr)) = vitals {
            client.send_vital(VitalKind::Spo2, spo2);
            client.send_vital(VitalKind::RespRate, rr);
        }
        client.step();
        if done(client) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

#[test]
fn sigkill_mid_bolus_engages_local_failsafe_within_deadline() {
    let mut child = match Command::new(env!("CARGO_BIN_EXE_mcps-serve"))
        .args(["--speed", &SPEED.to_string(), "--seed", "11"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            // Environments that forbid spawning child processes can't
            // run this harness; everything it exercises in-process is
            // covered by live_loop.rs.
            eprintln!("skipping crash harness: cannot spawn mcps-serve: {e}");
            return;
        }
    };
    let stdin = child.stdin.take().expect("child stdin piped");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut client = PcaBedClient::new(FramedTransport::new(stdout, stdin), SPEED);
    client.announce_monitors();

    // Healthy association: stream good vitals until the pump permits
    // boluses under live supervision.
    let healthy =
        drive(&mut client, Some((97.0, 14.0)), Duration::from_secs(30), |c| c.is_permitted());
    assert!(healthy, "bed never reached a permitted state under the live supervisor");

    // Start a bolus, confirm it is actually running.
    client.press_button();
    let bolus_started = drive(&mut client, Some((97.0, 14.0)), Duration::from_secs(10), |c| {
        c.pump_actor().pump().bolus_in_progress(c.sim_now())
    });
    assert!(bolus_started, "bolus never started while supervised");

    // kill -9, mid-bolus. The supervisor gets no chance to send a stop.
    child.kill().expect("SIGKILL the supervisor");
    let killed_at = client.sim_now();
    child.wait().expect("reap the supervisor");

    // The bed keeps running against a dead peer (sends hit EPIPE and
    // are tolerated). The local watchdog must latch within its
    // 15-second deadline; allow one extra protocol second of slack for
    // tick quantization at 30x.
    let deadline = SimDuration::from_secs(15 + 1);
    let latched = drive(&mut client, Some((97.0, 14.0)), Duration::from_secs(30), |c| {
        c.local_failsafe()
            || c.sim_now().saturating_since(killed_at) > deadline + SimDuration::from_secs(4)
    });
    assert!(latched, "client loop stalled before the watchdog verdict");
    assert!(
        client.local_failsafe(),
        "local fail-safe never engaged after supervisor SIGKILL (elapsed {:?})",
        client.sim_now().saturating_since(killed_at)
    );
    let latch_at = client
        .failsafe_log()
        .iter()
        .find(|&&(_, engaged)| engaged)
        .map(|&(at, _)| at)
        .expect("failsafe log records the latch");
    let reaction = latch_at.saturating_since(killed_at);
    assert!(
        reaction <= deadline,
        "fail-safe latched too late: {reaction:?} after kill (deadline {deadline:?})"
    );
    // The latch is real protection: the in-flight bolus was aborted
    // and further demand boluses are suspended (basal continues — the
    // watchdog's safe state is basal-only, not a hard stop).
    assert!(client.pump_actor().pump().bolus_suspended(), "latch did not suspend boluses");
    assert!(
        !client.pump_actor().pump().bolus_in_progress(client.sim_now()),
        "bolus still running after the fail-safe latch"
    );
}
