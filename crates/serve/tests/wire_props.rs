//! Property tests for the serve-mode wire codec: frames must survive
//! arbitrary read fragmentation, and injected garbage must be skipped
//! without ever desynchronizing the decoder past a true frame start.

use mcps_core::msg::{NetOp, NetPayload};
use mcps_net::fabric::EndpointId;
use mcps_patient::vitals::VitalKind;
use mcps_serve::wire::{encode_frame, FrameDecoder, MAGIC};
use mcps_sim::time::SimTime;
use proptest::prelude::*;

/// Builds a message deterministically from generated scalars so the
/// property owns the full value space without an `Arbitrary` impl on
/// the message enum.
fn message(ep: u64, selector: u64, value: f64, at_ms: u64) -> NetOp {
    let from = EndpointId::from_index((ep % 4) as u32);
    let payload = match selector % 3 {
        0 => NetPayload::Data {
            kind: VitalKind::Spo2,
            value,
            sampled_at: SimTime::from_millis(at_ms),
        },
        1 => NetPayload::Data {
            kind: VitalKind::RespRate,
            value,
            sampled_at: SimTime::from_millis(at_ms),
        },
        _ => NetPayload::Command {
            id: selector,
            epoch: ep + 1,
            command: mcps_core::IceCommand::StopPump,
        },
    };
    NetOp::Deliver { from, payload }
}

/// Feeds `bytes` to `dec` in chunks whose sizes cycle through `sizes`,
/// draining decoded frames as it goes (just as a transport read loop
/// does).
fn feed_chunked(dec: &mut FrameDecoder, bytes: &[u8], sizes: &[usize]) -> Vec<NetOp> {
    let mut got = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < bytes.len() {
        let n = if sizes.is_empty() { 1 } else { sizes[i % sizes.len()].max(1) };
        let end = (pos + n).min(bytes.len());
        dec.push(&bytes[pos..end]);
        while let Some(op) = dec.next_frame() {
            got.push(op);
        }
        pos = end;
        i += 1;
    }
    got
}

proptest! {
    /// Any sequence of frames, split into arbitrary read chunks,
    /// decodes to exactly the original messages in order, with nothing
    /// rejected and nothing counted as garbage.
    fn roundtrip_under_arbitrary_splits(
        specs in proptest::collection::vec((0u64..8, 0u64..9, 50.0f64..200.0, 0u64..100_000), 1..12),
        sizes in proptest::collection::vec(1usize..64, 0..16),
    ) {
        let ops: Vec<NetOp> =
            specs.iter().map(|&(ep, sel, v, at)| message(ep, sel, v, at)).collect();
        let mut bytes = Vec::new();
        for op in &ops {
            bytes.extend_from_slice(&encode_frame(op));
        }
        let mut dec = FrameDecoder::new();
        let got = feed_chunked(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, ops);
        prop_assert_eq!(dec.frames_rejected(), 0);
        prop_assert_eq!(dec.garbage_bytes(), 0);
    }

    /// Garbage injected between frames (scrubbed of accidental magic
    /// sequences) is skipped and counted; every true frame still
    /// decodes, in order, regardless of how reads are fragmented.
    fn garbage_between_frames_never_desyncs(
        specs in proptest::collection::vec((0u64..8, 0u64..9, 50.0f64..200.0, 0u64..100_000), 1..8),
        junk in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..10),
        sizes in proptest::collection::vec(1usize..32, 0..12),
    ) {
        let ops: Vec<NetOp> =
            specs.iter().map(|&(ep, sel, v, at)| message(ep, sel, v, at)).collect();
        let mut bytes = Vec::new();
        let mut junk_total = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let mut noise = junk[i % junk.len()].clone();
            // Scrub any accidental magic so the junk cannot itself be a
            // (rejected) frame candidate — this property pins the exact
            // garbage accounting; the unit tests cover lying magic.
            for w in 0..noise.len().saturating_sub(MAGIC.len() - 1) {
                if noise[w..w + MAGIC.len()] == MAGIC {
                    noise[w] ^= 0xff;
                }
            }
            junk_total += noise.len() as u64;
            bytes.extend_from_slice(&noise);
            bytes.extend_from_slice(&encode_frame(op));
        }
        let mut dec = FrameDecoder::new();
        let got = feed_chunked(&mut dec, &bytes, &sizes);
        prop_assert_eq!(dec.frames_decoded(), ops.len() as u64);
        prop_assert_eq!(got, ops);
        prop_assert_eq!(dec.garbage_bytes(), junk_total);
    }

    /// Even when the stream opens with a *lying* header — real magic,
    /// plausible length, junk payload — the decoder recovers every true
    /// frame that follows.
    fn lying_header_cannot_swallow_later_frames(
        specs in proptest::collection::vec((0u64..8, 0u64..9, 50.0f64..200.0, 0u64..100_000), 1..6),
        claimed_len in 0u32..64,
        sizes in proptest::collection::vec(1usize..32, 0..12),
    ) {
        let ops: Vec<NetOp> =
            specs.iter().map(|&(ep, sel, v, at)| message(ep, sel, v, at)).collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&claimed_len.to_le_bytes());
        // No payload bytes follow the lying header: the next bytes are
        // the first true frame, which the claimed length tries to
        // swallow. One-byte resync must still find it.
        for op in &ops {
            bytes.extend_from_slice(&encode_frame(op));
        }
        let mut dec = FrameDecoder::new();
        let got = feed_chunked(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, ops);
    }
}
