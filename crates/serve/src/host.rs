//! The live supervisor host: one sans-io core, many peers, one loop.
//!
//! [`ServeHost`] owns a [`SupervisorCore`] and drives it from two input
//! sources instead of a discrete-event scheduler:
//!
//! * **Timers** — a [`ServeClock`] maps wall time onto the core's
//!   simulation timeline; ticks fire at the exact multiples of the
//!   core's step, so the state machine sees the same cadence it sees
//!   under the simulator.
//! * **Ingress** — messages arriving on any peer [`Transport`] land in
//!   a bounded queue. When the queue is full, the *oldest vitals
//!   sample* is shed to make room: stale vitals are superseded by
//!   fresh ones, but commands, acks, announcements and checkpoints are
//!   load-bearing protocol steps and are never dropped (the queue may
//!   transiently exceed its bound to hold them).
//!
//! # Peers and fault scoping
//!
//! The host serves a *set* of peer connections, not a single pipe. The
//! first message from an endpoint teaches the host which peer that
//! endpoint lives behind; outbound endpoint-addressed messages follow
//! the learned route, topic-addressed ones go to every peer. A
//! transport error is **peer-scoped**: the failing peer is dropped
//! (its routes forgotten, the event counted) and the host keeps
//! serving everyone else — one broken pipe no longer kills the
//! service. A reconnecting bed re-announces, its endpoints re-route to
//! the new connection, and the session continues. With
//! [`ServeConfig::persistent`] set the host outlives even its *last*
//! peer (the TCP service mode); otherwise losing all peers ends the
//! session, which is what one-shot stdio serving and the load
//! harnesses expect.
//!
//! # Durability
//!
//! [`ServeHost::attach_journal`] connects a [`Journal`]; whenever the
//! core's fencing fingerprint (epoch, command high-water mark, safety
//! latches) changes, the new checkpoint is appended — so a `kill -9`'d
//! host restarted from the journal resumes with a strictly higher
//! epoch and its latches intact (see [`crate::journal`]).

use crate::clock::ServeClock;
use crate::journal::Journal;
use crate::transport::{Transport, TransportError};
use mcps_core::msg::{NetAddress, NetOp, NetPayload};
use mcps_core::{CoreInput, CoreOutputs, SupervisorCore};
use mcps_net::fabric::EndpointId;
use mcps_sim::prelude::{RngFactory, SimRng, SimTime};
use std::collections::VecDeque;

/// Tunables for a [`ServeHost`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sim-seconds per wall-second (`1.0` = real time).
    pub speed: f64,
    /// Ingress queue bound; beyond it, oldest vitals are shed.
    pub ingress_capacity: usize,
    /// Whether to build and print trace lines (stderr). Off keeps the
    /// hot path allocation-free.
    pub trace: bool,
    /// Master seed for the core's deterministic RNG stream.
    pub seed: u64,
    /// Keep serving after the last peer disconnects (TCP service
    /// mode). Off: losing all peers ends the session.
    pub persistent: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { speed: 1.0, ingress_capacity: 256, trace: false, seed: 42, persistent: false }
    }
}

/// Counters describing a serve session.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct ServeStats {
    /// Messages received from the transport.
    pub frames_in: u64,
    /// Messages sent to the transport.
    pub frames_out: u64,
    /// Timer ticks delivered to the core.
    pub ticks_fired: u64,
    /// Ingress messages delivered to the core.
    pub deliveries: u64,
    /// Vitals samples shed by back-pressure (oldest-first).
    pub vitals_shed: u64,
    /// Critical messages enqueued past the nominal bound.
    pub critical_overflow: u64,
    /// Deepest ingress queue observed (queue-pressure high-water mark).
    pub ingress_peak: u64,
    /// Critical (non-vital) outbound messages that could not be
    /// delivered to any peer. Every one is accounted — the dispatch
    /// drain never silently discards the rest of the batch.
    pub critical_sends_dropped: u64,
    /// Peer connections accepted over the session.
    pub peers_connected: u64,
    /// Peers dropped on transport errors (peer-scoped, not fatal).
    pub peers_dropped: u64,
    /// Endpoint routes that moved to a different peer — a bed
    /// resuming its session over a new connection.
    pub routes_relearned: u64,
    /// Journal append failures (the host keeps serving; durability is
    /// degraded, safety is not).
    pub journal_errors: u64,
}

/// One peer connection.
struct Peer<T> {
    id: u64,
    transport: T,
}

/// Hosts a [`SupervisorCore`] live behind a set of peer [`Transport`]s.
pub struct ServeHost<T: Transport> {
    core: SupervisorCore,
    peers: Vec<Peer<T>>,
    next_peer_id: u64,
    /// Learned endpoint → peer routes (tiny; linear scan).
    routes: Vec<(EndpointId, u64)>,
    clock: ServeClock,
    out: CoreOutputs,
    rng: SimRng,
    ingress: VecDeque<(EndpointId, NetPayload)>,
    capacity: usize,
    trace: bool,
    persistent: bool,
    next_tick: SimTime,
    stats: ServeStats,
    journal: Option<Journal>,
    /// Fencing fingerprint of the last journaled checkpoint.
    journal_fp: Option<(u64, u64, bool, bool)>,
    closed: bool,
}

impl<T: Transport> std::fmt::Debug for ServeHost<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHost")
            .field("stats", &self.stats)
            .field("peers", &self.peers.len())
            .field("ingress_depth", &self.ingress.len())
            .field("closed", &self.closed)
            .finish()
    }
}

impl<T: Transport> ServeHost<T> {
    /// Wraps a core and one initial peer transport; the clock starts
    /// now and the first tick fires immediately.
    pub fn new(core: SupervisorCore, transport: T, config: ServeConfig) -> Self {
        let mut host = Self::headless(core, config);
        host.add_peer(transport);
        host
    }

    /// A host with no peers yet — the TCP service mode starts here and
    /// feeds accepted connections in via [`ServeHost::add_peer`]. A
    /// non-persistent headless host reports closed immediately.
    pub fn headless(core: SupervisorCore, config: ServeConfig) -> Self {
        let rng = RngFactory::new(config.seed).stream("serve-supervisor");
        ServeHost {
            core,
            peers: Vec::new(),
            next_peer_id: 0,
            routes: Vec::new(),
            clock: ServeClock::new(config.speed),
            out: CoreOutputs::new(),
            rng,
            ingress: VecDeque::with_capacity(config.ingress_capacity),
            capacity: config.ingress_capacity.max(1),
            trace: config.trace,
            persistent: config.persistent,
            next_tick: SimTime::ZERO,
            stats: ServeStats::default(),
            journal: None,
            journal_fp: None,
            closed: false,
        }
    }

    /// Adds a peer connection; returns its id.
    pub fn add_peer(&mut self, transport: T) -> u64 {
        let id = self.next_peer_id;
        self.next_peer_id += 1;
        self.peers.push(Peer { id, transport });
        self.stats.peers_connected += 1;
        id
    }

    /// Currently connected peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Connects a durability journal. The current checkpoint is
    /// appended on the next poll and on every fencing-fingerprint
    /// change after that.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
        self.journal_fp = None;
    }

    /// The attached journal, if any (for its append/sync counters).
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// The hosted core (for assertions and telemetry export).
    pub fn core(&self) -> &SupervisorCore {
        &self.core
    }

    /// Session counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The core's output buffer (cumulative trace counters live here).
    pub fn outputs(&self) -> &CoreOutputs {
        &self.out
    }

    /// The host's clock.
    pub fn clock(&self) -> ServeClock {
        self.clock
    }

    /// Whether the session is over (all peers gone and the host is not
    /// persistent).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// One scheduling round: drain every peer into the ingress queue,
    /// fire every due timer tick, deliver queued ingress, then journal
    /// if the fencing state moved. Returns `false` once the session is
    /// over (all peers gone, non-persistent) — pending work is still
    /// completed first.
    pub fn poll(&mut self) -> bool {
        self.drain_transports();
        let now = self.clock.sim_now();
        while self.next_tick <= now {
            let at = self.next_tick;
            self.dispatch(at, CoreInput::Tick);
            self.stats.ticks_fired += 1;
            self.next_tick = at.saturating_add(self.core.step());
        }
        while let Some((from, payload)) = self.ingress.pop_front() {
            self.dispatch(now, CoreInput::Deliver { from, payload });
            self.stats.deliveries += 1;
        }
        self.journal_tick();
        if self.peers.is_empty() && !self.persistent {
            self.closed = true;
        }
        !self.closed
    }

    /// Runs until the session ends, sleeping briefly when idle.
    pub fn run(&mut self) {
        while self.poll() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Drains every peer's transport. Errors are peer-scoped: the
    /// failing peer is dropped, the others keep serving.
    fn drain_transports(&mut self) {
        let mut dead: Vec<u64> = Vec::new();
        for i in 0..self.peers.len() {
            let pid = self.peers[i].id;
            loop {
                match self.peers[i].transport.try_recv() {
                    Ok(Some(op)) => {
                        self.stats.frames_in += 1;
                        // Accept either framing direction: clients
                        // address the host with `Deliver`; a raw
                        // `Send` is treated as addressed to us.
                        let (from, payload) = match op {
                            NetOp::Deliver { from, payload }
                            | NetOp::Send { from, payload, .. } => (from, payload),
                        };
                        self.learn_route(from, pid);
                        self.enqueue(from, payload);
                    }
                    Ok(None) => break,
                    Err(TransportError::Closed) | Err(TransportError::Io(_)) => {
                        dead.push(pid);
                        break;
                    }
                }
            }
        }
        for pid in dead {
            self.drop_peer(pid);
        }
    }

    /// Records that endpoint `from` is reachable via peer `pid`.
    fn learn_route(&mut self, from: EndpointId, pid: u64) {
        match self.routes.iter_mut().find(|(ep, _)| *ep == from) {
            Some((_, existing)) if *existing == pid => {}
            Some((_, existing)) => {
                // The endpoint moved to a new connection: a bed
                // resuming after a reconnect.
                *existing = pid;
                self.stats.routes_relearned += 1;
            }
            None => self.routes.push((from, pid)),
        }
    }

    /// Forgets a peer and every route through it.
    fn drop_peer(&mut self, pid: u64) {
        self.peers.retain(|p| p.id != pid);
        self.routes.retain(|(_, p)| *p != pid);
        self.stats.peers_dropped += 1;
    }

    /// Bounded enqueue with the shed policy from the module docs.
    fn enqueue(&mut self, from: EndpointId, payload: NetPayload) {
        if self.ingress.len() >= self.capacity {
            let incoming_is_vital = matches!(payload, NetPayload::Data { .. });
            let oldest_vital =
                self.ingress.iter().position(|(_, p)| matches!(p, NetPayload::Data { .. }));
            match (oldest_vital, incoming_is_vital) {
                (Some(idx), _) => {
                    // Make room by shedding the stalest vitals sample.
                    self.ingress.remove(idx);
                    self.stats.vitals_shed += 1;
                }
                (None, true) => {
                    // Queue is all-critical; the fresh sample loses.
                    self.stats.vitals_shed += 1;
                    return;
                }
                (None, false) => {
                    // Critical on critical: exceed the bound rather
                    // than drop a protocol step.
                    self.stats.critical_overflow += 1;
                }
            }
        }
        self.ingress.push_back((from, payload));
        self.stats.ingress_peak = self.stats.ingress_peak.max(self.ingress.len() as u64);
    }

    fn dispatch(&mut self, now: SimTime, input: CoreInput) {
        self.out.begin(self.trace);
        self.core.handle(now, input, &mut self.rng, &mut self.out);
        for (category, message) in self.out.traces.drain(..) {
            eprintln!("[{:>10.3}s] {category}: {message}", now.as_secs_f64());
        }
        let from = self.core.endpoint();
        // The whole batch is drained regardless of individual send
        // failures: a dead peer costs that peer (and an accounted
        // drop), never the remaining queued sends.
        let mut sends = std::mem::take(&mut self.out.sends);
        for (to, payload) in sends.drain(..) {
            self.send_routed(from, to, payload);
        }
        self.out.sends = sends;
    }

    /// Sends one outbound message to the peer(s) its address resolves
    /// to, dropping peers whose transports fail.
    fn send_routed(&mut self, from: EndpointId, to: NetAddress, payload: NetPayload) {
        let critical = !matches!(payload, NetPayload::Data { .. });
        let op = NetOp::Send { from, to: to.clone(), payload };
        let mut delivered = false;
        match to {
            // Endpoint-addressed (commands, heartbeats): strictly the
            // learned route. Falling back to a broadcast would steer
            // one bed's pump commands at every other bed's pump — the
            // exact cross-actuation the epoch fence exists to prevent.
            NetAddress::Endpoint(ep) => {
                // Routes are learned from the endpoint's own traffic
                // (a device announces before the core ever addresses
                // it), so a missing route means the device's peer is
                // gone — the send is counted as dropped, never guessed
                // at another peer.
                let route = self.routes.iter().find(|(e, _)| *e == ep).map(|(_, p)| *p);
                if let Some(pid) = route {
                    delivered = self.send_to_peer(pid, &op);
                }
            }
            // Topic-addressed (alarm fan-out, checkpoint replication):
            // every peer is a potential subscriber.
            NetAddress::Topic(_) => {
                let ids: Vec<u64> = self.peers.iter().map(|p| p.id).collect();
                for pid in ids {
                    delivered |= self.send_to_peer(pid, &op);
                }
            }
        }
        if delivered {
            self.stats.frames_out += 1;
        } else if critical {
            self.stats.critical_sends_dropped += 1;
        }
    }

    /// Sends to one peer; on transport failure the peer is dropped and
    /// `false` returned.
    fn send_to_peer(&mut self, pid: u64, op: &NetOp) -> bool {
        let Some(peer) = self.peers.iter_mut().find(|p| p.id == pid) else {
            return false;
        };
        match peer.transport.send(op) {
            Ok(()) => true,
            Err(_) => {
                self.drop_peer(pid);
                false
            }
        }
    }

    /// Appends a checkpoint to the journal when the fencing
    /// fingerprint — epoch, command high-water mark, safety latches —
    /// has changed. (Journal-internal policy decides which appends
    /// fsync; see [`crate::journal`].)
    fn journal_tick(&mut self) {
        let Some(journal) = self.journal.as_mut() else { return };
        let state = self.core.checkpoint_state();
        let fp = (state.epoch, state.next_command_id, state.degraded, state.stop_unconfirmed);
        if self.journal_fp == Some(fp) {
            return;
        }
        if journal.append(&state).is_err() {
            // Durability degraded, safety not: the live interlock and
            // the device-local watchdog still hold. Keep serving.
            self.stats.journal_errors += 1;
        }
        self.journal_fp = Some(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use mcps_sim::time::SimTime;

    fn vital(i: u64) -> NetPayload {
        NetPayload::Data {
            kind: mcps_patient::vitals::VitalKind::Spo2,
            value: 97.0,
            sampled_at: SimTime::from_secs(i),
        }
    }

    fn ack(id: u64) -> NetPayload {
        NetPayload::Ack { id, command: mcps_core::IceCommand::StopPump, applied_at: SimTime::ZERO }
    }

    fn test_core() -> SupervisorCore {
        SupervisorCore::new(
            mcps_core::PcaSafetyApp::new(mcps_control::interlock::InterlockConfig::default()),
            EndpointId::from_index(3),
            mcps_sim::time::SimDuration::from_secs(2),
        )
    }

    fn host_with_capacity(capacity: usize) -> ServeHost<ChannelTransport> {
        let (server, client) = ChannelTransport::pair();
        // The tests below exercise `enqueue` directly; the client half
        // is simply kept alive so the channel stays open.
        std::mem::forget(client);
        ServeHost::new(
            test_core(),
            server,
            ServeConfig { ingress_capacity: capacity, ..Default::default() },
        )
    }

    #[test]
    fn backpressure_sheds_oldest_vital_first() {
        let mut host = host_with_capacity(2);
        let ep = EndpointId::from_index(0);
        host.enqueue(ep, vital(1));
        host.enqueue(ep, vital(2));
        host.enqueue(ep, vital(3));
        assert_eq!(host.stats.vitals_shed, 1);
        assert_eq!(host.ingress.len(), 2);
        // The stalest sample (1) is gone; 2 and 3 remain in order.
        let kept: Vec<u64> = host
            .ingress
            .iter()
            .map(|(_, p)| match p {
                NetPayload::Data { sampled_at, .. } => sampled_at.as_secs_f64() as u64,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3]);
    }

    /// Shed branch 1 of 2: with the queue entirely critical, an
    /// arriving vital has nothing to displace — the *fresh sample*
    /// loses, the queue stays at its bound, and nothing critical moves.
    #[test]
    fn all_critical_queue_drops_the_fresh_vital() {
        let mut host = host_with_capacity(2);
        let ep = EndpointId::from_index(2);
        host.enqueue(ep, ack(1));
        host.enqueue(ep, ack(2));
        host.enqueue(ep, vital(9));
        assert_eq!(host.ingress.len(), 2, "the vital must not displace a critical");
        assert_eq!(host.stats.vitals_shed, 1);
        assert_eq!(host.stats.critical_overflow, 0);
        let kept: Vec<u64> = host
            .ingress
            .iter()
            .map(|(_, p)| match p {
                NetPayload::Ack { id, .. } => *id,
                other => panic!("unexpected payload survived: {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![1, 2], "critical order must be preserved");
    }

    /// Shed branch 2 of 2: critical arriving on an all-critical full
    /// queue exceeds the bound rather than dropping a protocol step,
    /// and every exceedance is accounted in `critical_overflow`.
    #[test]
    fn critical_on_critical_exceeds_the_bound_with_accounting() {
        let mut host = host_with_capacity(2);
        let ep = EndpointId::from_index(2);
        host.enqueue(ep, ack(1));
        host.enqueue(ep, ack(2));
        for over in 1..=3u64 {
            host.enqueue(ep, ack(2 + over));
            assert_eq!(host.ingress.len(), 2 + over as usize, "bound must stretch, not drop");
            assert_eq!(host.stats.critical_overflow, over);
        }
        assert_eq!(host.stats.vitals_shed, 0);
        assert_eq!(host.stats.ingress_peak, 5);
    }

    #[test]
    fn full_queue_with_mixed_content_sheds_vital_for_critical() {
        let mut host = host_with_capacity(2);
        let ep = EndpointId::from_index(2);
        host.enqueue(ep, vital(1));
        host.enqueue(ep, ack(1));
        host.enqueue(ep, ack(2));
        assert_eq!(host.stats.vitals_shed, 1);
        assert_eq!(host.ingress.len(), 2);
        assert!(host.ingress.iter().all(|(_, p)| !matches!(p, NetPayload::Data { .. })));
    }

    /// The dispatch drain survives a dead peer: the batch keeps
    /// draining past the failure, the failure is accounted (not
    /// silently discarded), and the host stays open for other peers.
    #[test]
    fn dispatch_drains_past_a_dead_peer_and_accounts_drops() {
        let (a_host, a_client) = ChannelTransport::pair();
        let (b_host, b_client) = ChannelTransport::pair();
        let mut host = ServeHost::new(
            test_core(),
            a_host,
            ServeConfig { persistent: true, ..Default::default() },
        );
        host.add_peer(b_host);
        // Teach the host that the pump endpoint lives behind peer 0.
        let pump = EndpointId::from_index(2);
        host.learn_route(pump, 0);
        drop(a_client);
        // Queue several critical sends to the now-dead peer 0 plus one
        // topic send reaching the healthy peer 1.
        host.out.begin(false);
        for id in 0..3 {
            host.out.sends.push((NetAddress::Endpoint(pump), ack(id)));
        }
        let mut sends = std::mem::take(&mut host.out.sends);
        let from = host.core.endpoint();
        for (to, payload) in sends.drain(..) {
            host.send_routed(from, to, payload);
        }
        host.out.sends = sends;
        // First failed send dropped the peer; the remaining sends were
        // still drained and every undeliverable critical was counted.
        assert_eq!(host.stats.peers_dropped, 1);
        assert_eq!(host.stats.critical_sends_dropped, 3);
        assert_eq!(host.peer_count(), 1);
        assert!(!host.is_closed());
        drop(b_client);
    }

    /// Transport errors are peer-scoped: dropping one of two peers
    /// leaves the host serving, and a persistent host outlives even
    /// its last peer.
    #[test]
    fn peer_errors_do_not_kill_the_session() {
        let (a_host, a_client) = ChannelTransport::pair();
        let (b_host, b_client) = ChannelTransport::pair();
        let mut host = ServeHost::new(test_core(), a_host, ServeConfig::default());
        host.add_peer(b_host);
        drop(a_client);
        assert!(host.poll(), "losing one of two peers must not end the session");
        assert_eq!(host.stats().peers_dropped, 1);
        drop(b_client);
        // Non-persistent: losing the last peer ends the session.
        while host.poll() {}
        assert!(host.is_closed());
    }

    /// An endpoint re-announcing over a new connection moves its route
    /// (counted as a resume) so commands follow the bed, not the dead
    /// socket.
    #[test]
    fn reconnecting_endpoint_relearns_its_route() {
        let (a_host, a_client) = ChannelTransport::pair();
        let mut host = ServeHost::new(
            test_core(),
            a_host,
            ServeConfig { persistent: true, ..Default::default() },
        );
        let ep = EndpointId::from_index(2);
        host.learn_route(ep, 0);
        assert_eq!(host.stats().routes_relearned, 0);
        drop(a_client);
        host.poll();
        assert_eq!(host.stats().peers_dropped, 1);
        // The bed dials back in on a fresh connection.
        let (b_host, b_client) = ChannelTransport::pair();
        let pid = host.add_peer(b_host);
        host.learn_route(ep, pid);
        assert_eq!(host.stats().routes_relearned, 0, "route was forgotten with the dead peer");
        // And a *live* route moving between live peers counts.
        let (c_host, _c_client) = ChannelTransport::pair();
        let pid2 = host.add_peer(c_host);
        host.learn_route(ep, pid2);
        assert_eq!(host.stats().routes_relearned, 1);
        drop(b_client);
    }
}
