//! The live supervisor host: one sans-io core, one transport, one loop.
//!
//! [`ServeHost`] owns a [`SupervisorCore`] and drives it from two input
//! sources instead of a discrete-event scheduler:
//!
//! * **Timers** — a [`ServeClock`] maps wall time onto the core's
//!   simulation timeline; ticks fire at the exact multiples of the
//!   core's step, so the state machine sees the same cadence it sees
//!   under the simulator.
//! * **Ingress** — messages arriving on the [`Transport`] land in a
//!   bounded queue. When the queue is full, the *oldest vitals sample*
//!   is shed to make room: stale vitals are superseded by fresh ones,
//!   but commands, acks, announcements and checkpoints are load-bearing
//!   protocol steps and are never dropped (the queue may transiently
//!   exceed its bound to hold them).
//!
//! Everything the core emits is flushed back out through the same
//! transport, stamped with the supervisor's endpoint as source.

use crate::clock::ServeClock;
use crate::transport::{Transport, TransportError};
use mcps_core::msg::{NetOp, NetPayload};
use mcps_core::{CoreInput, CoreOutputs, SupervisorCore};
use mcps_net::fabric::EndpointId;
use mcps_sim::prelude::{RngFactory, SimRng, SimTime};
use std::collections::VecDeque;

/// Tunables for a [`ServeHost`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sim-seconds per wall-second (`1.0` = real time).
    pub speed: f64,
    /// Ingress queue bound; beyond it, oldest vitals are shed.
    pub ingress_capacity: usize,
    /// Whether to build and print trace lines (stderr). Off keeps the
    /// hot path allocation-free.
    pub trace: bool,
    /// Master seed for the core's deterministic RNG stream.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { speed: 1.0, ingress_capacity: 256, trace: false, seed: 42 }
    }
}

/// Counters describing a serve session.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct ServeStats {
    /// Messages received from the transport.
    pub frames_in: u64,
    /// Messages sent to the transport.
    pub frames_out: u64,
    /// Timer ticks delivered to the core.
    pub ticks_fired: u64,
    /// Ingress messages delivered to the core.
    pub deliveries: u64,
    /// Vitals samples shed by back-pressure (oldest-first).
    pub vitals_shed: u64,
    /// Critical messages enqueued past the nominal bound.
    pub critical_overflow: u64,
    /// Deepest ingress queue observed (queue-pressure high-water mark).
    pub ingress_peak: u64,
}

/// Hosts a [`SupervisorCore`] live behind a [`Transport`].
pub struct ServeHost<T: Transport> {
    core: SupervisorCore,
    transport: T,
    clock: ServeClock,
    out: CoreOutputs,
    rng: SimRng,
    ingress: VecDeque<(EndpointId, NetPayload)>,
    capacity: usize,
    trace: bool,
    next_tick: SimTime,
    stats: ServeStats,
    closed: bool,
}

impl<T: Transport> std::fmt::Debug for ServeHost<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHost")
            .field("stats", &self.stats)
            .field("ingress_depth", &self.ingress.len())
            .field("closed", &self.closed)
            .finish()
    }
}

impl<T: Transport> ServeHost<T> {
    /// Wraps a core and a transport; the clock starts now and the first
    /// tick fires immediately.
    pub fn new(core: SupervisorCore, transport: T, config: ServeConfig) -> Self {
        let rng = RngFactory::new(config.seed).stream("serve-supervisor");
        ServeHost {
            core,
            transport,
            clock: ServeClock::new(config.speed),
            out: CoreOutputs::new(),
            rng,
            ingress: VecDeque::with_capacity(config.ingress_capacity),
            capacity: config.ingress_capacity.max(1),
            trace: config.trace,
            next_tick: SimTime::ZERO,
            stats: ServeStats::default(),
            closed: false,
        }
    }

    /// The hosted core (for assertions and telemetry export).
    pub fn core(&self) -> &SupervisorCore {
        &self.core
    }

    /// Session counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The core's output buffer (cumulative trace counters live here).
    pub fn outputs(&self) -> &CoreOutputs {
        &self.out
    }

    /// The host's clock.
    pub fn clock(&self) -> ServeClock {
        self.clock
    }

    /// Whether the transport has closed (peer gone).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// One scheduling round: drain the transport into the ingress
    /// queue, fire every due timer tick, then deliver queued ingress.
    /// Returns `false` once the transport has closed and all pending
    /// work is done — the session is over.
    pub fn poll(&mut self) -> bool {
        self.drain_transport();
        let now = self.clock.sim_now();
        while self.next_tick <= now {
            let at = self.next_tick;
            self.dispatch(at, CoreInput::Tick);
            self.stats.ticks_fired += 1;
            self.next_tick = at.saturating_add(self.core.step());
        }
        while let Some((from, payload)) = self.ingress.pop_front() {
            self.dispatch(now, CoreInput::Deliver { from, payload });
            self.stats.deliveries += 1;
        }
        !self.closed
    }

    /// Runs until the peer disconnects, sleeping briefly when idle.
    pub fn run(&mut self) {
        while self.poll() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    fn drain_transport(&mut self) {
        loop {
            match self.transport.try_recv() {
                Ok(Some(op)) => {
                    self.stats.frames_in += 1;
                    // Accept either framing direction: clients address
                    // the host with `Deliver`; a raw `Send` is treated
                    // as addressed to us.
                    let (from, payload) = match op {
                        NetOp::Deliver { from, payload } | NetOp::Send { from, payload, .. } => {
                            (from, payload)
                        }
                    };
                    self.enqueue(from, payload);
                }
                Ok(None) => return,
                Err(TransportError::Closed) | Err(TransportError::Io(_)) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }

    /// Bounded enqueue with the shed policy from the module docs.
    fn enqueue(&mut self, from: EndpointId, payload: NetPayload) {
        if self.ingress.len() >= self.capacity {
            let incoming_is_vital = matches!(payload, NetPayload::Data { .. });
            let oldest_vital =
                self.ingress.iter().position(|(_, p)| matches!(p, NetPayload::Data { .. }));
            match (oldest_vital, incoming_is_vital) {
                (Some(idx), _) => {
                    // Make room by shedding the stalest vitals sample.
                    self.ingress.remove(idx);
                    self.stats.vitals_shed += 1;
                }
                (None, true) => {
                    // Queue is all-critical; the fresh sample loses.
                    self.stats.vitals_shed += 1;
                    return;
                }
                (None, false) => {
                    // Critical on critical: exceed the bound rather
                    // than drop a protocol step.
                    self.stats.critical_overflow += 1;
                }
            }
        }
        self.ingress.push_back((from, payload));
        self.stats.ingress_peak = self.stats.ingress_peak.max(self.ingress.len() as u64);
    }

    fn dispatch(&mut self, now: SimTime, input: CoreInput) {
        self.out.begin(self.trace);
        self.core.handle(now, input, &mut self.rng, &mut self.out);
        for (category, message) in self.out.traces.drain(..) {
            eprintln!("[{:>10.3}s] {category}: {message}", now.as_secs_f64());
        }
        let from = self.core.endpoint();
        for (to, payload) in self.out.sends.drain(..) {
            match self.transport.send(&NetOp::Send { from, to, payload }) {
                Ok(()) => self.stats.frames_out += 1,
                Err(_) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use mcps_sim::time::SimTime;

    fn vital(i: u64) -> NetPayload {
        NetPayload::Data {
            kind: mcps_patient::vitals::VitalKind::Spo2,
            value: 97.0,
            sampled_at: SimTime::from_secs(i),
        }
    }

    fn host_with_capacity(capacity: usize) -> ServeHost<ChannelTransport> {
        let (server, client) = ChannelTransport::pair();
        // The tests below exercise `enqueue` directly; the client half
        // is simply kept alive so the channel stays open.
        std::mem::forget(client);
        let core = SupervisorCore::new(
            mcps_core::PcaSafetyApp::new(mcps_control::interlock::InterlockConfig::default()),
            EndpointId::from_index(3),
            mcps_sim::time::SimDuration::from_secs(2),
        );
        ServeHost::new(
            core,
            server,
            ServeConfig { ingress_capacity: capacity, ..Default::default() },
        )
    }

    #[test]
    fn backpressure_sheds_oldest_vital_first() {
        let mut host = host_with_capacity(2);
        let ep = EndpointId::from_index(0);
        host.enqueue(ep, vital(1));
        host.enqueue(ep, vital(2));
        host.enqueue(ep, vital(3));
        assert_eq!(host.stats.vitals_shed, 1);
        assert_eq!(host.ingress.len(), 2);
        // The stalest sample (1) is gone; 2 and 3 remain in order.
        let kept: Vec<u64> = host
            .ingress
            .iter()
            .map(|(_, p)| match p {
                NetPayload::Data { sampled_at, .. } => sampled_at.as_secs_f64() as u64,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn critical_messages_are_never_shed() {
        let mut host = host_with_capacity(2);
        let ep = EndpointId::from_index(2);
        let critical = NetPayload::Ack {
            id: 1,
            command: mcps_core::IceCommand::StopPump,
            applied_at: SimTime::ZERO,
        };
        host.enqueue(ep, critical.clone());
        host.enqueue(ep, critical.clone());
        // Full of criticals: an incoming vital is dropped...
        host.enqueue(ep, vital(9));
        assert_eq!(host.ingress.len(), 2);
        assert_eq!(host.stats.vitals_shed, 1);
        // ...but an incoming critical overflows the bound instead.
        host.enqueue(ep, critical);
        assert_eq!(host.ingress.len(), 3);
        assert_eq!(host.stats.critical_overflow, 1);
    }

    #[test]
    fn full_queue_with_mixed_content_sheds_vital_for_critical() {
        let mut host = host_with_capacity(2);
        let ep = EndpointId::from_index(2);
        let ack = |id| NetPayload::Ack {
            id,
            command: mcps_core::IceCommand::StopPump,
            applied_at: SimTime::ZERO,
        };
        host.enqueue(ep, vital(1));
        host.enqueue(ep, ack(1));
        host.enqueue(ep, ack(2));
        assert_eq!(host.stats.vitals_shed, 1);
        assert_eq!(host.ingress.len(), 2);
        assert!(host.ingress.iter().all(|(_, p)| !matches!(p, NetPayload::Data { .. })));
    }
}
