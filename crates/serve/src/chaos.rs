//! Deterministic network-fault injection for live transports.
//!
//! [`ChaosTransport`] wraps any inner [`Transport`] and subjects every
//! message — in both directions — to a seeded fault plan: drop, delay,
//! duplicate, reorder, truncate-mid-frame, and bit-flip. The byte-level
//! faults are not simulated abstractly: each message is re-encoded with
//! the real wire codec ([`crate::wire::encode_frame`]), corrupted at
//! the byte level, and pushed through a persistent
//! [`FrameDecoder`] — so a chaos run exercises the decoder's
//! self-resynchronization exactly as a dirty socket would, and the
//! decoder's reject counters become the "frames corrupted / resynced"
//! numbers the soak report commits.
//!
//! Faults are drawn from [`SimRng`] streams derived from a single seed
//! (one stream per direction), so a chaos campaign is replayable: same
//! seed, same inner traffic, same faults. Counters live behind an
//! `Arc` ([`ChaosStats`]) so a reconnecting client can thread one stats
//! sink through every transport incarnation it dials.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcps_core::msg::NetOp;
use mcps_sim::rng::{bernoulli, RngFactory, SimRng};
use rand::Rng;

use crate::transport::{Transport, TransportError};
use crate::wire::{encode_frame, FrameDecoder};

/// Per-direction fault probabilities (all per message, in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Master seed for the fault plan.
    pub seed: u64,
    /// Message silently discarded.
    pub drop: f64,
    /// Message delivered twice.
    pub duplicate: f64,
    /// Message held back for [`ChaosConfig::delay_ops`] transport
    /// operations before delivery.
    pub delay: f64,
    /// Hold-back horizon for delayed messages, in transport ops.
    pub delay_ops: u64,
    /// Message held and swapped with the next one (pairwise reorder).
    pub reorder: f64,
    /// Frame truncated mid-payload (the tail never arrives); the
    /// decoder must resync past the partial frame.
    pub truncate: f64,
    /// One to three random bits flipped somewhere in the frame; the
    /// CRC must catch it.
    pub bit_flip: f64,
}

impl ChaosConfig {
    /// A quiet plan: nothing injected (useful as a baseline).
    pub fn calm(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_ops: 0,
            reorder: 0.0,
            truncate: 0.0,
            bit_flip: 0.0,
        }
    }

    /// The soak harness's standing weather: every fault class active,
    /// rates low enough that the protocol stays live but high enough
    /// that multi-minute runs see hundreds of each.
    pub fn storm(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop: 0.02,
            duplicate: 0.02,
            delay: 0.04,
            delay_ops: 7,
            reorder: 0.04,
            truncate: 0.01,
            bit_flip: 0.02,
        }
    }
}

/// Shared fault-injection counters (one sink can span many transport
/// incarnations across reconnects).
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Messages discarded by the drop fault.
    pub dropped: AtomicU64,
    /// Extra copies delivered by the duplicate fault.
    pub duplicated: AtomicU64,
    /// Messages held back by the delay fault.
    pub delayed: AtomicU64,
    /// Messages swapped by the reorder fault.
    pub reordered: AtomicU64,
    /// Frames cut short mid-payload.
    pub truncated: AtomicU64,
    /// Frames with bits flipped.
    pub bit_flipped: AtomicU64,
    /// Frames the decoder rejected (corruption caught + resynced).
    pub resynced: AtomicU64,
    /// Messages that made it through the fault plan intact.
    pub passed: AtomicU64,
}

impl ChaosStats {
    /// Frames deliberately corrupted at the byte level.
    pub fn corrupted(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed) + self.bit_flipped.load(Ordering::Relaxed)
    }

    /// Corrupted-or-garbage frames the decoder caught and skipped.
    pub fn resynced_total(&self) -> u64 {
        self.resynced.load(Ordering::Relaxed)
    }
}

/// One direction's fault pipeline: fault plan → real frame bytes →
/// persistent [`FrameDecoder`] → decoded messages out.
#[derive(Debug)]
struct Lane {
    cfg: ChaosConfig,
    rng: SimRng,
    dec: FrameDecoder,
    ready: VecDeque<NetOp>,
    /// Delayed frames: `(release_at_op, frame_bytes)`.
    held: VecDeque<(u64, Vec<u8>)>,
    /// Reorder hold-back slot.
    swap: Option<Vec<u8>>,
    ops: u64,
    rejects_seen: u64,
    stats: Arc<ChaosStats>,
}

impl Lane {
    fn new(cfg: ChaosConfig, label: &str, stats: Arc<ChaosStats>) -> Self {
        Lane {
            cfg,
            rng: RngFactory::new(cfg.seed).stream(label),
            dec: FrameDecoder::new(),
            ready: VecDeque::new(),
            held: VecDeque::new(),
            swap: None,
            ops: 0,
            rejects_seen: 0,
            stats,
        }
    }

    /// Advances the op clock and releases delayed/stale-held frames
    /// that have come due.
    fn tick(&mut self) {
        self.ops += 1;
        while self.held.front().is_some_and(|(at, _)| *at <= self.ops) {
            let (_, bytes) = self.held.pop_front().expect("checked front");
            self.pipe(&bytes);
        }
        // A reorder hold-back with no successor traffic must not sit
        // forever: flush it once the lane has gone quiet for a while.
        if self.swap.is_some() && self.ops.is_multiple_of(64) {
            let bytes = self.swap.take().expect("checked some");
            self.pipe(&bytes);
        }
    }

    /// Runs one message through the fault plan.
    fn feed(&mut self, op: &NetOp) {
        if bernoulli(&mut self.rng, self.cfg.drop) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let copies = if bernoulli(&mut self.rng, self.cfg.duplicate) {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut bytes = encode_frame(op);
            let mut intact = true;
            if bernoulli(&mut self.rng, self.cfg.truncate) && bytes.len() > 2 {
                let keep = self.rng.gen_range(1..bytes.len());
                bytes.truncate(keep);
                self.stats.truncated.fetch_add(1, Ordering::Relaxed);
                intact = false;
            } else if bernoulli(&mut self.rng, self.cfg.bit_flip) {
                let flips = self.rng.gen_range(1..=3usize);
                for _ in 0..flips {
                    let byte = self.rng.gen_range(0..bytes.len());
                    let bit = self.rng.gen_range(0..8u32);
                    bytes[byte] ^= 1 << bit;
                }
                self.stats.bit_flipped.fetch_add(1, Ordering::Relaxed);
                intact = false;
            }
            if intact {
                self.stats.passed.fetch_add(1, Ordering::Relaxed);
            }
            if bernoulli(&mut self.rng, self.cfg.delay) {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                self.held.push_back((self.ops + self.cfg.delay_ops, bytes));
                continue;
            }
            if self.swap.is_none() && bernoulli(&mut self.rng, self.cfg.reorder) {
                // Hold this one back; it rides out after the next
                // immediate delivery, swapping the pair.
                self.stats.reordered.fetch_add(1, Ordering::Relaxed);
                self.swap = Some(bytes);
                continue;
            }
            self.pipe(&bytes);
            if let Some(earlier) = self.swap.take() {
                self.pipe(&earlier);
            }
        }
    }

    /// Pushes raw (possibly corrupted) frame bytes through the real
    /// decoder; whatever survives becomes deliverable.
    fn pipe(&mut self, bytes: &[u8]) {
        self.dec.push(bytes);
        while let Some(op) = self.dec.next_frame() {
            self.ready.push_back(op);
        }
        let rejects = self.dec.frames_rejected();
        if rejects > self.rejects_seen {
            self.stats.resynced.fetch_add(rejects - self.rejects_seen, Ordering::Relaxed);
            self.rejects_seen = rejects;
        }
    }

    fn pop(&mut self) -> Option<NetOp> {
        self.ready.pop_front()
    }
}

/// A [`Transport`] decorator injecting deterministic faults in both
/// directions. See the module docs.
#[derive(Debug)]
pub struct ChaosTransport<T: Transport> {
    inner: T,
    tx: Lane,
    rx: Lane,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with a fresh stats sink.
    pub fn new(inner: T, cfg: ChaosConfig) -> Self {
        Self::with_stats(inner, cfg, Arc::new(ChaosStats::default()))
    }

    /// Wraps `inner`, accumulating into an existing `stats` sink —
    /// the reconnect path uses this so counters survive re-dials.
    pub fn with_stats(inner: T, cfg: ChaosConfig, stats: Arc<ChaosStats>) -> Self {
        ChaosTransport {
            inner,
            tx: Lane::new(cfg, "chaos-tx", Arc::clone(&stats)),
            rx: Lane::new(cfg, "chaos-rx", stats),
        }
    }

    /// The shared fault counters.
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.tx.stats)
    }

    /// Drains messages the outbound fault plan has released onto the
    /// inner transport.
    fn flush_tx(&mut self) -> Result<(), TransportError> {
        while let Some(op) = self.tx.pop() {
            self.inner.send(&op)?;
        }
        Ok(())
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, op: &NetOp) -> Result<(), TransportError> {
        self.tx.tick();
        self.rx.tick();
        self.tx.feed(op);
        self.flush_tx()
    }

    fn try_recv(&mut self) -> Result<Option<NetOp>, TransportError> {
        self.tx.tick();
        self.rx.tick();
        self.flush_tx()?;
        loop {
            if let Some(op) = self.rx.pop() {
                return Ok(Some(op));
            }
            match self.inner.try_recv() {
                Ok(Some(op)) => self.rx.feed(&op),
                Ok(None) => return Ok(None),
                Err(e) => {
                    // Deliver what already cleared the fault plan
                    // before surfacing the failure.
                    return match self.rx.pop() {
                        Some(op) => Ok(Some(op)),
                        None => Err(e),
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use mcps_core::msg::{NetAddress, NetPayload};
    use mcps_core::IceCommand;
    use mcps_net::fabric::EndpointId;

    fn cmd(id: u64) -> NetOp {
        NetOp::Send {
            from: EndpointId::from_index(3),
            to: NetAddress::Endpoint(EndpointId::from_index(2)),
            payload: NetPayload::Command { id, epoch: 1, command: IceCommand::StopPump },
        }
    }

    fn drain<T: Transport>(t: &mut T) -> Vec<NetOp> {
        let mut out = Vec::new();
        while let Ok(Some(op)) = t.try_recv() {
            out.push(op);
        }
        out
    }

    #[test]
    fn calm_chaos_is_transparent() {
        let (a, b) = ChannelTransport::pair();
        let mut a = ChaosTransport::new(a, ChaosConfig::calm(1));
        let mut b = ChaosTransport::new(b, ChaosConfig::calm(1));
        for i in 0..20 {
            a.send(&cmd(i)).unwrap();
        }
        let got = drain(&mut b);
        assert_eq!(got, (0..20).map(cmd).collect::<Vec<_>>());
        assert_eq!(a.stats().corrupted(), 0);
    }

    #[test]
    fn storm_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let (a, b) = ChannelTransport::pair();
            let mut a = ChaosTransport::new(a, ChaosConfig::storm(seed));
            let mut b = b;
            let mut got = Vec::new();
            for i in 0..200 {
                a.send(&cmd(i)).unwrap();
                got.extend(drain(&mut b));
            }
            // Flush stragglers (delay/reorder holds) with idle ops.
            for _ in 0..300 {
                let _ = a.try_recv();
                got.extend(drain(&mut b));
            }
            (got, a.stats().corrupted(), a.stats().resynced_total())
        };
        let (got1, corr1, resync1) = run(77);
        let (got2, corr2, resync2) = run(77);
        assert_eq!(got1, got2);
        assert_eq!((corr1, resync1), (corr2, resync2));
        let (got3, ..) = run(78);
        assert_ne!(got1, got3, "different seeds should produce different fault plans");
    }

    #[test]
    fn corrupted_frames_are_caught_never_mutated() {
        // High corruption rates: every frame that survives decoding
        // must be byte-identical to something actually sent — a
        // bit-flip may kill a frame but can never alter its content.
        let (a, b) = ChannelTransport::pair();
        let mut cfg = ChaosConfig::calm(9);
        cfg.bit_flip = 0.5;
        cfg.truncate = 0.2;
        let mut a = ChaosTransport::new(a, cfg);
        let sent: Vec<NetOp> = (0..300).map(cmd).collect();
        for op in &sent {
            a.send(op).unwrap();
        }
        let (mut b, stats) = (b, a.stats());
        let got = drain(&mut b);
        assert!(stats.corrupted() > 50, "corruption plan did not fire");
        assert!(stats.resynced_total() > 0, "decoder never had to resync");
        assert!(got.len() < sent.len(), "corrupted frames should be lost");
        for op in &got {
            assert!(sent.contains(op), "received a message never sent: {op:?}");
        }
    }

    #[test]
    fn delayed_and_reordered_messages_all_arrive() {
        let (a, b) = ChannelTransport::pair();
        let mut cfg = ChaosConfig::calm(5);
        cfg.delay = 0.3;
        cfg.delay_ops = 5;
        cfg.reorder = 0.3;
        cfg.duplicate = 0.1;
        let mut a = ChaosTransport::new(a, cfg);
        for i in 0..100 {
            a.send(&cmd(i)).unwrap();
        }
        for _ in 0..200 {
            let _ = a.try_recv();
        }
        let mut b = b;
        let got = drain(&mut b);
        // No corruption faults: every message (plus duplicates) lands.
        let mut ids: Vec<u64> = got
            .iter()
            .map(|op| match op {
                NetOp::Send { payload: NetPayload::Command { id, .. }, .. } => *id,
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
        assert!(a.stats().delayed.load(Ordering::Relaxed) > 10);
        assert!(a.stats().reordered.load(Ordering::Relaxed) > 10);
    }
}
