//! Pluggable transports carrying [`NetOp`] messages.
//!
//! The serve host and its clients speak in whole messages; a
//! [`Transport`] hides how those messages move. Three implementations
//! ship:
//!
//! * [`ChannelTransport`] — in-memory queues, for tests and in-process
//!   load generation (no threads required).
//! * [`FramedTransport`] over stdio — the `mcps-serve` binary's default
//!   ([`FramedTransport::stdio`]), speaking the [`crate::wire`] codec.
//! * [`FramedTransport`] over TCP — one connected socket per bed
//!   ([`FramedTransport::tcp`]).
//!
//! All receives are non-blocking (`try_recv`), because both host and
//! client own a clock-driven loop that must keep ticking regardless of
//! traffic.

use crate::wire::{encode_frame, FrameDecoder};
use mcps_core::msg::NetOp;
use std::io::{Read, Write};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone (EOF, broken pipe, disconnected channel).
    /// Permanent: further operations will keep failing.
    Closed,
    /// An I/O error other than closure.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional message pipe.
pub trait Transport {
    /// Sends one message to the peer.
    fn send(&mut self, op: &NetOp) -> Result<(), TransportError>;

    /// Receives the next pending message, if any, without blocking.
    /// `Ok(None)` means "nothing right now"; [`TransportError::Closed`]
    /// means the peer is gone for good (pending messages are still
    /// drained first).
    fn try_recv(&mut self) -> Result<Option<NetOp>, TransportError>;
}

/// An in-memory transport half; create a connected pair with
/// [`ChannelTransport::pair`].
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<NetOp>,
    rx: Receiver<NetOp>,
}

impl ChannelTransport {
    /// Two connected halves: everything sent on one is received on the
    /// other, in order.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (atx, brx) = mpsc::channel();
        let (btx, arx) = mpsc::channel();
        (ChannelTransport { tx: atx, rx: arx }, ChannelTransport { tx: btx, rx: brx })
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, op: &NetOp) -> Result<(), TransportError> {
        self.tx.send(op.clone()).map_err(|_| TransportError::Closed)
    }

    fn try_recv(&mut self) -> Result<Option<NetOp>, TransportError> {
        match self.rx.try_recv() {
            Ok(op) => Ok(Some(op)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

/// A transport speaking the [`crate::wire`] frame codec over a byte
/// stream. Writes go straight to the writer (flushed per frame); reads
/// happen on a background thread that decodes frames and hands them
/// over a queue, keeping [`Transport::try_recv`] non-blocking even on
/// blocking streams like stdin or sockets.
pub struct FramedTransport<W: Write> {
    writer: W,
    rx: Receiver<NetOp>,
    closed: bool,
}

impl<W: Write> std::fmt::Debug for FramedTransport<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramedTransport").field("closed", &self.closed).finish()
    }
}

impl<W: Write> FramedTransport<W> {
    /// Wraps a reader/writer pair. The reader moves to a background
    /// thread; decoded frames queue until drained. Garbage on the
    /// stream is skipped by the codec (see [`crate::wire`]).
    pub fn new<R: Read + Send + 'static>(reader: R, writer: W) -> Self {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || read_loop(reader, &tx));
        FramedTransport { writer, rx, closed: false }
    }
}

fn read_loop<R: Read>(mut reader: R, tx: &Sender<NetOp>) {
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 4096];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                dec.push(&chunk[..n]);
                while let Some(op) = dec.next_frame() {
                    if tx.send(op).is_err() {
                        return;
                    }
                }
            }
        }
    }
}

impl FramedTransport<std::io::Stdout> {
    /// The process's stdin/stdout as a framed transport — how the
    /// `mcps-serve` binary talks to whoever spawned it.
    pub fn stdio() -> Self {
        FramedTransport::new(std::io::stdin(), std::io::stdout())
    }
}

impl FramedTransport<std::net::TcpStream> {
    /// A connected TCP stream as a framed transport (the read half is
    /// a [`std::net::TcpStream::try_clone`] of the socket).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the socket cannot be cloned.
    pub fn tcp(stream: std::net::TcpStream) -> std::io::Result<Self> {
        let reader = stream.try_clone()?;
        Ok(FramedTransport::new(reader, stream))
    }
}

impl<W: Write> Transport for FramedTransport<W> {
    fn send(&mut self, op: &NetOp) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        let frame = encode_frame(op);
        let res = self.writer.write_all(&frame).and_then(|()| self.writer.flush());
        if let Err(e) = res {
            // A broken pipe means the peer died (the crash harness
            // relies on surviving exactly this); everything else is a
            // plain I/O error.
            return if e.kind() == std::io::ErrorKind::BrokenPipe {
                self.closed = true;
                Err(TransportError::Closed)
            } else {
                Err(TransportError::Io(e.to_string()))
            };
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<NetOp>, TransportError> {
        match self.rx.try_recv() {
            Ok(op) => Ok(Some(op)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_core::msg::{NetAddress, NetPayload};
    use mcps_core::IceCommand;
    use mcps_net::fabric::EndpointId;

    fn cmd(id: u64) -> NetOp {
        NetOp::Send {
            from: EndpointId::from_index(3),
            to: NetAddress::Endpoint(EndpointId::from_index(2)),
            payload: NetPayload::Command { id, epoch: 1, command: IceCommand::StopPump },
        }
    }

    #[test]
    fn channel_pair_roundtrips_in_order() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(&cmd(1)).unwrap();
        a.send(&cmd(2)).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(cmd(1)));
        assert_eq!(b.try_recv().unwrap(), Some(cmd(2)));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn channel_close_is_reported_after_drain() {
        let (a, mut b) = ChannelTransport::pair();
        drop(a);
        assert_eq!(b.try_recv(), Err(TransportError::Closed));
    }

    #[test]
    fn tcp_framed_roundtrip() {
        let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping: cannot bind loopback in this environment");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTransport::tcp(stream).unwrap();
            // Echo two messages back.
            let mut echoed = 0;
            while echoed < 2 {
                if let Ok(Some(op)) = t.try_recv() {
                    t.send(&op).unwrap();
                    echoed += 1;
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        });
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut t = FramedTransport::tcp(stream).unwrap();
        t.send(&cmd(1)).unwrap();
        t.send(&cmd(2)).unwrap();
        let mut got = Vec::new();
        while got.len() < 2 {
            match t.try_recv() {
                Ok(Some(op)) => got.push(op),
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(e) => panic!("transport failed: {e}"),
            }
        }
        assert_eq!(got, vec![cmd(1), cmd(2)]);
        server.join().unwrap();
    }
}
