//! Wall-clock → simulation-time mapping for live serving.
//!
//! The sans-io [`mcps_core::SupervisorCore`] thinks in [`SimTime`];
//! serve mode feeds it real time. [`ServeClock`] anchors `SimTime::ZERO`
//! at construction and scales elapsed wall time by a speed factor, so
//! tests and the crash harness can compress minutes of protocol time
//! (association, heartbeats, watchdog windows) into fractions of a
//! wall second while production runs at `speed = 1.0`.

use mcps_sim::time::SimTime;
use std::time::Instant;

/// Maps monotonic wall time onto the supervisor's simulation timeline.
///
/// The mapping is integer µs end to end: elapsed wall-µs (`u128`)
/// times a fixed-point speed, never `f64` arithmetic on an
/// ever-growing elapsed value — at double precision a multi-day
/// session's `wall * speed * 1e6` loses sub-µs increments and can even
/// present equal (or non-monotone, under FMA contraction) readings.
#[derive(Debug, Clone, Copy)]
pub struct ServeClock {
    start: Instant,
    /// Sim-µs per wall-second, i.e. `speed * 1e6` rounded once.
    speed_micro: u64,
}

impl ServeClock {
    /// Starts the clock now. `speed` is sim-seconds per wall-second;
    /// values `<= 0` are clamped to `1.0`. Resolution is one millionth
    /// of a speed unit (`speed_micro`); anything finer rounds.
    pub fn new(speed: f64) -> Self {
        let speed = if speed > 0.0 { speed } else { 1.0 };
        let speed_micro = ((speed * 1e6).round() as u64).max(1);
        ServeClock { start: Instant::now(), speed_micro }
    }

    /// The speed factor in effect (after fixed-point rounding).
    pub fn speed(&self) -> f64 {
        self.speed_micro as f64 / 1e6
    }

    /// The current position on the simulation timeline.
    pub fn sim_now(&self) -> SimTime {
        // sim_µs = wall_µs * (sim_µs per wall_s) / (wall_µs per wall_s),
        // all in u128: exact for any plausible uptime and speed
        // (overflow needs wall_µs * speed_micro > 2^128, i.e. ~10^19
        // years at speed 10^6).
        let wall_us = self.start.elapsed().as_micros();
        let sim_us = wall_us * u128::from(self.speed_micro) / 1_000_000;
        SimTime::from_micros(u64::try_from(sim_us).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_scales() {
        let c = ServeClock::new(1000.0);
        let a = c.sim_now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = c.sim_now();
        assert!(b > a, "clock must advance: {a:?} -> {b:?}");
        // 5 ms wall at 1000x is ~5 sim-seconds; allow generous slack.
        assert!(b.saturating_since(a) >= mcps_sim::time::SimDuration::from_millis(500));
    }

    #[test]
    fn nonpositive_speed_clamps_to_realtime() {
        assert!((ServeClock::new(0.0).speed() - 1.0).abs() < f64::EPSILON);
        assert!((ServeClock::new(-3.0).speed() - 1.0).abs() < f64::EPSILON);
    }

    /// Back-to-back readings must never run backwards, at any speed —
    /// including awkward fractional speeds whose float products are
    /// inexact. (The old `f64` mapping could present non-monotone
    /// pairs under optimization; the integer mapping cannot.)
    #[test]
    fn sim_now_is_monotone_under_rapid_sampling() {
        for speed in [0.3, 1.0, 7.77, 355.0, 1e4] {
            let c = ServeClock::new(speed);
            let mut prev = c.sim_now();
            for _ in 0..50_000 {
                let now = c.sim_now();
                assert!(now >= prev, "clock ran backwards at speed {speed}: {prev:?} -> {now:?}");
                prev = now;
            }
        }
    }

    /// The integer mapping agrees with the ideal real-valued mapping
    /// to within one µs at day-scale elapsed times (the f64 path it
    /// replaced is off by whole µs there).
    #[test]
    fn integer_mapping_is_exact_at_long_uptimes() {
        let speed_micro = 355_000_000u128; // speed 355
        for wall_us in [1u128, 86_400_000_000, 30 * 86_400_000_000] {
            let sim = wall_us * speed_micro / 1_000_000;
            let ideal = (wall_us as f64) * 355.0;
            assert!((sim as f64 - ideal).abs() <= 1.0, "drift at wall_us={wall_us}");
        }
    }
}
