//! Wall-clock → simulation-time mapping for live serving.
//!
//! The sans-io [`mcps_core::SupervisorCore`] thinks in [`SimTime`];
//! serve mode feeds it real time. [`ServeClock`] anchors `SimTime::ZERO`
//! at construction and scales elapsed wall time by a speed factor, so
//! tests and the crash harness can compress minutes of protocol time
//! (association, heartbeats, watchdog windows) into fractions of a
//! wall second while production runs at `speed = 1.0`.

use mcps_sim::time::SimTime;
use std::time::Instant;

/// Maps monotonic wall time onto the supervisor's simulation timeline.
#[derive(Debug, Clone, Copy)]
pub struct ServeClock {
    start: Instant,
    speed: f64,
}

impl ServeClock {
    /// Starts the clock now. `speed` is sim-seconds per wall-second;
    /// values `<= 0` are clamped to `1.0`.
    pub fn new(speed: f64) -> Self {
        let speed = if speed > 0.0 { speed } else { 1.0 };
        ServeClock { start: Instant::now(), speed }
    }

    /// The speed factor in effect.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The current position on the simulation timeline.
    pub fn sim_now(&self) -> SimTime {
        let wall = self.start.elapsed().as_secs_f64();
        SimTime::from_micros((wall * self.speed * 1e6) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_scales() {
        let c = ServeClock::new(1000.0);
        let a = c.sim_now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = c.sim_now();
        assert!(b > a, "clock must advance: {a:?} -> {b:?}");
        // 5 ms wall at 1000x is ~5 sim-seconds; allow generous slack.
        assert!(b.saturating_since(a) >= mcps_sim::time::SimDuration::from_millis(500));
    }

    #[test]
    fn nonpositive_speed_clamps_to_realtime() {
        assert!((ServeClock::new(0.0).speed() - 1.0).abs() < f64::EPSILON);
        assert!((ServeClock::new(-3.0).speed() - 1.0).abs() < f64::EPSILON);
    }
}
