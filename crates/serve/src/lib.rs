//! # mcps-serve — the supervisor, live
//!
//! The workspace's supervisor logic is a sans-io state machine
//! ([`mcps_core::SupervisorCore`]): timestamped inputs in, buffered
//! outputs out, no opinion about where time or bytes come from. Under
//! the simulator a thin actor adapter drives it from the discrete-event
//! scheduler. This crate drives the *same* core from wall-clock time
//! and real I/O:
//!
//! * [`wire`] — a self-synchronizing length-prefixed frame codec
//!   (magic + length + CRC32 + JSON payload) that survives partial
//!   reads, garbage, and bit flips without desyncing.
//! * [`transport`] — the [`transport::Transport`] trait with in-memory
//!   channel, stdio-frame and TCP-frame implementations.
//! * [`chaos`] — [`chaos::ChaosTransport`], a deterministic fault
//!   injector (drop, delay, duplicate, reorder, truncate, bit-flip)
//!   wrapping any inner transport, for soak and chaos tests.
//! * [`journal`] — [`journal::Journal`], a durable CRC-framed WAL of
//!   supervisor checkpoints so a killed `mcps-serve` restarts with a
//!   strictly higher epoch and its safety latches intact.
//! * [`clock`] — wall time → simulation time, with a speed factor so
//!   tests compress protocol minutes into wall milliseconds.
//! * [`host`] — [`host::ServeHost`], the serving loop: exact-cadence
//!   timer ticks plus a bounded ingress queue whose back-pressure
//!   policy sheds the oldest vitals first and never drops commands,
//!   acks, announcements or checkpoints.
//! * [`client`] — [`client::PcaBedClient`], a bed with a real pump
//!   model (local fail-safe watchdog included) and scripted monitors,
//!   used by the load generator and the crash harness.
//!
//! The `mcps-serve` binary hosts a PCA safety interlock over stdio or
//! TCP; see the crate README section for invocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod clock;
pub mod host;
pub mod journal;
pub mod transport;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosStats, ChaosTransport};
pub use client::{PcaBedClient, ReconnectPolicy};
pub use clock::ServeClock;
pub use host::{ServeConfig, ServeHost, ServeStats};
pub use journal::{Journal, Recovery};
pub use transport::{ChannelTransport, FramedTransport, Transport, TransportError};
pub use wire::{encode_frame, FrameDecoder};
