//! The `mcps-serve` binary: a live PCA safety supervisor.
//!
//! Hosts the sans-io [`SupervisorCore`] with the PCA safety interlock
//! behind a framed transport — stdio by default (spawn it as a child
//! process and speak frames over its pipes), or TCP with `--tcp ADDR`.
//! A TCP host is *persistent*: it accepts connections for as long as
//! the process lives, beds may come, go, crash and reconnect.
//!
//! ```text
//! mcps-serve [--speed F] [--seed N] [--capacity N] [--trace]
//!            [--strategy command|ticket]
//!            [--detector threshold|fusion|trend]
//!            [--resume-holdoff-secs N] [--tcp ADDR] [--journal PATH]
//! ```
//!
//! `--speed` scales wall time onto the supervisor's protocol timeline
//! (tests run at 30–1000×); `--capacity` bounds the ingress queue
//! (back-pressure sheds oldest vitals beyond it); `--trace` prints the
//! supervisor's trace stream to stderr.
//!
//! `--journal PATH` makes the supervisor's fencing state durable: a
//! CRC-framed WAL of checkpoints at `PATH.NNNNNN.wal`. On startup any
//! existing journal is replayed (torn tails tolerated) and the core
//! resumes with a strictly higher epoch and its safety latches
//! inherited — so `kill -9` followed by a restart cannot resurrect a
//! stale epoch or forget a latched degradation.

use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::{PcaSafetyApp, SupervisorCore};
use mcps_net::fabric::EndpointId;
use mcps_serve::host::{ServeConfig, ServeHost};
use mcps_serve::journal::Journal;
use mcps_serve::transport::{FramedTransport, Transport};
use mcps_sim::time::SimDuration;

struct Options {
    speed: f64,
    seed: u64,
    capacity: usize,
    trace: bool,
    ticket_mode: bool,
    detector: DetectorKind,
    resume_holdoff_secs: u64,
    tcp: Option<String>,
    journal: Option<String>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        speed: 1.0,
        seed: 42,
        capacity: 256,
        trace: false,
        ticket_mode: false,
        detector: InterlockConfig::default().detector,
        resume_holdoff_secs: 30,
        tcp: None,
        journal: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| die(&format!("{arg} needs a value")));
        match arg.as_str() {
            "--speed" => opts.speed = parse(&value(), "--speed"),
            "--seed" => opts.seed = parse(&value(), "--seed"),
            "--capacity" => opts.capacity = parse(&value(), "--capacity"),
            "--trace" => opts.trace = true,
            "--strategy" => {
                opts.ticket_mode = match value().as_str() {
                    "ticket" => true,
                    "command" => false,
                    other => die(&format!("unknown strategy {other:?} (command|ticket)")),
                }
            }
            "--detector" => {
                opts.detector = match value().as_str() {
                    "threshold" => DetectorKind::Threshold,
                    "fusion" => DetectorKind::Fusion,
                    "trend" => DetectorKind::FusionWithTrend,
                    other => die(&format!("unknown detector {other:?} (threshold|fusion|trend)")),
                }
            }
            "--resume-holdoff-secs" => {
                opts.resume_holdoff_secs = parse(&value(), "--resume-holdoff-secs")
            }
            "--tcp" => opts.tcp = Some(value()),
            "--journal" => opts.journal = Some(value()),
            "--help" | "-h" => {
                eprintln!(
                    "mcps-serve [--speed F] [--seed N] [--capacity N] [--trace] \
                     [--strategy command|ticket] [--detector threshold|fusion|trend] \
                     [--resume-holdoff-secs N] [--tcp ADDR] [--journal PATH]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    opts
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| die(&format!("bad value {s:?} for {what}")))
}

fn die(msg: &str) -> ! {
    eprintln!("mcps-serve: {msg}");
    std::process::exit(2);
}

fn build_core(opts: &Options) -> SupervisorCore {
    let mut config = InterlockConfig::default();
    if !opts.ticket_mode {
        config.strategy = InterlockStrategy::Command;
    }
    config.detector = opts.detector;
    config.resume_holdoff = SimDuration::from_secs(opts.resume_holdoff_secs);
    SupervisorCore::new(
        PcaSafetyApp::new(config),
        EndpointId::from_index(3),
        SimDuration::from_secs(2),
    )
}

/// Builds the core, replaying + resuming from the journal when one is
/// configured.
fn build_host<T: Transport>(opts: &Options, persistent: bool) -> ServeHost<T> {
    let mut core = build_core(opts);
    let mut journal = None;
    if let Some(path) = &opts.journal {
        let (j, recovery) = Journal::open(std::path::Path::new(path))
            .unwrap_or_else(|e| die(&format!("cannot open journal {path}: {e}")));
        if let Some(ckpt) = &recovery.state {
            eprintln!(
                "mcps-serve: journal replayed — {} records / {} segments, resuming at epoch {}{}{}{}",
                recovery.records,
                recovery.segments_scanned,
                ckpt.epoch + 1,
                if ckpt.degraded { ", degraded latch inherited" } else { "" },
                if ckpt.stop_unconfirmed { ", stop-unconfirmed latch inherited" } else { "" },
                if recovery.torn_tail || recovery.corrupt_stopped {
                    " (damaged tail ignored)"
                } else {
                    ""
                },
            );
            core = core.resume_from(ckpt);
        } else {
            eprintln!("mcps-serve: journal empty — fresh session at epoch 1");
        }
        journal = Some(j);
    }
    let config = ServeConfig {
        speed: opts.speed,
        ingress_capacity: opts.capacity,
        trace: opts.trace,
        seed: opts.seed,
        persistent,
    };
    let mut host = ServeHost::headless(core, config);
    if let Some(j) = journal {
        host.attach_journal(j);
    }
    host
}

fn report(stats: &mcps_serve::ServeStats) {
    eprintln!(
        "mcps-serve: session over — {} in / {} out, {} ticks, {} delivered, {} vitals shed, \
         {} critical overflow, {} critical sends dropped, {} peers ({} dropped, {} resumed)",
        stats.frames_in,
        stats.frames_out,
        stats.ticks_fired,
        stats.deliveries,
        stats.vitals_shed,
        stats.critical_overflow,
        stats.critical_sends_dropped,
        stats.peers_connected,
        stats.peers_dropped,
        stats.routes_relearned,
    );
}

/// One-shot stdio session: serve the pipes until the parent goes away.
fn serve_stdio(opts: &Options) {
    let mut host = build_host(opts, false);
    host.add_peer(FramedTransport::stdio());
    host.run();
    report(&host.stats());
}

/// Persistent TCP service: an accept thread feeds new connections to
/// the serving loop; the host outlives every individual peer.
fn serve_tcp(opts: &Options, addr: &str) {
    let listener = std::net::TcpListener::bind(addr)
        .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    eprintln!("mcps-serve: listening on {addr}");
    let (conn_tx, conn_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            if conn_tx.send(stream).is_err() {
                return;
            }
        }
    });
    let mut host = build_host(opts, true);
    loop {
        while let Ok(stream) = conn_rx.try_recv() {
            let peer = stream.peer_addr().map(|a| a.to_string());
            match FramedTransport::tcp(stream) {
                Ok(t) => {
                    let id = host.add_peer(t);
                    eprintln!(
                        "mcps-serve: peer {id} connected ({})",
                        peer.as_deref().unwrap_or("unknown")
                    );
                }
                Err(e) => eprintln!("mcps-serve: socket setup failed: {e}"),
            }
        }
        if !host.poll() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    report(&host.stats());
}

fn main() {
    let opts = parse_options();
    match opts.tcp.clone() {
        Some(addr) => serve_tcp(&opts, &addr),
        None => serve_stdio(&opts),
    }
}
