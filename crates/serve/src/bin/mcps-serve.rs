//! The `mcps-serve` binary: a live PCA safety supervisor.
//!
//! Hosts the sans-io [`SupervisorCore`] with the PCA safety interlock
//! behind a framed transport — stdio by default (spawn it as a child
//! process and speak frames over its pipes), or TCP with `--tcp ADDR`
//! (serves one connection, then exits).
//!
//! ```text
//! mcps-serve [--speed F] [--seed N] [--capacity N] [--trace]
//!            [--strategy command|ticket] [--resume-holdoff-secs N]
//!            [--tcp ADDR]
//! ```
//!
//! `--speed` scales wall time onto the supervisor's protocol timeline
//! (tests run at 30–1000×); `--capacity` bounds the ingress queue
//! (back-pressure sheds oldest vitals beyond it); `--trace` prints the
//! supervisor's trace stream to stderr.

use mcps_control::interlock::{InterlockConfig, InterlockStrategy};
use mcps_core::{PcaSafetyApp, SupervisorCore};
use mcps_net::fabric::EndpointId;
use mcps_serve::host::{ServeConfig, ServeHost};
use mcps_serve::transport::{FramedTransport, Transport};
use mcps_sim::time::SimDuration;

struct Options {
    speed: f64,
    seed: u64,
    capacity: usize,
    trace: bool,
    ticket_mode: bool,
    resume_holdoff_secs: u64,
    tcp: Option<String>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        speed: 1.0,
        seed: 42,
        capacity: 256,
        trace: false,
        ticket_mode: false,
        resume_holdoff_secs: 30,
        tcp: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| die(&format!("{arg} needs a value")));
        match arg.as_str() {
            "--speed" => opts.speed = parse(&value(), "--speed"),
            "--seed" => opts.seed = parse(&value(), "--seed"),
            "--capacity" => opts.capacity = parse(&value(), "--capacity"),
            "--trace" => opts.trace = true,
            "--strategy" => {
                opts.ticket_mode = match value().as_str() {
                    "ticket" => true,
                    "command" => false,
                    other => die(&format!("unknown strategy {other:?} (command|ticket)")),
                }
            }
            "--resume-holdoff-secs" => {
                opts.resume_holdoff_secs = parse(&value(), "--resume-holdoff-secs")
            }
            "--tcp" => opts.tcp = Some(value()),
            "--help" | "-h" => {
                eprintln!(
                    "mcps-serve [--speed F] [--seed N] [--capacity N] [--trace] \
                     [--strategy command|ticket] [--resume-holdoff-secs N] [--tcp ADDR]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    opts
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| die(&format!("bad value {s:?} for {what}")))
}

fn die(msg: &str) -> ! {
    eprintln!("mcps-serve: {msg}");
    std::process::exit(2);
}

fn build_core(opts: &Options) -> SupervisorCore {
    let mut config = InterlockConfig::default();
    if !opts.ticket_mode {
        config.strategy = InterlockStrategy::Command;
    }
    config.resume_holdoff = SimDuration::from_secs(opts.resume_holdoff_secs);
    SupervisorCore::new(
        PcaSafetyApp::new(config),
        EndpointId::from_index(3),
        SimDuration::from_secs(2),
    )
}

fn serve<T: Transport>(opts: &Options, transport: T) {
    let core = build_core(opts);
    let config = ServeConfig {
        speed: opts.speed,
        ingress_capacity: opts.capacity,
        trace: opts.trace,
        seed: opts.seed,
    };
    let mut host = ServeHost::new(core, transport, config);
    host.run();
    let stats = host.stats();
    eprintln!(
        "mcps-serve: session over — {} in / {} out, {} ticks, {} delivered, {} vitals shed, {} critical overflow",
        stats.frames_in,
        stats.frames_out,
        stats.ticks_fired,
        stats.deliveries,
        stats.vitals_shed,
        stats.critical_overflow,
    );
}

fn main() {
    let opts = parse_options();
    match &opts.tcp {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
            eprintln!("mcps-serve: listening on {addr}");
            let (stream, peer) =
                listener.accept().unwrap_or_else(|e| die(&format!("accept failed: {e}")));
            eprintln!("mcps-serve: serving {peer}");
            let transport = FramedTransport::tcp(stream)
                .unwrap_or_else(|e| die(&format!("socket setup failed: {e}")));
            serve(&opts, transport);
        }
        None => serve(&opts, FramedTransport::stdio()),
    }
}
