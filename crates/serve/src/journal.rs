//! Durable checkpoint journal: the crash-restart backbone of serve
//! mode.
//!
//! The in-sim failover protocol (PR 5) replicates
//! [`CheckpointState`] between a primary and a standby over the
//! fabric; a lone `mcps-serve` process has no standby, so the same
//! payload is made durable instead — an append-only, CRC-framed,
//! length-prefixed write-ahead log on disk. A restarted process
//! replays the journal, resumes via
//! [`SupervisorCore::resume_from`](mcps_core::supervisor::SupervisorCore)
//! with a strictly higher epoch, and inherits the degraded /
//! stop-unconfirmed latches, so `kill -9` → restart is a recoverable
//! event rather than a state wipe.
//!
//! # On-disk format
//!
//! A journal is a directory-less family of segment files
//! `{base}.{index:06}.wal`. Each segment is a sequence of records:
//!
//! ```text
//! "MCJ1" (4 bytes) ++ len (u32 LE) ++ crc32(payload) (u32 LE) ++ payload
//! ```
//!
//! where the payload is the JSON serialization of one
//! [`CheckpointState`] and the CRC is the same IEEE polynomial as the
//! wire codec ([`crate::wire::crc32`]). A torn tail — the process died
//! mid-`write` — therefore fails its length or checksum and replay
//! stops cleanly at the last intact record; everything before it is
//! trusted.
//!
//! # Durability policy
//!
//! Not every record is fsynced. A record is *epoch-bearing* when its
//! epoch, `next_command_id` high-water mark, or a safety latch
//! (degraded / stop-unconfirmed) differs from the previously synced
//! record — exactly the state a resurrected supervisor must not
//! un-learn (losing an epoch bump would let it reuse a fenced epoch;
//! losing a latch would un-latch a safety hold). Those records are
//! followed by `sync_data`. Routine checkpoints between them ride on
//! the page cache: losing them costs freshness, never fencing.
//!
//! # Rotation
//!
//! [`Journal::open`] always starts a **new** segment (`last index +
//! 1`) rather than appending to the newest existing one — appending
//! after a torn tail would bury valid records behind garbage. Segments
//! rotate once they exceed a size budget; superseded segments are
//! removed only after the fresh segment holds at least one durable
//! record, so the most recent checkpoint is always recoverable.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use mcps_core::supervisor::CheckpointState;

use crate::wire::crc32;

/// Record start marker ("Medical Checkpoint Journal v1").
pub const JOURNAL_MAGIC: [u8; 4] = *b"MCJ1";

/// Bytes before a record payload: magic, length, CRC32.
pub const RECORD_HEADER_LEN: usize = 12;

/// Upper bound on a record payload; larger claims are corruption.
pub const MAX_RECORD: usize = 1 << 20;

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// What replaying a journal found.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The newest intact checkpoint, if any record survived.
    pub state: Option<CheckpointState>,
    /// Intact records replayed across all segments.
    pub records: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// A segment ended in a partial record (interrupted write).
    pub torn_tail: bool,
    /// Replay of a segment stopped early on a corrupt (checksum or
    /// parse-failed) record.
    pub corrupt_stopped: bool,
}

/// Serializes one checkpoint as a journal record.
fn encode_record(state: &CheckpointState) -> Vec<u8> {
    let body = serde_json::to_string(state).expect("CheckpointState serializes");
    let body = body.as_bytes();
    let mut rec = Vec::with_capacity(RECORD_HEADER_LEN + body.len());
    rec.extend_from_slice(&JOURNAL_MAGIC);
    rec.extend_from_slice(&u32::try_from(body.len()).expect("record < 4 GiB").to_le_bytes());
    rec.extend_from_slice(&crc32(body).to_le_bytes());
    rec.extend_from_slice(body);
    rec
}

/// Replays one segment's bytes, returning intact records and what
/// ended the scan.
fn replay_segment(bytes: &[u8]) -> (Vec<CheckpointState>, bool, bool) {
    let mut records = Vec::new();
    let mut torn = false;
    let mut corrupt = false;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < RECORD_HEADER_LEN {
            torn = true;
            break;
        }
        if rest[..4] != JOURNAL_MAGIC {
            corrupt = true;
            break;
        }
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
        let want_crc = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
        if len > MAX_RECORD {
            corrupt = true;
            break;
        }
        if rest.len() < RECORD_HEADER_LEN + len {
            torn = true;
            break;
        }
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if crc32(payload) != want_crc {
            corrupt = true;
            break;
        }
        match std::str::from_utf8(payload).ok().and_then(|s| serde_json::from_str(s).ok()) {
            Some(state) => records.push(state),
            None => {
                corrupt = true;
                break;
            }
        }
        pos += RECORD_HEADER_LEN + len;
    }
    (records, torn, corrupt)
}

/// The fields whose change makes a record epoch-bearing (must be
/// durable before the supervisor acts on the new value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    epoch: u64,
    next_command_id: u64,
    degraded: bool,
    stop_unconfirmed: bool,
}

impl Fingerprint {
    fn of(state: &CheckpointState) -> Self {
        Self {
            epoch: state.epoch,
            next_command_id: state.next_command_id,
            degraded: state.degraded,
            stop_unconfirmed: state.stop_unconfirmed,
        }
    }
}

/// An open, appendable checkpoint journal.
#[derive(Debug)]
pub struct Journal {
    base: PathBuf,
    segment_index: u64,
    file: File,
    segment_bytes: u64,
    max_segment_bytes: u64,
    /// Segments superseded by the current one, deletable once the
    /// current segment holds a durable record.
    stale_segments: Vec<PathBuf>,
    /// Fingerprint of the last *synced* record.
    synced: Option<Fingerprint>,
    appended: u64,
    syncs: u64,
}

impl Journal {
    /// Replays every existing segment of `base` (newest last), then
    /// opens a fresh segment for appending.
    ///
    /// # Errors
    ///
    /// Fails only on filesystem errors (unreadable directory, segment
    /// creation failure) — corrupt or torn journal *content* is
    /// reported in [`Recovery`], never an error.
    pub fn open(base: &Path) -> std::io::Result<(Self, Recovery)> {
        Self::open_with(base, DEFAULT_SEGMENT_BYTES)
    }

    /// [`Journal::open`] with an explicit rotation threshold.
    ///
    /// # Errors
    ///
    /// See [`Journal::open`].
    pub fn open_with(base: &Path, max_segment_bytes: u64) -> std::io::Result<(Self, Recovery)> {
        let segments = list_segments(base)?;
        let mut recovery = Recovery::default();
        for (_, path) in &segments {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let (records, torn, corrupt) = replay_segment(&bytes);
            recovery.segments_scanned += 1;
            recovery.records += records.len() as u64;
            recovery.torn_tail |= torn;
            recovery.corrupt_stopped |= corrupt;
            if let Some(last) = records.into_iter().last() {
                // Segments are scanned in index order, so the last
                // intact record of the highest-indexed readable
                // segment wins.
                recovery.state = Some(last);
            }
        }
        // Never append after a possibly-torn tail: start clean.
        let segment_index = segments.last().map_or(0, |(i, _)| i + 1);
        let path = segment_path(base, segment_index);
        let file = OpenOptions::new().create_new(true).write(true).open(&path)?;
        Ok((
            Self {
                base: base.to_path_buf(),
                segment_index,
                file,
                segment_bytes: 0,
                max_segment_bytes,
                stale_segments: segments.into_iter().map(|(_, p)| p).collect(),
                synced: None,
                appended: 0,
                syncs: 0,
            },
            recovery,
        ))
    }

    /// Appends one checkpoint, fsyncing when the record is
    /// epoch-bearing (see the module docs) or the first of a segment.
    ///
    /// # Errors
    ///
    /// Propagates write/sync/rotation I/O failures; the caller decides
    /// whether losing durability is fatal.
    pub fn append(&mut self, state: &CheckpointState) -> std::io::Result<()> {
        if self.segment_bytes >= self.max_segment_bytes {
            self.rotate()?;
        }
        let rec = encode_record(state);
        self.file.write_all(&rec)?;
        self.segment_bytes += rec.len() as u64;
        self.appended += 1;
        let fp = Fingerprint::of(state);
        // First record of a fresh journal/segment is always synced so
        // rotation may safely delete the superseded segments.
        if self.synced != Some(fp) {
            self.file.sync_data()?;
            self.syncs += 1;
            self.synced = Some(fp);
            self.drop_stale_segments();
        }
        Ok(())
    }

    /// Closes the current segment and opens the next; the old segment
    /// joins the stale set (deleted after the next durable record).
    fn rotate(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.syncs += 1;
        self.stale_segments.push(segment_path(&self.base, self.segment_index));
        self.segment_index += 1;
        let path = segment_path(&self.base, self.segment_index);
        self.file = OpenOptions::new().create_new(true).write(true).open(&path)?;
        self.segment_bytes = 0;
        // Force the next append to sync (first record of the segment),
        // even if its fingerprint matches the last synced one.
        self.synced = None;
        Ok(())
    }

    /// Removes superseded segments. Only called once the current
    /// segment has a durable record, so history is never the sole copy
    /// deleted. Deletion failures are ignored: stale segments are a
    /// space concern, not a correctness one.
    fn drop_stale_segments(&mut self) {
        for path in self.stale_segments.drain(..) {
            let _ = fs::remove_file(path);
        }
    }

    /// The segment file currently being appended to.
    pub fn current_segment(&self) -> PathBuf {
        segment_path(&self.base, self.segment_index)
    }

    /// Records appended since open.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// `sync_data` calls since open.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// `{base}.{index:06}.wal`.
fn segment_path(base: &Path, index: u64) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".{index:06}.wal"));
    PathBuf::from(name)
}

/// Existing segments of `base`, sorted by index.
fn list_segments(base: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let dir = base.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let stem = match base.file_name().and_then(|n| n.to_str()) {
        Some(s) => s,
        None => return Ok(Vec::new()),
    };
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        // A not-yet-created parent directory simply means no history.
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(stem).and_then(|r| r.strip_prefix('.')) else {
            continue;
        };
        let Some(idx) = rest.strip_suffix(".wal") else { continue };
        if let Ok(idx) = idx.parse::<u64>() {
            out.push((idx, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(i, _)| *i);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(epoch: u64) -> CheckpointState {
        CheckpointState {
            epoch,
            next_command_id: 10 * epoch,
            degraded: false,
            stop_unconfirmed: false,
            inflight_ids: vec![1, 2],
            last_data: Vec::new(),
        }
    }

    fn tmp_base(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcps-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("ckpt")
    }

    #[test]
    fn fresh_journal_recovers_nothing() {
        let base = tmp_base("fresh");
        let (journal, recovery) = Journal::open(&base).unwrap();
        assert!(recovery.state.is_none());
        assert_eq!(recovery.records, 0);
        assert!(!recovery.torn_tail);
        drop(journal);
    }

    #[test]
    fn roundtrip_last_record_wins() {
        let base = tmp_base("roundtrip");
        {
            let (mut journal, _) = Journal::open(&base).unwrap();
            for e in 1..=5 {
                journal.append(&ckpt(e)).unwrap();
            }
            assert_eq!(journal.appended(), 5);
            // Every record here bumps the epoch → every record syncs.
            assert_eq!(journal.syncs(), 5);
        }
        let (_, recovery) = Journal::open(&base).unwrap();
        assert_eq!(recovery.state, Some(ckpt(5)));
        assert_eq!(recovery.records, 5);
        assert!(!recovery.torn_tail && !recovery.corrupt_stopped);
    }

    #[test]
    fn unchanged_fingerprint_skips_fsync() {
        let base = tmp_base("fsync");
        let (mut journal, _) = Journal::open(&base).unwrap();
        let mut state = ckpt(3);
        journal.append(&state).unwrap();
        // Same epoch/latches, fresher inflight view: no sync needed.
        state.inflight_ids = vec![7];
        journal.append(&state).unwrap();
        journal.append(&state).unwrap();
        assert_eq!(journal.appended(), 3);
        assert_eq!(journal.syncs(), 1);
        // But a latch flip forces one.
        state.degraded = true;
        journal.append(&state).unwrap();
        assert_eq!(journal.syncs(), 2);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let base = tmp_base("torn");
        {
            let (mut journal, _) = Journal::open(&base).unwrap();
            journal.append(&ckpt(1)).unwrap();
            journal.append(&ckpt(2)).unwrap();
        }
        // Truncate the newest segment mid-record.
        let segments = list_segments(&base).unwrap();
        let (_, last) = segments.last().unwrap();
        let bytes = fs::read(last).unwrap();
        fs::write(last, &bytes[..bytes.len() - 5]).unwrap();
        let (_, recovery) = Journal::open(&base).unwrap();
        assert_eq!(recovery.state, Some(ckpt(1)));
        assert!(recovery.torn_tail);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_good() {
        let base = tmp_base("corrupt");
        {
            let (mut journal, _) = Journal::open(&base).unwrap();
            journal.append(&ckpt(1)).unwrap();
            journal.append(&ckpt(2)).unwrap();
            journal.append(&ckpt(3)).unwrap();
        }
        let segments = list_segments(&base).unwrap();
        let (_, last) = segments.last().unwrap();
        let mut bytes = fs::read(last).unwrap();
        // Flip a bit inside the second record's payload.
        let first_len = {
            let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
            RECORD_HEADER_LEN + len
        };
        bytes[first_len + RECORD_HEADER_LEN + 3] ^= 0x40;
        fs::write(last, &bytes).unwrap();
        let (_, recovery) = Journal::open(&base).unwrap();
        assert_eq!(recovery.state, Some(ckpt(1)));
        assert!(recovery.corrupt_stopped);
    }

    #[test]
    fn rotation_keeps_newest_state_and_prunes_history() {
        let base = tmp_base("rotate");
        {
            // Tiny budget: every append lands in its own segment.
            let (mut journal, _) = Journal::open_with(&base, 8).unwrap();
            for e in 1..=6 {
                journal.append(&ckpt(e)).unwrap();
            }
        }
        let segments = list_segments(&base).unwrap();
        assert!(segments.len() <= 2, "stale segments not pruned: {} left", segments.len());
        let (_, recovery) = Journal::open(&base).unwrap();
        assert_eq!(recovery.state, Some(ckpt(6)));
    }

    #[test]
    fn reopen_never_appends_to_old_segment() {
        let base = tmp_base("reopen");
        let first_segment;
        {
            let (mut journal, _) = Journal::open(&base).unwrap();
            journal.append(&ckpt(1)).unwrap();
            first_segment = journal.current_segment();
        }
        let (journal, recovery) = Journal::open(&base).unwrap();
        assert_ne!(journal.current_segment(), first_segment);
        assert_eq!(recovery.state, Some(ckpt(1)));
    }
}
