//! A bedside client for serve mode: one real pump, scripted monitors.
//!
//! [`PcaBedClient`] is the counterpart of a [`crate::host::ServeHost`].
//! It embeds a genuine [`PumpActor`] — the same device model the
//! simulator runs, device-local fail-safe watchdog included — inside a
//! tiny event loop, and speaks to the remote supervisor over a
//! [`Transport`]. The monitors (pulse oximeter, capnograph) are
//! *scripted*: the driving test or load generator injects vitals
//! directly with [`PcaBedClient::send_vital`], which is exactly what a
//! load generator or crash harness wants — full control over the
//! physiology story while the pump's safety behaviour stays real.
//!
//! Endpoint numbering follows the standard PCA bed wiring: oximeter 0,
//! capnograph 1, pump 2, supervisor 3.

use crate::clock::ServeClock;
use crate::transport::{Transport, TransportError};
use mcps_core::actors::{PumpActor, LOCAL_FAILSAFE_DEADLINE};
use mcps_core::msg::{NetAddress, NetOp, NetPayload};
use mcps_core::{IceMsg, PatientBody};
use mcps_device::pump::{PcaPump, PcaPumpConfig};
use mcps_net::fabric::EndpointId;
use mcps_patient::patient::{PatientParams, VirtualPatient};
use mcps_patient::vitals::VitalKind;
use mcps_sim::prelude::{Actor, ActorId, Context, Simulation};
use mcps_sim::rng::{RngFactory, SimRng};
use mcps_sim::time::SimTime;
use rand::Rng;
use std::time::{Duration, Instant};

/// The pulse oximeter's endpoint on a serve-mode bed.
pub const OX_EP: EndpointId = EndpointId::from_index(0);
/// The capnograph's endpoint.
pub const CAP_EP: EndpointId = EndpointId::from_index(1);
/// The pump's endpoint.
pub const PUMP_EP: EndpointId = EndpointId::from_index(2);
/// The supervisor's endpoint.
pub const SUP_EP: EndpointId = EndpointId::from_index(3);

/// Collects the pump's outgoing traffic in place of a network fabric.
#[derive(Debug, Default)]
struct Relay {
    outbound: Vec<NetOp>,
}

impl Actor<IceMsg> for Relay {
    fn handle(&mut self, msg: IceMsg, _ctx: &mut Context<'_, IceMsg>) {
        if let IceMsg::Net(NetOp::Send { from, payload, .. }) = msg {
            // Everything a bed device emits is headed for the
            // supervisor; the transport is the route.
            self.outbound.push(NetOp::Deliver { from, payload });
        }
    }
}

/// Re-dial policy for a client with a [`dialer`](PcaBedClient::with_reconnect):
/// bounded exponential backoff with multiplicative jitter.
///
/// Attempt `n` (zero-based) waits `min(max_ms, base_ms * 2^n)` scaled
/// by a uniform factor in `[0.5, 1.5)` drawn from a seeded stream —
/// deterministic per seed, but a fleet of beds with distinct seeds
/// won't stampede a restarted host in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconnectPolicy {
    /// First-attempt backoff, in wall milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling, in wall milliseconds.
    pub max_ms: u64,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy { base_ms: 20, max_ms: 2_000, jitter_seed: 11 }
    }
}

/// One PCA bed talking to a remote supervisor over a transport.
pub struct PcaBedClient<T: Transport> {
    sim: Simulation<IceMsg>,
    relay: ActorId,
    pump: ActorId,
    transport: T,
    clock: ServeClock,
    closed: bool,
    /// Produces a fresh transport on re-dial (`None` = dial failed,
    /// try again later). Absent: a transport error is permanent.
    dialer: Option<Box<dyn FnMut() -> Option<T>>>,
    policy: ReconnectPolicy,
    jitter: SimRng,
    attempt: u32,
    next_dial_at: Option<Instant>,
    reconnects: u64,
    dial_failures: u64,
}

impl<T: Transport> std::fmt::Debug for PcaBedClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcaBedClient").field("closed", &self.closed).finish()
    }
}

impl<T: Transport> PcaBedClient<T> {
    /// A bed with a default command-mode pump, fail-safe watchdog
    /// armed, clock running at `speed` sim-seconds per wall-second.
    pub fn new(transport: T, speed: f64) -> Self {
        let mut sim = Simulation::new(7);
        let relay = sim.add_actor("relay", Relay::default());
        let body = PatientBody::new(VirtualPatient::new(PatientParams::default()));
        let pump_actor =
            PumpActor::new(PcaPump::new(PcaPumpConfig::default()), body, relay, PUMP_EP)
                .with_supervision(LOCAL_FAILSAFE_DEADLINE)
                .with_fast_reannounce();
        let pump = sim.add_actor("pump", pump_actor);
        sim.schedule(SimTime::ZERO, pump, IceMsg::Tick);
        PcaBedClient {
            sim,
            relay,
            pump,
            transport,
            clock: ServeClock::new(speed),
            closed: false,
            dialer: None,
            policy: ReconnectPolicy::default(),
            jitter: RngFactory::new(11).stream("bed-reconnect"),
            attempt: 0,
            next_dial_at: None,
            reconnects: 0,
            dial_failures: 0,
        }
    }

    /// Arms automatic reconnection: on a transport error the client
    /// re-dials via `dialer` under `policy`'s backoff, re-announces its
    /// monitors on success, and resumes. (The pump re-associates
    /// itself through its own announces — at the fast unsupervised
    /// retry cadence, so one corrupted announce does not cost a full
    /// announce period.) Without this, a transport error permanently
    /// closes the client.
    pub fn with_reconnect(
        mut self,
        dialer: impl FnMut() -> Option<T> + 'static,
        policy: ReconnectPolicy,
    ) -> Self {
        self.dialer = Some(Box::new(dialer));
        self.policy = policy;
        self.jitter = RngFactory::new(policy.jitter_seed).stream("bed-reconnect");
        self
    }

    /// Successful re-dials so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Failed dial attempts so far.
    pub fn dial_failures(&self) -> u64 {
        self.dial_failures
    }

    /// The client's position on the (sped-up) simulation timeline.
    pub fn sim_now(&self) -> SimTime {
        self.clock.sim_now()
    }

    /// Whether the server side of the transport has gone away.
    pub fn server_closed(&self) -> bool {
        self.closed
    }

    /// Announces the two scripted monitors to the supervisor so the
    /// interlock's oximeter and capnograph slots can associate.
    pub fn announce_monitors(&mut self) {
        let ox = mcps_device::monitor::pulse_oximeter("OX-1");
        let cap = mcps_device::monitor::capnograph("CAP-1");
        for (ep, profile) in [(OX_EP, ox.profile().clone()), (CAP_EP, cap.profile().clone())] {
            self.push(NetOp::Deliver {
                from: ep,
                payload: NetPayload::Announce { profile, endpoint: ep },
            });
        }
    }

    /// Injects one vitals sample as if the matching monitor measured it
    /// now (SpO₂ comes from the oximeter endpoint, respiration from the
    /// capnograph).
    pub fn send_vital(&mut self, kind: VitalKind, value: f64) {
        let from = match kind {
            VitalKind::Spo2 => OX_EP,
            _ => CAP_EP,
        };
        self.push(NetOp::Deliver {
            from,
            payload: NetPayload::Data { kind, value, sampled_at: self.clock.sim_now() },
        });
    }

    /// The patient presses the bolus button.
    pub fn press_button(&mut self) {
        let at = self.clock.sim_now();
        self.sim.schedule(at, self.pump, IceMsg::PressButton);
    }

    /// One client round: attempt any due re-dial, deliver traffic from
    /// the supervisor to the pump, advance the bed simulation to
    /// wall-now, forward the pump's outgoing traffic. Safe to call
    /// after the server has died — the bed keeps running (that is the
    /// point of the crash harness), and with a dialer armed it finds
    /// its way back.
    pub fn step(&mut self) {
        self.try_reconnect();
        loop {
            if self.closed {
                break;
            }
            match self.transport.try_recv() {
                Ok(Some(NetOp::Send { from, to, payload })) => {
                    // Only the pump lives here; traffic for other
                    // destinations (checkpoint topics, monitor acks)
                    // has no consumer on this bed.
                    let for_pump = matches!(to, NetAddress::Endpoint(ep) if ep == PUMP_EP)
                        || matches!(to, NetAddress::Topic(_));
                    if for_pump {
                        let at = self.clock.sim_now();
                        self.sim.schedule(
                            at,
                            self.pump,
                            IceMsg::Net(NetOp::Deliver { from, payload }),
                        );
                    }
                }
                Ok(Some(NetOp::Deliver { .. })) => {}
                Ok(None) => break,
                Err(_) => {
                    self.on_disconnect();
                    break;
                }
            }
        }
        self.sim.run_until(self.clock.sim_now());
        let outbound = std::mem::take(
            &mut self.sim.actor_as_mut::<Relay>(self.relay).expect("relay actor").outbound,
        );
        for op in outbound {
            self.push(op);
        }
    }

    /// Whether the pump's device-local fail-safe latch is engaged.
    pub fn local_failsafe(&self) -> bool {
        self.pump_actor().local_failsafe()
    }

    /// Whether the pump currently permits bolus delivery.
    pub fn is_permitted(&self) -> bool {
        self.pump_actor().pump().is_permitted(self.sim.now())
    }

    /// First instant at or after `at` the pump applied a stop command.
    pub fn first_stop_at_or_after(&self, at: SimTime) -> Option<SimTime> {
        self.pump_actor().first_stop_at_or_after(at)
    }

    /// When the fail-safe latch last changed, from the pump's log.
    pub fn failsafe_log(&self) -> &[(SimTime, bool)] {
        self.pump_actor().failsafe_log()
    }

    /// The embedded pump actor, for deeper assertions.
    pub fn pump_actor(&self) -> &PumpActor {
        self.sim.actor_as::<PumpActor>(self.pump).expect("pump actor")
    }

    fn push(&mut self, op: NetOp) {
        if self.closed {
            return;
        }
        match self.transport.send(&op) {
            Ok(()) => {}
            Err(TransportError::Closed) | Err(TransportError::Io(_)) => self.on_disconnect(),
        }
    }

    /// Marks the link down and, with a dialer armed, schedules the
    /// next dial attempt under the backoff policy.
    fn on_disconnect(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if self.dialer.is_some() {
            self.schedule_dial();
        }
    }

    fn schedule_dial(&mut self) {
        let expo = self
            .policy
            .base_ms
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.policy.max_ms);
        let jitter: f64 = self.jitter.gen_range(0.5..1.5);
        let delay_ms = (expo as f64 * jitter).round() as u64;
        self.next_dial_at = Some(Instant::now() + Duration::from_millis(delay_ms));
    }

    /// Attempts a scheduled re-dial, if one is due.
    fn try_reconnect(&mut self) {
        if !self.closed || self.dialer.is_none() {
            return;
        }
        let Some(due) = self.next_dial_at else { return };
        if Instant::now() < due {
            return;
        }
        let dialed = self.dialer.as_mut().expect("checked dialer")();
        match dialed {
            Some(transport) => {
                self.transport = transport;
                self.closed = false;
                self.attempt = 0;
                self.next_dial_at = None;
                self.reconnects += 1;
                // Monitors are scripted (no actor re-announces them):
                // do it here so the interlock can re-associate. The
                // pump's own periodic announce re-binds its endpoint.
                self.announce_monitors();
            }
            None => {
                self.dial_failures += 1;
                self.attempt = self.attempt.saturating_add(1);
                self.schedule_dial();
            }
        }
    }
}
