//! The length-prefixed frame codec for serve-mode transports.
//!
//! A frame is `MAGIC (4 bytes) ++ length (u32 LE) ++ payload`, where
//! the payload is the JSON serialization of one [`NetOp`]. The magic
//! makes the stream self-synchronizing: a decoder that lands mid-frame
//! (or is fed garbage) scans forward to the next magic instead of
//! misinterpreting arbitrary bytes as a length and desynchronizing
//! forever. The scan advances one byte at a time past a bad candidate,
//! so a true frame start inside the skipped region is never jumped
//! over.

use mcps_core::msg::NetOp;

/// Frame start marker.
pub const MAGIC: [u8; 4] = *b"MCP1";

/// Upper bound on a frame payload. Real payloads are a few KiB
/// (profiles are the largest); anything claiming more is corruption.
pub const MAX_FRAME: usize = 1 << 20;

/// Encodes one [`NetOp`] as a framed byte sequence.
///
/// # Panics
///
/// Panics if the payload fails to serialize (all wire types are plain
/// data; this cannot happen for well-formed messages).
pub fn encode_frame(op: &NetOp) -> Vec<u8> {
    let body = serde_json::to_string(op).expect("NetOp serializes");
    let body = body.as_bytes();
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&u32::try_from(body.len()).expect("frame < 4 GiB").to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// An incremental frame decoder.
///
/// Feed arbitrary chunks with [`FrameDecoder::push`] (partial reads,
/// coalesced writes, anything) and drain complete messages with
/// [`FrameDecoder::next_frame`]. Corruption is skipped, counted, and
/// never stalls the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf` (compacted lazily).
    pos: usize,
    garbage_bytes: u64,
    frames_rejected: u64,
    frames_decoded: u64,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact consumed prefix before growing, keeping the buffer
        // bounded by (unconsumed + chunk) rather than the whole stream.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes skipped while hunting for a frame start.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage_bytes
    }

    /// Frames whose header or payload was rejected (oversized length,
    /// unparseable payload).
    pub fn frames_rejected(&self) -> u64 {
        self.frames_rejected
    }

    /// Frames successfully decoded.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Decodes the next complete message, if one is buffered.
    pub fn next_frame(&mut self) -> Option<NetOp> {
        loop {
            self.seek_magic();
            let avail = &self.buf[self.pos..];
            if avail.len() < 8 {
                return None;
            }
            let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
            if len > MAX_FRAME {
                // A corrupt length. Advance one byte (not past the
                // whole claimed frame): if this was noise that happened
                // to contain the magic, the real frame behind it is
                // still reachable.
                self.frames_rejected += 1;
                self.pos += 1;
                self.garbage_bytes += 1;
                continue;
            }
            if avail.len() < 8 + len {
                return None;
            }
            let payload = &avail[8..8 + len];
            match std::str::from_utf8(payload).ok().and_then(|s| serde_json::from_str(s).ok()) {
                Some(op) => {
                    self.pos += 8 + len;
                    self.frames_decoded += 1;
                    return Some(op);
                }
                None => {
                    // The bytes under this magic are not a frame.
                    // Resync one byte forward rather than skipping the
                    // claimed length — the next true frame may start
                    // anywhere inside it.
                    self.frames_rejected += 1;
                    self.pos += 1;
                    self.garbage_bytes += 1;
                }
            }
        }
    }

    /// Advances `pos` to the next magic (or near the buffer end),
    /// counting skipped bytes as garbage.
    fn seek_magic(&mut self) {
        while self.pos < self.buf.len() {
            let avail = &self.buf[self.pos..];
            if avail.len() < MAGIC.len() {
                // A strict prefix of the magic at the end of the buffer
                // might be a frame start split across reads: keep it.
                if MAGIC.starts_with(avail) {
                    return;
                }
                // Otherwise drop one byte and re-check the remainder.
                self.pos += 1;
                self.garbage_bytes += 1;
                continue;
            }
            if avail[..4] == MAGIC {
                return;
            }
            self.pos += 1;
            self.garbage_bytes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_core::msg::NetPayload;
    use mcps_net::fabric::EndpointId;
    use mcps_sim::time::SimTime;

    fn sample(i: u64) -> NetOp {
        NetOp::Deliver {
            from: EndpointId::from_index(0),
            payload: NetPayload::Data {
                kind: mcps_patient::vitals::VitalKind::Spo2,
                value: 90.0 + i as f64,
                sampled_at: SimTime::from_secs(i),
            },
        }
    }

    #[test]
    fn roundtrip_single_frame() {
        let op = sample(1);
        let mut dec = FrameDecoder::new();
        dec.push(&encode_frame(&op));
        assert_eq!(dec.next_frame(), Some(op));
        assert_eq!(dec.next_frame(), None);
        assert_eq!(dec.garbage_bytes(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let ops: Vec<NetOp> = (0..3).map(sample).collect();
        let mut bytes = Vec::new();
        for op in &ops {
            bytes.extend_from_slice(&encode_frame(op));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in bytes {
            dec.push(&[b]);
            while let Some(op) = dec.next_frame() {
                got.push(op);
            }
        }
        assert_eq!(got, ops);
        assert_eq!(dec.frames_rejected(), 0);
    }

    #[test]
    fn garbage_prefix_is_skipped_without_desync() {
        let op = sample(7);
        let mut dec = FrameDecoder::new();
        dec.push(b"\x00\xffnoise");
        dec.push(&encode_frame(&op));
        assert_eq!(dec.next_frame(), Some(op));
        assert!(dec.garbage_bytes() >= 7);
    }

    #[test]
    fn oversized_length_is_rejected_and_stream_recovers() {
        let op = sample(2);
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(b"junk");
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        dec.push(&encode_frame(&op));
        assert_eq!(dec.next_frame(), Some(op));
        assert!(dec.frames_rejected() >= 1);
    }
}
