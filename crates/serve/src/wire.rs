//! The length-prefixed frame codec for serve-mode transports.
//!
//! A frame is `MAGIC (4 bytes) ++ length (u32 LE) ++ header crc32
//! (u32 LE, over magic ++ length) ++ payload crc32 (u32 LE) ++
//! payload`, where the payload is the JSON serialization of one
//! [`NetOp`]. The magic makes the stream self-synchronizing: a decoder
//! that lands mid-frame (or is fed garbage) scans forward to the next
//! magic instead of misinterpreting arbitrary bytes as a length and
//! desynchronizing forever. The scan advances one byte at a time past
//! a bad candidate, so a true frame start inside the skipped region is
//! never jumped over.
//!
//! The CRCs are the chaos-hardening half. The payload checksum: a JSON
//! payload with a few flipped bits usually fails to parse, but
//! *usually* is not a safety argument — a lucky flip inside a numeric
//! field still parses and would silently alter a command id or fencing
//! epoch (a corrupted high epoch would poison a device's fence and
//! lock every later legitimate supervisor out). The *header* checksum
//! protects the length field itself: without it, one flipped bit in
//! the length makes the decoder trust a phantom frame of up to
//! [`MAX_FRAME`] bytes and stall — buffering, not delivering — until
//! that much real traffic has accumulated behind the corruption. With
//! both checksums a corrupted frame is rejected deterministically and
//! at once, the decoder resyncs, and the protocol's retry/heartbeat
//! machinery covers the loss.

use mcps_core::msg::NetOp;

/// Frame start marker.
pub const MAGIC: [u8; 4] = *b"MCP1";

/// Bytes before the payload: magic, length, header CRC32, payload
/// CRC32.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a frame payload. Real payloads are a few KiB
/// (profiles are the largest); anything claiming more is corruption.
pub const MAX_FRAME: usize = 1 << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial) over `bytes` — the same
/// checksum the journal uses for its records. Bitwise, no table: the
/// inputs are protocol-sized, not bulk data.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one [`NetOp`] as a framed byte sequence.
///
/// # Panics
///
/// Panics if the payload fails to serialize (all wire types are plain
/// data; this cannot happen for well-formed messages).
pub fn encode_frame(op: &NetOp) -> Vec<u8> {
    let body = serde_json::to_string(op).expect("NetOp serializes");
    let body = body.as_bytes();
    let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&u32::try_from(body.len()).expect("frame < 4 GiB").to_le_bytes());
    let hcrc = crc32(&frame[..8]);
    frame.extend_from_slice(&hcrc.to_le_bytes());
    frame.extend_from_slice(&crc32(body).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// An incremental frame decoder.
///
/// Feed arbitrary chunks with [`FrameDecoder::push`] (partial reads,
/// coalesced writes, anything) and drain complete messages with
/// [`FrameDecoder::next_frame`]. Corruption is skipped, counted, and
/// never stalls the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf` (compacted lazily).
    pos: usize,
    garbage_bytes: u64,
    frames_rejected: u64,
    frames_decoded: u64,
    crc_rejected: u64,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact consumed prefix before growing, keeping the buffer
        // bounded by (unconsumed + chunk) rather than the whole stream.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes skipped while hunting for a frame start.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage_bytes
    }

    /// Frames whose header or payload was rejected (oversized length,
    /// checksum mismatch, unparseable payload).
    pub fn frames_rejected(&self) -> u64 {
        self.frames_rejected
    }

    /// The subset of [`Self::frames_rejected`] caught by the payload
    /// checksum (corruption that might otherwise have parsed).
    pub fn crc_rejected(&self) -> u64 {
        self.crc_rejected
    }

    /// Frames successfully decoded.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Decodes the next complete message, if one is buffered.
    pub fn next_frame(&mut self) -> Option<NetOp> {
        loop {
            self.seek_magic();
            let avail = &self.buf[self.pos..];
            if avail.len() < HEADER_LEN {
                return None;
            }
            let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
            let want_hcrc = u32::from_le_bytes([avail[8], avail[9], avail[10], avail[11]]);
            let want_crc = u32::from_le_bytes([avail[12], avail[13], avail[14], avail[15]]);
            if crc32(&avail[..8]) != want_hcrc {
                // The length field can't be trusted. Rejecting here —
                // before waiting for `len` payload bytes — is what
                // keeps a corrupted length from stalling the stream:
                // trusting it would buffer up to MAX_FRAME bytes of
                // live traffic behind a phantom frame that never
                // completes.
                self.frames_rejected += 1;
                self.crc_rejected += 1;
                self.pos += 1;
                self.garbage_bytes += 1;
                continue;
            }
            if len > MAX_FRAME {
                // A corrupt length that checksums (hostile rather than
                // noisy input). Advance one byte (not past the whole
                // claimed frame): if this was noise that happened to
                // contain the magic, the real frame behind it is still
                // reachable.
                self.frames_rejected += 1;
                self.pos += 1;
                self.garbage_bytes += 1;
                continue;
            }
            if avail.len() < HEADER_LEN + len {
                return None;
            }
            let payload = &avail[HEADER_LEN..HEADER_LEN + len];
            if crc32(payload) != want_crc {
                // The bytes under this magic fail their checksum.
                // Resync one byte forward rather than skipping the
                // claimed length — the next true frame may start
                // anywhere inside it.
                self.frames_rejected += 1;
                self.crc_rejected += 1;
                self.pos += 1;
                self.garbage_bytes += 1;
                continue;
            }
            match std::str::from_utf8(payload).ok().and_then(|s| serde_json::from_str(s).ok()) {
                Some(op) => {
                    self.pos += HEADER_LEN + len;
                    self.frames_decoded += 1;
                    return Some(op);
                }
                None => {
                    // Checksum-valid but not a frame (garbage that
                    // checksums itself); same one-byte resync.
                    self.frames_rejected += 1;
                    self.pos += 1;
                    self.garbage_bytes += 1;
                }
            }
        }
    }

    /// Advances `pos` to the next magic (or near the buffer end),
    /// counting skipped bytes as garbage.
    fn seek_magic(&mut self) {
        while self.pos < self.buf.len() {
            let avail = &self.buf[self.pos..];
            if avail.len() < MAGIC.len() {
                // A strict prefix of the magic at the end of the buffer
                // might be a frame start split across reads: keep it.
                if MAGIC.starts_with(avail) {
                    return;
                }
                // Otherwise drop one byte and re-check the remainder.
                self.pos += 1;
                self.garbage_bytes += 1;
                continue;
            }
            if avail[..4] == MAGIC {
                return;
            }
            self.pos += 1;
            self.garbage_bytes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_core::msg::NetPayload;
    use mcps_net::fabric::EndpointId;
    use mcps_sim::time::SimTime;

    fn sample(i: u64) -> NetOp {
        NetOp::Deliver {
            from: EndpointId::from_index(0),
            payload: NetPayload::Data {
                kind: mcps_patient::vitals::VitalKind::Spo2,
                value: 90.0 + i as f64,
                sampled_at: SimTime::from_secs(i),
            },
        }
    }

    #[test]
    fn roundtrip_single_frame() {
        let op = sample(1);
        let mut dec = FrameDecoder::new();
        dec.push(&encode_frame(&op));
        assert_eq!(dec.next_frame(), Some(op));
        assert_eq!(dec.next_frame(), None);
        assert_eq!(dec.garbage_bytes(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let ops: Vec<NetOp> = (0..3).map(sample).collect();
        let mut bytes = Vec::new();
        for op in &ops {
            bytes.extend_from_slice(&encode_frame(op));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in bytes {
            dec.push(&[b]);
            while let Some(op) = dec.next_frame() {
                got.push(op);
            }
        }
        assert_eq!(got, ops);
        assert_eq!(dec.frames_rejected(), 0);
    }

    #[test]
    fn garbage_prefix_is_skipped_without_desync() {
        let op = sample(7);
        let mut dec = FrameDecoder::new();
        dec.push(b"\x00\xffnoise");
        dec.push(&encode_frame(&op));
        assert_eq!(dec.next_frame(), Some(op));
        assert!(dec.garbage_bytes() >= 7);
    }

    #[test]
    fn oversized_length_is_rejected_and_stream_recovers() {
        let op = sample(2);
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(b"junk");
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        dec.push(&encode_frame(&op));
        assert_eq!(dec.next_frame(), Some(op));
        assert!(dec.frames_rejected() >= 1);
    }

    /// Every single-bit corruption of a frame's payload must be caught
    /// by the checksum (never silently decoded as altered content), and
    /// the stream must recover on the next clean frame.
    #[test]
    fn any_payload_bit_flip_is_rejected_and_stream_recovers() {
        let op = sample(3);
        let clean = encode_frame(&op);
        let follow = sample(4);
        for byte in HEADER_LEN..clean.len() {
            for bit in 0..8 {
                let mut corrupted = clean.clone();
                corrupted[byte] ^= 1 << bit;
                let mut dec = FrameDecoder::new();
                dec.push(&corrupted);
                dec.push(&encode_frame(&follow));
                assert_eq!(
                    dec.next_frame(),
                    Some(follow.clone()),
                    "flip at byte {byte} bit {bit} produced a wrong decode"
                );
                assert!(dec.crc_rejected() >= 1, "flip at byte {byte} bit {bit} evaded the CRC");
            }
        }
    }

    /// Every single-bit corruption of a frame's *header* must be
    /// rejected immediately — in particular, a flipped length bit must
    /// not leave the decoder waiting for a phantom payload that
    /// swallows (and stalls) every frame behind it.
    #[test]
    fn any_header_bit_flip_is_rejected_without_stalling() {
        let op = sample(5);
        let clean = encode_frame(&op);
        let follow = sample(6);
        for byte in 0..HEADER_LEN {
            for bit in 0..8 {
                let mut corrupted = clean.clone();
                corrupted[byte] ^= 1 << bit;
                let mut dec = FrameDecoder::new();
                dec.push(&corrupted);
                // The follow frame is *smaller* than any inflated
                // length claim could demand, so it only decodes if the
                // corrupt header was rejected rather than trusted.
                dec.push(&encode_frame(&follow));
                assert_eq!(
                    dec.next_frame(),
                    Some(follow.clone()),
                    "flip at header byte {byte} bit {bit} stalled or desynced the stream"
                );
            }
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
