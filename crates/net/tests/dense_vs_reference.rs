//! Property tests holding the dense-routed [`Fabric`] to behavioural
//! equivalence with the tree-routed [`ReferenceFabric`].
//!
//! Both engines are driven with identical operation sequences —
//! subscribe/unsubscribe, link QoS overrides, outage plans, default-QoS
//! changes, publishes and unicasts at random instants — each with its
//! own RNG started from the same seed. Equivalence means:
//!
//! 1. identical planned deliveries for every publish and unicast,
//! 2. identical RNG consumption (the two streams are still in lockstep
//!    at the end of the sequence),
//! 3. identical per-link and aggregate [`LinkStats`], including the
//!    bit-exact floating-point latency accumulators,
//! 4. identical subscriber sets in identical order.
//!
//! This is what licenses every scenario to run on the dense engine:
//! the optimisation is proven invisible, not assumed to be.

use mcps_net::fabric::{EndpointId, Fabric, PlannedDelivery, Topic};
use mcps_net::qos::{LinkQos, OutagePlan};
use mcps_net::reference::ReferenceFabric;
use mcps_sim::rng::RngFactory;
use mcps_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::RngCore;

/// One encoded operation: `(opcode, a, b, topic, millis)`.
type Op = (u8, u32, u32, u32, u64);

const TOPICS: [&str; 4] = ["vitals/spo2", "vitals/etco2", "bed1/ice/announce", "pump/status"];

fn qos_variant(sel: u64) -> LinkQos {
    match sel % 4 {
        0 => LinkQos::ideal(),
        1 => LinkQos::ideal()
            .with_latency(SimDuration::from_millis(5))
            .with_jitter(SimDuration::from_millis(2)),
        2 => LinkQos::wifi(),
        _ => LinkQos::ideal().with_loss(0.5),
    }
}

/// Applies `ops` to both engines in lockstep, asserting equivalence at
/// every observable point. Returns an error message on divergence.
fn check_equivalence(endpoints: u32, ops: &[Op], seed: u64) -> Result<(), String> {
    let mut dense = Fabric::new();
    let mut tree = ReferenceFabric::new();
    let mut dense_eps: Vec<EndpointId> = Vec::new();
    let mut tree_eps: Vec<EndpointId> = Vec::new();
    for i in 0..endpoints {
        let name = format!("ep{i}");
        dense_eps.push(dense.add_endpoint(&name));
        tree_eps.push(tree.add_endpoint(&name));
    }
    let n = endpoints;
    let mut dense_rng = RngFactory::new(seed).stream("equivalence");
    let mut tree_rng = RngFactory::new(seed).stream("equivalence");
    let mut scratch: Vec<PlannedDelivery> = Vec::new();

    for &(code, a, b, t, ms) in ops {
        let (ai, bi) = ((a % n) as usize, (b % n) as usize);
        let topic = Topic::new(TOPICS[(t as usize) % TOPICS.len()]);
        let now = SimTime::from_millis(ms);
        match code % 7 {
            0 => {
                dense.subscribe(dense_eps[ai], topic.clone());
                tree.subscribe(tree_eps[ai], topic);
            }
            1 => {
                dense.unsubscribe(dense_eps[ai], &topic);
                tree.unsubscribe(tree_eps[ai], &topic);
            }
            2 => {
                let qos = qos_variant(ms);
                dense.set_link(dense_eps[ai], dense_eps[bi], qos);
                tree.set_link(tree_eps[ai], tree_eps[bi], qos);
            }
            3 => {
                let plan = OutagePlan::none()
                    .with_outage(now, now + SimDuration::from_millis(100 + ms % 400));
                dense.set_outages(dense_eps[ai], dense_eps[bi], plan.clone());
                tree.set_outages(tree_eps[ai], tree_eps[bi], plan);
            }
            4 => {
                let qos = qos_variant(ms / 3);
                dense.set_default_qos(qos);
                tree.set_default_qos(qos);
            }
            5 => {
                scratch.clear();
                dense.publish_into(dense_eps[ai], &topic, now, &mut dense_rng, &mut scratch);
                let expected = tree.publish(tree_eps[ai], &topic, now, &mut tree_rng);
                if scratch != expected {
                    return Err(format!(
                        "publish({topic}) diverged: dense {scratch:?} vs reference {expected:?}"
                    ));
                }
            }
            _ => {
                let got = dense.unicast(dense_eps[ai], dense_eps[bi], now, &mut dense_rng);
                let expected = tree.unicast(tree_eps[ai], tree_eps[bi], now, &mut tree_rng);
                if got != expected {
                    return Err(format!(
                        "unicast({ai}->{bi}) diverged: dense {got:?} vs reference {expected:?}"
                    ));
                }
            }
        }
        // Subscriber sets must agree (same members, same order) after
        // every mutation, not just at the end.
        let ds: Vec<EndpointId> = dense.subscribers(&Topic::new(TOPICS[0])).collect();
        let ts: Vec<EndpointId> = tree.subscribers(&Topic::new(TOPICS[0])).collect();
        if ds != ts {
            return Err(format!("subscriber sets diverged: dense {ds:?} vs reference {ts:?}"));
        }
    }

    // RNG lockstep: if either engine consumed a different number of
    // draws anywhere, the streams are desynchronised and the next
    // value differs (ChaCha streams have no short cycles).
    let (d, t) = (dense_rng.next_u64(), tree_rng.next_u64());
    if d != t {
        return Err(format!("RNG streams desynchronised: {d:#x} vs {t:#x}"));
    }

    // Per-link and aggregate statistics, including bit-exact Welford
    // latency accumulators.
    for &from in &dense_eps {
        for &to in &dense_eps {
            let (ds, ts) = (dense.link_stats(from, to), tree.link_stats(from, to));
            if ds != ts {
                return Err(format!("link_stats({from}->{to}) diverged: {ds:?} vs {ts:?}"));
            }
            if dense.link_qos(from, to) != tree.link_qos(from, to) {
                return Err(format!("link_qos({from}->{to}) diverged"));
            }
        }
    }
    let (dt, tt) = (dense.total_stats(), tree.total_stats());
    if dt != tt {
        return Err(format!("total_stats diverged: {dt:?} vs {tt:?}"));
    }
    Ok(())
}

proptest! {
    /// Random topologies and op sequences: the dense engine is
    /// indistinguishable from the reference.
    #[test]
    fn dense_fabric_equals_reference(
        endpoints in 2u32..8,
        ops in proptest::collection::vec(
            (0u8..7, 0u32..8, 0u32..8, 0u32..4, 0u64..2_000),
            1..120,
        ),
        seed in 0u64..1_000,
    ) {
        if let Err(msg) = check_equivalence(endpoints, &ops, seed) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Publish-heavy sequences with every endpoint subscribed: the
    /// fan-out hot path specifically, across lossy links and outages.
    #[test]
    fn dense_fanout_equals_reference(
        endpoints in 3u32..8,
        publishes in proptest::collection::vec((0u32..8, 0u64..5_000), 1..80),
        loss_sel in 0u64..4,
        seed in 0u64..1_000,
    ) {
        let mut ops: Vec<Op> = Vec::new();
        // Everyone subscribes to topic 0; a lossy default QoS and one
        // outage window stress the drop paths.
        for e in 0..endpoints {
            ops.push((0, e, 0, 0, 0));
        }
        ops.push((4, 0, 0, 0, loss_sel * 3));
        ops.push((3, 0, 1, 0, 1_000));
        for &(from, ms) in &publishes {
            ops.push((5, from, 0, 0, ms));
        }
        if let Err(msg) = check_equivalence(endpoints, &ops, seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}
