//! # mcps-net — simulated clinical network fabric
//!
//! The unreliable medium between MCPS components. Provides
//!
//! * [`qos`] — parametric link models (latency, jitter, loss) and
//!   scheduled outages,
//! * [`fabric`] — endpoints, directed links and publish/subscribe
//!   topic routing with per-link statistics,
//! * [`monitor`] — stream-freshness and command-deadline tracking, the
//!   raw material of fail-safe logic.
//!
//! The fabric is a pure planning model: it decides who receives a
//! message and when, and the caller (the ICE network controller in
//! `mcps-core`) schedules those deliveries on the simulation kernel.
//!
//! ## Example
//!
//! ```
//! use mcps_net::fabric::{Fabric, Topic};
//! use mcps_net::qos::LinkQos;
//! use mcps_sim::rng::RngFactory;
//! use mcps_sim::time::SimTime;
//!
//! let mut fabric = Fabric::new();
//! fabric.set_default_qos(LinkQos::wifi());
//! let oximeter = fabric.add_endpoint("oximeter");
//! let supervisor = fabric.add_endpoint("supervisor");
//! let topic = Topic::new("vitals/spo2");
//! fabric.subscribe(supervisor, topic.clone());
//!
//! let mut rng = RngFactory::new(1).stream("net");
//! let deliveries = fabric.publish(oximeter, &topic, SimTime::ZERO, &mut rng);
//! assert!(deliveries.len() <= 1); // wifi may drop it
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod monitor;
pub mod qos;

pub use fabric::{EndpointId, Fabric, LinkStats, PlannedDelivery, Topic};
pub use monitor::{DeadlineTracker, FreshnessMonitor};
pub use qos::{Delivery, LinkQos, OutagePlan};
