//! # mcps-net — simulated clinical network fabric
//!
//! The unreliable medium between MCPS components. Provides
//!
//! * [`qos`] — parametric link models (latency, jitter, loss) and
//!   scheduled outages,
//! * [`fabric`] — endpoints, directed links and publish/subscribe
//!   topic routing with per-link statistics,
//! * [`monitor`] — stream-freshness and command-deadline tracking, the
//!   raw material of fail-safe logic,
//! * [`reference`] — the original tree-routed fabric, kept as the
//!   behavioural baseline the dense engine is property-tested against.
//!
//! The fabric is a pure planning model: it decides who receives a
//! message and when, and the caller (the ICE network controller in
//! `mcps-core`) schedules those deliveries on the simulation kernel.
//!
//! Routing is *dense*: topics are interned to [`TopicId`]s, link
//! state (QoS, outages, statistics) lives in packed records behind one
//! Fx-hashed lookup, per-topic route caches precompute each hop's
//! effective QoS, and [`Fabric::publish_into`] plans fan-out into a
//! caller-reused scratch buffer without allocating. On the E7b fan-out
//! benchmark (`bench_fabric` → `BENCH_net.json`) the dense engine
//! routes 91.7 M msgs/s against the tree-routed
//! [`reference::ReferenceFabric`]'s 10.2 M msgs/s at 256-subscriber
//! fan-out (~9×; 2–3× on stochastic wifi planning, where sampling
//! dominates) while remaining byte-identical in deliveries, RNG
//! consumption and statistics (see `tests/dense_vs_reference.rs`).
//!
//! ## Example
//!
//! ```
//! use mcps_net::fabric::{Fabric, Topic};
//! use mcps_net::qos::LinkQos;
//! use mcps_sim::rng::RngFactory;
//! use mcps_sim::time::SimTime;
//!
//! let mut fabric = Fabric::new();
//! fabric.set_default_qos(LinkQos::wifi());
//! let oximeter = fabric.add_endpoint("oximeter");
//! let supervisor = fabric.add_endpoint("supervisor");
//! let topic = Topic::new("vitals/spo2");
//! fabric.subscribe(supervisor, topic.clone());
//!
//! let mut rng = RngFactory::new(1).stream("net");
//! let deliveries = fabric.publish(oximeter, &topic, SimTime::ZERO, &mut rng);
//! assert!(deliveries.len() <= 1); // wifi may drop it
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod monitor;
pub mod qos;
pub mod reference;

pub use fabric::{EndpointId, Fabric, LinkStats, PlannedDelivery, Topic, TopicId};
pub use monitor::{DeadlineTracker, FreshnessMonitor};
pub use qos::{Delivery, LinkQos, OutagePlan};
