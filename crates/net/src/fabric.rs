//! The network fabric: endpoints, links and topic routing.
//!
//! [`Fabric`] is a *pure* model — it decides, per message, who receives
//! it and when, but does not itself own an event queue. The ICE network
//! controller (in `mcps-core`) consults the fabric and schedules the
//! resulting deliveries on the simulation kernel. This keeps the fabric
//! independently testable and reusable under any executive.
//!
//! # Dense routing
//!
//! The routing core is built like the packed model checker rather than
//! like a configuration store, because it *is* the hot path: every
//! vital-sign sample in every scenario flows through [`Fabric::publish`].
//!
//! * **Topics are interned.** The first subscription (or
//!   [`Fabric::intern_topic`]) assigns a dense [`TopicId`]; subscriber
//!   sets live in a `Vec<Vec<EndpointId>>` indexed by that id, each set
//!   kept sorted ascending. Routing a publish is one Fx-hash lookup of
//!   the topic name plus a linear walk of a contiguous slice — no
//!   string `Ord` comparisons, no tree chasing.
//! * **Links are packed records.** QoS override, outage plan and
//!   [`LinkStats`] of a directed link are one record
//!   in a `Vec`, found via an Fx-hashed `u64` key
//!   (`from << 32 | to`). A unicast fetches its record once and does
//!   everything on it, where the tree-routed baseline walked `links`,
//!   `outages` and `stats` separately (five walks per message).
//! * **Planning is zero-alloc.** [`Fabric::publish_into`] appends
//!   planned deliveries to a caller-owned scratch buffer and iterates
//!   the subscriber slice directly; the allocating [`Fabric::publish`]
//!   is a convenience wrapper. The ICE network controller holds a
//!   reusable scratch buffer, so steady-state publishing performs no
//!   heap allocation at all.
//! * **Routes are cached and pre-resolved.** Each topic keeps the
//!   resolved fan-out of its most recent publisher: link record index,
//!   effective QoS (override or default), the common ≤1-window outage
//!   plan inlined, and — for links with zero loss and zero jitter — the
//!   precomputed constant delay that [`LinkQos::sample`] would return.
//!   A configuration generation counter invalidates these snapshots on
//!   any `set_link`/`set_outages`/`set_default_qos`, so steady-state
//!   fan-out is a walk over contiguous pre-resolved hops with zero
//!   hash lookups and no per-message float round-trips on
//!   deterministic links (the RNG draw is still consumed, keeping the
//!   stream in lockstep with the reference).
//!
//! Subscriber order (ascending [`EndpointId`]) and per-subscriber QoS
//! sampling are identical to the tree-routed
//! [`ReferenceFabric`](crate::reference::ReferenceFabric), so RNG
//! consumption — and therefore every scenario outcome — is byte-for-byte
//! unchanged. Property tests in `tests/dense_vs_reference.rs` and the
//! golden-output pins in the workspace `tests/fabric_golden.rs` hold the
//! two engines to equivalence.

use crate::qos::{Delivery, LinkQos, OutagePlan};
use fxhash::FxHashMap;
use mcps_sim::stats::Welford;
use mcps_sim::time::{SimDuration, SimTime};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifies an endpoint attached to a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(u32);

impl EndpointId {
    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Builds an id from a raw index. Ids are normally issued by
    /// [`Fabric::add_endpoint`]; this constructor exists for drivers
    /// that address endpoints across a process boundary (the serve-mode
    /// wire protocol), where both sides agree on indices by convention.
    pub const fn from_index(index: u32) -> Self {
        EndpointId(index)
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep#{}", self.0)
    }
}

/// Identifies an interned topic within one [`Fabric`].
///
/// Dense (`0..topic_count`), assigned on first subscription or by
/// [`Fabric::intern_topic`]. Holding a `TopicId` lets a hot caller skip
/// the name lookup entirely via [`Fabric::publish_topic_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(u32);

impl TopicId {
    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topic#{}", self.0)
    }
}

/// A publish/subscribe topic name.
///
/// Topics are flat strings by convention structured like
/// `"vitals/spo2"` or `"pump/status"`; matching is exact. The name is
/// reference-counted (`Arc<str>`), so the clone a router or message
/// header takes per hop is a pointer bump, not a heap copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Topic(Arc<str>);

impl Topic {
    /// Creates a topic.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(!name.is_empty(), "topic name must not be empty");
        Topic(Arc::from(name))
    }

    /// The topic name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared name storage (used by the interning registry).
    fn arc(&self) -> Arc<str> {
        Arc::clone(&self.0)
    }
}

// Manual serde impls: the derive would require `Serialize` on
// `Arc<str>`, which the workspace serde shim does not provide. A topic
// is just its name on the wire.
impl Serialize for Topic {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.0.to_string())
    }
}

impl Deserialize for Topic {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Str(s) if !s.is_empty() => Ok(Topic::new(s)),
            serde::Content::Str(_) => Err(serde::Error::new("topic name must not be empty")),
            other => Err(serde::Error::expected("string", other)),
        }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Topic {
    fn from(s: &str) -> Self {
        Topic::new(s)
    }
}

/// Per-directed-link transmission statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages offered to the link.
    pub sent: u64,
    /// Messages that will arrive.
    pub delivered: u64,
    /// Messages lost (random loss or outage).
    pub dropped: u64,
    /// One-way latency of delivered messages, seconds.
    pub latency: Welford,
}

impl LinkStats {
    /// Delivered / sent (1.0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Writes the link's QoS figures into a [`Telemetry`] bus under
    /// `prefix` (`{prefix}.sent`, `{prefix}.latency_mean_s`, …), so
    /// experiment binaries aggregate network statistics through the
    /// same sink as every other metric.
    ///
    /// [`Telemetry`]: mcps_sim::metrics::Telemetry
    pub fn export_into(&self, bus: &mut mcps_sim::metrics::Telemetry, prefix: &str) {
        // One reusable key buffer instead of a fresh `format!` String
        // per metric — this runs per link per export tick.
        let mut key = String::with_capacity(prefix.len() + 16);
        key.push_str(prefix);
        key.push('.');
        let base = key.len();
        let with = |suffix: &str, key: &mut String| {
            key.truncate(base);
            key.push_str(suffix);
        };
        with("sent", &mut key);
        bus.incr(&key, self.sent);
        with("delivered", &mut key);
        bus.incr(&key, self.delivered);
        with("dropped", &mut key);
        bus.incr(&key, self.dropped);
        with("delivery_ratio", &mut key);
        bus.observe(&key, self.delivery_ratio());
        if self.latency.count() > 0 {
            with("latency_mean_s", &mut key);
            bus.observe(&key, self.latency.mean());
        }
    }
}

/// One planned delivery produced by [`Fabric::publish`] or
/// [`Fabric::unicast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedDelivery {
    /// Receiving endpoint.
    pub to: EndpointId,
    /// Arrival instant.
    pub at: SimTime,
}

/// Configuration of one directed link: the optional QoS override
/// (`None` = track the fabric's default at send time) and the outage
/// plan. Statistics live in a parallel array (see [`Fabric::stats`]) so
/// the per-message counter writes stay on densely packed cache lines.
#[derive(Debug, Clone, Default)]
struct LinkConfig {
    qos: Option<LinkQos>,
    outages: OutagePlan,
}

/// How one hop's delivery fate is decided per message.
///
/// A link with zero loss and zero jitter is *deterministic*: its
/// sampled delay is the same value every message, so the route cache
/// precomputes it (both the [`SimDuration`] added to `now` and the
/// seconds value pushed into the latency accumulator — bit-identical to
/// what [`LinkQos::sample`] would produce, because both are pure
/// functions of the constant base latency). The per-message RNG draw
/// that [`bernoulli`](mcps_sim::rng::bernoulli) would consume is still
/// made — as one raw `next_u64` — so the stream stays in lockstep with
/// the reference engine; only the redundant float arithmetic is
/// skipped. Lossy or jittery links sample in full.
#[derive(Debug, Clone, Copy)]
enum HopFate {
    Deterministic { delay: SimDuration, delay_s: f64 },
    Sampled { qos: LinkQos },
}

/// One resolved fan-out hop: everything a publish needs per subscriber,
/// read from a single contiguous cache line.
///
/// `fate` resolves the *effective* QoS (override or the fabric
/// default), and `window` inlines the common ≤1-window outage plan — an
/// empty plan is encoded as the never-matching `(ZERO, ZERO)`; only
/// plans with several windows fall back to the full [`OutagePlan`] via
/// `multi_window`.
#[derive(Debug, Clone)]
struct RouteHop {
    to: EndpointId,
    link: u32,
    multi_window: bool,
    fate: HopFate,
    window: (SimTime, SimTime),
}

/// Resolved fan-out routes of one topic for one publisher, in ascending
/// receiver order (publisher excluded).
///
/// Link records are append-only and mutated in place, so cached indices
/// stay valid; the resolved QoS and outage snapshots are guarded by
/// `gen`, a copy of the fabric's configuration generation counter.
/// The cache is rebuilt when the topic's subscriber set changes, when
/// any link/default configuration changes (`gen` mismatch), or when a
/// different endpoint publishes — in every scenario shape a data topic
/// has exactly one publisher, so steady state is a pure array walk with
/// zero hash lookups.
#[derive(Debug, Clone)]
struct TopicRoutes {
    from: EndpointId,
    gen: u64,
    hops: Vec<RouteHop>,
}

/// Packs a directed link into the table key: `from` in the high word,
/// `to` in the low word. Sorting by key equals sorting by `(from, to)`.
#[inline]
const fn link_key(from: EndpointId, to: EndpointId) -> u64 {
    ((from.0 as u64) << 32) | to.0 as u64
}

/// Endpoints, directed links with QoS, outages, and topic subscriptions.
///
/// See the [module docs](self) for the dense-routing layout.
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    names: Vec<String>,
    default_qos: LinkQos,
    /// Topic name → dense id. Fx-hashed: keys are short process-local
    /// strings, DoS resistance buys nothing here.
    topic_ids: FxHashMap<Arc<str>, TopicId>,
    /// Interned topics by id (introspection / iteration).
    topics: Vec<Topic>,
    /// Subscriber sets by topic id, each sorted ascending so fan-out
    /// order (and therefore RNG draw order) matches the tree-routed
    /// reference exactly.
    subs: Vec<Vec<EndpointId>>,
    /// Per-topic resolved routes of the most recent publisher (`None`
    /// until first publish or after a subscription change).
    routes: Vec<Option<TopicRoutes>>,
    /// Packed link key → index into `links` / `stats`.
    link_index: FxHashMap<u64, u32>,
    /// Link configuration in creation order; `stats[i]` and
    /// `link_keys[i]` parallel `links[i]` (statistics are split out so
    /// the hot counter writes land on contiguous cache lines; the
    /// packed keys are kept for ordered aggregation).
    links: Vec<LinkConfig>,
    stats: Vec<LinkStats>,
    link_keys: Vec<u64>,
    /// Bumped on every configuration change (`set_link`, `set_outages`,
    /// `set_default_qos`); route caches snapshot it.
    cfg_gen: u64,
}

impl Fabric {
    /// An empty fabric whose unspecified links use [`LinkQos::wired`].
    pub fn new() -> Self {
        Fabric::default()
    }

    /// An empty fabric pre-sized for a known scenario shape: endpoint,
    /// topic and link tables are allocated up front so registration is
    /// O(1) amortized with no rehash/regrow churn. Campus-scale
    /// scenarios register tens of thousands of topics; growing the
    /// Fx-hashed registry through doublings would rehash every interned
    /// key several times over.
    pub fn with_capacity(endpoints: usize, topics: usize, links: usize) -> Self {
        let mut f = Fabric::default();
        f.reserve(endpoints, topics, links);
        f
    }

    /// Reserves capacity for at least `endpoints`, `topics` and `links`
    /// additional registrations (see [`Fabric::with_capacity`]).
    pub fn reserve(&mut self, endpoints: usize, topics: usize, links: usize) {
        self.names.reserve(endpoints);
        self.topic_ids.reserve(topics);
        self.topics.reserve(topics);
        self.subs.reserve(topics);
        self.routes.reserve(topics);
        self.link_index.reserve(links);
        self.links.reserve(links);
        self.stats.reserve(links);
        self.link_keys.reserve(links);
    }

    /// Sets the QoS used by links without an explicit override.
    pub fn set_default_qos(&mut self, qos: LinkQos) {
        self.default_qos = qos;
        self.cfg_gen += 1;
    }

    /// Registers an endpoint.
    pub fn add_endpoint(&mut self, name: &str) -> EndpointId {
        let id = EndpointId(u32::try_from(self.names.len()).expect("too many endpoints"));
        self.names.push(name.to_owned());
        id
    }

    /// The registered name of an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this fabric.
    pub fn endpoint_name(&self, id: EndpointId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.names.len()
    }

    /// Index of the record for `from → to`, creating it on first use.
    #[inline]
    fn link_record_index(&mut self, from: EndpointId, to: EndpointId) -> usize {
        let key = link_key(from, to);
        if let Some(&i) = self.link_index.get(&key) {
            i as usize
        } else {
            let i = u32::try_from(self.links.len()).expect("too many links");
            self.links.push(LinkConfig::default());
            self.stats.push(LinkStats::default());
            self.link_keys.push(key);
            self.link_index.insert(key, i);
            i as usize
        }
    }

    /// Overrides QoS on the directed link `from → to`.
    pub fn set_link(&mut self, from: EndpointId, to: EndpointId, qos: LinkQos) {
        let i = self.link_record_index(from, to);
        self.links[i].qos = Some(qos);
        self.cfg_gen += 1;
    }

    /// Overrides QoS symmetrically on both directions between `a` and `b`.
    pub fn set_link_symmetric(&mut self, a: EndpointId, b: EndpointId, qos: LinkQos) {
        self.set_link(a, b, qos);
        self.set_link(b, a, qos);
    }

    /// Installs an outage plan on the directed link `from → to`.
    pub fn set_outages(&mut self, from: EndpointId, to: EndpointId, plan: OutagePlan) {
        let i = self.link_record_index(from, to);
        self.links[i].outages = plan;
        self.cfg_gen += 1;
    }

    /// Appends one outage window to the directed link `from → to`,
    /// keeping any windows already installed ([`Fabric::set_outages`]
    /// replaces the whole plan instead).
    ///
    /// # Panics
    ///
    /// Panics if `down_until` does not follow `down_from`.
    pub fn add_outage(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        down_from: SimTime,
        down_until: SimTime,
    ) {
        let i = self.link_record_index(from, to);
        let plan = std::mem::take(&mut self.links[i].outages);
        self.links[i].outages = plan.with_outage(down_from, down_until);
        self.cfg_gen += 1;
    }

    /// Severs every link *between* the two endpoint groups in both
    /// directions over `[down_from, down_until)` — a network partition.
    /// Links within each group are untouched, and the windows append to
    /// whatever outage plans the affected links already carry. Use
    /// [`SimTime::MAX`] as `down_until` for a partition that never
    /// heals.
    pub fn partition(
        &mut self,
        group_a: &[EndpointId],
        group_b: &[EndpointId],
        down_from: SimTime,
        down_until: SimTime,
    ) {
        for &a in group_a {
            for &b in group_b {
                if a == b {
                    continue;
                }
                self.add_outage(a, b, down_from, down_until);
                self.add_outage(b, a, down_from, down_until);
            }
        }
    }

    /// The effective QoS of `from → to`.
    pub fn link_qos(&self, from: EndpointId, to: EndpointId) -> LinkQos {
        self.link_index
            .get(&link_key(from, to))
            .and_then(|&i| self.links[i as usize].qos)
            .unwrap_or(self.default_qos)
    }

    /// Interns `topic`, returning its dense id (stable for the lifetime
    /// of the fabric). Idempotent; subscribing also interns.
    pub fn intern_topic(&mut self, topic: &Topic) -> TopicId {
        if let Some(&id) = self.topic_ids.get(topic.as_str()) {
            return id;
        }
        let id = TopicId(u32::try_from(self.topics.len()).expect("too many topics"));
        self.topic_ids.insert(topic.arc(), id);
        self.topics.push(topic.clone());
        self.subs.push(Vec::new());
        self.routes.push(None);
        id
    }

    /// The id of an already-interned topic, if any.
    pub fn topic_id(&self, topic: &Topic) -> Option<TopicId> {
        self.topic_ids.get(topic.as_str()).copied()
    }

    /// The interned topic with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this fabric.
    pub fn topic(&self, id: TopicId) -> &Topic {
        &self.topics[id.0 as usize]
    }

    /// Number of interned topics.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }

    /// Subscribes `endpoint` to `topic`.
    pub fn subscribe(&mut self, endpoint: EndpointId, topic: Topic) {
        let id = self.intern_topic(&topic);
        let set = &mut self.subs[id.0 as usize];
        if let Err(pos) = set.binary_search(&endpoint) {
            set.insert(pos, endpoint);
            self.routes[id.0 as usize] = None;
        }
    }

    /// Removes a subscription (no-op if absent).
    pub fn unsubscribe(&mut self, endpoint: EndpointId, topic: &Topic) {
        if let Some(id) = self.topic_id(topic) {
            let set = &mut self.subs[id.0 as usize];
            if let Ok(pos) = set.binary_search(&endpoint) {
                set.remove(pos);
                self.routes[id.0 as usize] = None;
            }
        }
    }

    /// Current subscribers of `topic` in ascending id order (empty if
    /// none). Borrows the interned subscriber set — no allocation.
    pub fn subscribers(&self, topic: &Topic) -> impl Iterator<Item = EndpointId> + '_ {
        self.topic_id(topic)
            .map(|id| self.subs[id.0 as usize].as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Plans the transmission of one unicast message sent at `now`.
    /// Returns `None` if the message is lost (loss or outage);
    /// statistics are updated either way.
    ///
    /// One link-table lookup per message: outage check, QoS sample and
    /// all three statistics counters operate on the same record.
    pub fn unicast(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        now: SimTime,
        rng: &mut impl RngCore,
    ) -> Option<PlannedDelivery> {
        let default_qos = self.default_qos;
        let i = self.link_record_index(from, to);
        let qos = self.links[i].qos.unwrap_or(default_qos);
        let down = self.links[i].outages.is_down(now);
        let st = &mut self.stats[i];
        st.sent += 1;
        if down {
            st.dropped += 1;
            return None;
        }
        match qos.sample(now, rng) {
            Delivery::Deliver { at } => {
                st.delivered += 1;
                st.latency.push((at - now).as_secs_f64());
                Some(PlannedDelivery { to, at })
            }
            Delivery::Dropped => {
                st.dropped += 1;
                None
            }
        }
    }

    /// Plans delivery of a published message to every subscriber of
    /// `topic` except the publisher itself, appending to `out`. Each
    /// subscriber's link is sampled independently, in ascending
    /// [`EndpointId`] order.
    ///
    /// This is the zero-alloc planning primitive: the caller owns (and
    /// reuses) the output buffer, and the subscriber slice is iterated
    /// in place.
    pub fn publish_into(
        &mut self,
        from: EndpointId,
        topic: &Topic,
        now: SimTime,
        rng: &mut impl RngCore,
        out: &mut Vec<PlannedDelivery>,
    ) {
        if let Some(id) = self.topic_id(topic) {
            self.publish_topic_into(from, id, now, rng, out);
        }
    }

    /// Resolves the fan-out routes of topic `t` for publisher `from`:
    /// link record index, effective QoS and outage fast path per
    /// receiver, snapshotted at the current configuration generation.
    fn build_routes(&mut self, t: usize, from: EndpointId) -> TopicRoutes {
        let receivers: Vec<EndpointId> =
            self.subs[t].iter().copied().filter(|&e| e != from).collect();
        let gen = self.cfg_gen;
        let default_qos = self.default_qos;
        let hops = receivers
            .into_iter()
            .map(|to| {
                let i = self.link_record_index(from, to);
                let cfg = &self.links[i];
                let qos = cfg.qos.unwrap_or(default_qos);
                let fate = if qos.loss_prob == 0.0 && qos.jitter.is_zero() {
                    // Same arithmetic as `LinkQos::sample` on constants.
                    let delay = SimDuration::from_secs_f64(qos.base_latency.as_secs_f64().max(0.0));
                    HopFate::Deterministic { delay, delay_s: delay.as_secs_f64() }
                } else {
                    HopFate::Sampled { qos }
                };
                let (window, multi_window) = match cfg.outages.windows() {
                    [] => ((SimTime::ZERO, SimTime::ZERO), false),
                    [w] => (*w, false),
                    _ => ((SimTime::ZERO, SimTime::ZERO), true),
                };
                RouteHop { to, link: i as u32, multi_window, fate, window }
            })
            .collect();
        TopicRoutes { from, gen, hops }
    }

    /// [`Fabric::publish_into`] for a pre-interned topic: skips even
    /// the name lookup. Steady-state fan-out walks the topic's cached
    /// route table — receiver and link record resolved once per
    /// (topic, publisher) — with zero hash lookups and zero
    /// allocations.
    pub fn publish_topic_into(
        &mut self,
        from: EndpointId,
        topic: TopicId,
        now: SimTime,
        rng: &mut impl RngCore,
        out: &mut Vec<PlannedDelivery>,
    ) {
        let t = topic.0 as usize;
        // Take the route table out of `self` so the statistics can be
        // borrowed mutably while walking it.
        let routes = match self.routes[t].take() {
            Some(r) if r.from == from && r.gen == self.cfg_gen => r,
            _ => self.build_routes(t, from),
        };
        let links = &self.links;
        let stats = &mut self.stats;
        for hop in &routes.hops {
            let st = &mut stats[hop.link as usize];
            st.sent += 1;
            let down = if hop.multi_window {
                links[hop.link as usize].outages.is_down(now)
            } else {
                hop.window.0 <= now && now < hop.window.1
            };
            if down {
                st.dropped += 1;
                continue;
            }
            match hop.fate {
                HopFate::Deterministic { delay, delay_s } => {
                    // Consume the draw `bernoulli` would have made so
                    // the stream stays in lockstep with the reference.
                    let _ = rng.next_u64();
                    st.delivered += 1;
                    st.latency.push(delay_s);
                    out.push(PlannedDelivery { to: hop.to, at: now + delay });
                }
                HopFate::Sampled { qos } => match qos.sample(now, rng) {
                    Delivery::Deliver { at } => {
                        st.delivered += 1;
                        st.latency.push((at - now).as_secs_f64());
                        out.push(PlannedDelivery { to: hop.to, at });
                    }
                    Delivery::Dropped => {
                        st.dropped += 1;
                    }
                },
            }
        }
        self.routes[t] = Some(routes);
    }

    /// Allocating convenience wrapper over [`Fabric::publish_into`].
    pub fn publish(
        &mut self,
        from: EndpointId,
        topic: &Topic,
        now: SimTime,
        rng: &mut impl RngCore,
    ) -> Vec<PlannedDelivery> {
        let mut out = Vec::new();
        self.publish_into(from, topic, now, rng, &mut out);
        out
    }

    /// Statistics of the directed link `from → to`.
    pub fn link_stats(&self, from: EndpointId, to: EndpointId) -> LinkStats {
        self.link_index
            .get(&link_key(from, to))
            .map(|&i| self.stats[i as usize])
            .unwrap_or_default()
    }

    /// Aggregate statistics over all links.
    ///
    /// Links are merged in ascending `(from, to)` order — the same
    /// order the tree-routed reference iterates its stats map — so the
    /// floating-point latency merge is bit-identical to it.
    pub fn total_stats(&self) -> LinkStats {
        let mut order: Vec<usize> = (0..self.stats.len()).collect();
        order.sort_unstable_by_key(|&i| self.link_keys[i]);
        let mut total = LinkStats::default();
        for i in order {
            let s = &self.stats[i];
            if s.sent == 0 {
                // Never transmitted (record created by `set_link` /
                // `set_outages` alone); the reference has no stats
                // entry for such links.
                continue;
            }
            total.sent += s.sent;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
            total.latency.merge(&s.latency);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;
    use mcps_sim::time::SimDuration;

    fn rng() -> mcps_sim::rng::SimRng {
        RngFactory::new(8).stream("fabric")
    }

    fn two_endpoint_fabric() -> (Fabric, EndpointId, EndpointId) {
        let mut f = Fabric::new();
        let a = f.add_endpoint("oximeter");
        let b = f.add_endpoint("supervisor");
        (f, a, b)
    }

    #[test]
    fn unicast_uses_link_qos() {
        let (mut f, a, b) = two_endpoint_fabric();
        f.set_link(a, b, LinkQos::ideal().with_latency(SimDuration::from_millis(7)));
        let mut r = rng();
        let d = f.unicast(a, b, SimTime::from_secs(1), &mut r).unwrap();
        assert_eq!(d.to, b);
        assert_eq!(d.at, SimTime::from_secs(1) + SimDuration::from_millis(7));
        assert_eq!(f.link_stats(a, b).sent, 1);
        assert_eq!(f.link_stats(a, b).delivered, 1);
    }

    #[test]
    fn publish_reaches_all_subscribers_except_sender() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let pubr = f.add_endpoint("pub");
        let s1 = f.add_endpoint("s1");
        let s2 = f.add_endpoint("s2");
        let t = Topic::new("vitals/spo2");
        f.subscribe(s1, t.clone());
        f.subscribe(s2, t.clone());
        f.subscribe(pubr, t.clone()); // publisher also subscribed: must not self-deliver
        let mut r = rng();
        let out = f.publish(pubr, &t, SimTime::ZERO, &mut r);
        let mut tos: Vec<_> = out.iter().map(|d| d.to).collect();
        tos.sort();
        assert_eq!(tos, vec![s1, s2]);
    }

    #[test]
    fn publish_into_reuses_caller_buffer() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let p = f.add_endpoint("p");
        let s = f.add_endpoint("s");
        let t = Topic::new("x");
        f.subscribe(s, t.clone());
        let mut r = rng();
        let mut buf = Vec::with_capacity(4);
        f.publish_into(p, &t, SimTime::ZERO, &mut r, &mut buf);
        assert_eq!(buf.len(), 1);
        let cap = buf.capacity();
        buf.clear();
        f.publish_into(p, &t, SimTime::ZERO, &mut r, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), cap, "steady-state publish must not reallocate");
    }

    #[test]
    fn topic_interning_is_dense_and_idempotent() {
        let mut f = Fabric::new();
        let a = Topic::new("a");
        let b = Topic::new("b");
        let ia = f.intern_topic(&a);
        let ib = f.intern_topic(&b);
        assert_eq!(ia.index(), 0);
        assert_eq!(ib.index(), 1);
        assert_eq!(f.intern_topic(&a), ia);
        assert_eq!(f.topic_id(&b), Some(ib));
        assert_eq!(f.topic(ia), &a);
        assert_eq!(f.topic_count(), 2);
        assert_eq!(f.topic_id(&Topic::new("never-seen")), None);
    }

    #[test]
    fn subscriber_sets_stay_sorted_and_deduplicated() {
        let mut f = Fabric::new();
        let eps: Vec<_> = (0..5).map(|i| f.add_endpoint(&format!("e{i}"))).collect();
        let t = Topic::new("t");
        // Subscribe in descending order, with a duplicate.
        for &e in eps.iter().rev() {
            f.subscribe(e, t.clone());
        }
        f.subscribe(eps[2], t.clone());
        assert_eq!(f.subscribers(&t).collect::<Vec<_>>(), eps);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let p = f.add_endpoint("p");
        let s = f.add_endpoint("s");
        let t = Topic::new("x");
        f.subscribe(s, t.clone());
        f.unsubscribe(s, &t);
        let mut r = rng();
        assert!(f.publish(p, &t, SimTime::ZERO, &mut r).is_empty());
        assert_eq!(f.subscribers(&t).count(), 0);
    }

    #[test]
    fn outage_drops_everything_in_window() {
        let (mut f, a, b) = two_endpoint_fabric();
        f.set_link(a, b, LinkQos::ideal());
        f.set_outages(
            a,
            b,
            OutagePlan::none().with_outage(SimTime::from_secs(10), SimTime::from_secs(20)),
        );
        let mut r = rng();
        assert!(f.unicast(a, b, SimTime::from_secs(5), &mut r).is_some());
        assert!(f.unicast(a, b, SimTime::from_secs(15), &mut r).is_none());
        assert!(f.unicast(a, b, SimTime::from_secs(25), &mut r).is_some());
        let s = f.link_stats(a, b);
        assert_eq!((s.sent, s.delivered, s.dropped), (3, 2, 1));
    }

    #[test]
    fn add_outage_appends_instead_of_replacing() {
        let (mut f, a, b) = two_endpoint_fabric();
        f.set_link(a, b, LinkQos::ideal());
        f.set_outages(
            a,
            b,
            OutagePlan::none().with_outage(SimTime::from_secs(10), SimTime::from_secs(20)),
        );
        f.add_outage(a, b, SimTime::from_secs(30), SimTime::from_secs(40));
        let mut r = rng();
        assert!(f.unicast(a, b, SimTime::from_secs(15), &mut r).is_none(), "first window kept");
        assert!(f.unicast(a, b, SimTime::from_secs(25), &mut r).is_some());
        assert!(f.unicast(a, b, SimTime::from_secs(35), &mut r).is_none(), "appended window");
    }

    #[test]
    fn partition_severs_cross_group_links_both_ways_only() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let a1 = f.add_endpoint("a1");
        let a2 = f.add_endpoint("a2");
        let b1 = f.add_endpoint("b1");
        f.partition(&[a1, a2], &[b1], SimTime::from_secs(100), SimTime::MAX);
        let mut r = rng();
        let now = SimTime::from_secs(150);
        assert!(f.unicast(a1, b1, now, &mut r).is_none(), "a→b severed");
        assert!(f.unicast(b1, a2, now, &mut r).is_none(), "b→a severed");
        assert!(f.unicast(a1, a2, now, &mut r).is_some(), "intra-group link survives");
        assert!(
            f.unicast(a1, b1, SimTime::from_secs(50), &mut r).is_some(),
            "pre-partition traffic flows"
        );
    }

    #[test]
    fn lossy_link_stats_accumulate() {
        let (mut f, a, b) = two_endpoint_fabric();
        f.set_link(a, b, LinkQos::ideal().with_loss(0.5));
        let mut r = rng();
        for _ in 0..1_000 {
            let _ = f.unicast(a, b, SimTime::ZERO, &mut r);
        }
        let s = f.link_stats(a, b);
        assert_eq!(s.sent, 1_000);
        assert!(s.delivery_ratio() > 0.4 && s.delivery_ratio() < 0.6, "{}", s.delivery_ratio());
        assert_eq!(s.delivered + s.dropped, s.sent);
    }

    #[test]
    fn total_stats_merge_links() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let a = f.add_endpoint("a");
        let b = f.add_endpoint("b");
        let c = f.add_endpoint("c");
        let mut r = rng();
        f.unicast(a, b, SimTime::ZERO, &mut r);
        f.unicast(a, c, SimTime::ZERO, &mut r);
        // A configured-but-unused link must not perturb the aggregate.
        f.set_link(b, c, LinkQos::congested());
        assert_eq!(f.total_stats().sent, 2);
        assert_eq!(f.total_stats().delivered, 2);
    }

    #[test]
    fn late_default_qos_change_applies_to_unconfigured_links() {
        let (mut f, a, b) = two_endpoint_fabric();
        let mut r = rng();
        // Create the link record with a transmission under the initial
        // default, then change the default: the next transmission must
        // see the new default (records without an override track the
        // fabric default at send time, like the reference).
        let _ = f.unicast(a, b, SimTime::ZERO, &mut r);
        f.set_default_qos(LinkQos::ideal().with_latency(SimDuration::from_millis(9)));
        let d = f.unicast(a, b, SimTime::from_secs(1), &mut r).unwrap();
        assert_eq!(d.at, SimTime::from_secs(1) + SimDuration::from_millis(9));
    }

    #[test]
    fn endpoint_names_roundtrip() {
        let (f, a, b) = two_endpoint_fabric();
        assert_eq!(f.endpoint_name(a), "oximeter");
        assert_eq!(f.endpoint_name(b), "supervisor");
        assert_eq!(f.endpoint_count(), 2);
        assert_eq!(a.to_string(), "ep#0");
    }

    #[test]
    #[should_panic(expected = "topic name")]
    fn empty_topic_rejected() {
        let _ = Topic::new("");
    }
}
