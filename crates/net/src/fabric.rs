//! The network fabric: endpoints, links and topic routing.
//!
//! [`Fabric`] is a *pure* model — it decides, per message, who receives
//! it and when, but does not itself own an event queue. The ICE network
//! controller (in `mcps-core`) consults the fabric and schedules the
//! resulting deliveries on the simulation kernel. This keeps the fabric
//! independently testable and reusable under any executive.

use crate::qos::{Delivery, LinkQos, OutagePlan};
use mcps_sim::stats::Welford;
use mcps_sim::time::SimTime;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Identifies an endpoint attached to a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(u32);

impl EndpointId {
    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep#{}", self.0)
    }
}

/// A publish/subscribe topic name.
///
/// Topics are flat strings by convention structured like
/// `"vitals/spo2"` or `"pump/status"`; matching is exact. The name is
/// reference-counted (`Arc<str>`), so the clone a router or message
/// header takes per hop is a pointer bump, not a heap copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Topic(Arc<str>);

impl Topic {
    /// Creates a topic.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(!name.is_empty(), "topic name must not be empty");
        Topic(Arc::from(name))
    }

    /// The topic name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

// Manual serde impls: the derive would require `Serialize` on
// `Arc<str>`, which the workspace serde shim does not provide. A topic
// is just its name on the wire.
impl Serialize for Topic {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.0.to_string())
    }
}

impl Deserialize for Topic {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Str(s) if !s.is_empty() => Ok(Topic::new(s)),
            serde::Content::Str(_) => Err(serde::Error::new("topic name must not be empty")),
            other => Err(serde::Error::expected("string", other)),
        }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Topic {
    fn from(s: &str) -> Self {
        Topic::new(s)
    }
}

/// Per-directed-link transmission statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages offered to the link.
    pub sent: u64,
    /// Messages that will arrive.
    pub delivered: u64,
    /// Messages lost (random loss or outage).
    pub dropped: u64,
    /// One-way latency of delivered messages, seconds.
    pub latency: Welford,
}

impl LinkStats {
    /// Delivered / sent (1.0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Writes the link's QoS figures into a [`Telemetry`] bus under
    /// `prefix` (`{prefix}.sent`, `{prefix}.latency_mean_s`, …), so
    /// experiment binaries aggregate network statistics through the
    /// same sink as every other metric.
    ///
    /// [`Telemetry`]: mcps_sim::metrics::Telemetry
    pub fn export_into(&self, bus: &mut mcps_sim::metrics::Telemetry, prefix: &str) {
        // One reusable key buffer instead of a fresh `format!` String
        // per metric — this runs per link per export tick.
        let mut key = String::with_capacity(prefix.len() + 16);
        key.push_str(prefix);
        key.push('.');
        let base = key.len();
        let with = |suffix: &str, key: &mut String| {
            key.truncate(base);
            key.push_str(suffix);
        };
        with("sent", &mut key);
        bus.incr(&key, self.sent);
        with("delivered", &mut key);
        bus.incr(&key, self.delivered);
        with("dropped", &mut key);
        bus.incr(&key, self.dropped);
        with("delivery_ratio", &mut key);
        bus.observe(&key, self.delivery_ratio());
        if self.latency.count() > 0 {
            with("latency_mean_s", &mut key);
            bus.observe(&key, self.latency.mean());
        }
    }
}

/// One planned delivery produced by [`Fabric::publish`] or
/// [`Fabric::unicast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedDelivery {
    /// Receiving endpoint.
    pub to: EndpointId,
    /// Arrival instant.
    pub at: SimTime,
}

/// Endpoints, directed links with QoS, outages, and topic subscriptions.
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    names: Vec<String>,
    default_qos: LinkQos,
    links: BTreeMap<(EndpointId, EndpointId), LinkQos>,
    outages: BTreeMap<(EndpointId, EndpointId), OutagePlan>,
    subs: BTreeMap<Topic, BTreeSet<EndpointId>>,
    stats: BTreeMap<(EndpointId, EndpointId), LinkStats>,
}

impl Fabric {
    /// An empty fabric whose unspecified links use [`LinkQos::wired`].
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Sets the QoS used by links without an explicit override.
    pub fn set_default_qos(&mut self, qos: LinkQos) {
        self.default_qos = qos;
    }

    /// Registers an endpoint.
    pub fn add_endpoint(&mut self, name: &str) -> EndpointId {
        let id = EndpointId(u32::try_from(self.names.len()).expect("too many endpoints"));
        self.names.push(name.to_owned());
        id
    }

    /// The registered name of an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this fabric.
    pub fn endpoint_name(&self, id: EndpointId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.names.len()
    }

    /// Overrides QoS on the directed link `from → to`.
    pub fn set_link(&mut self, from: EndpointId, to: EndpointId, qos: LinkQos) {
        self.links.insert((from, to), qos);
    }

    /// Overrides QoS symmetrically on both directions between `a` and `b`.
    pub fn set_link_symmetric(&mut self, a: EndpointId, b: EndpointId, qos: LinkQos) {
        self.set_link(a, b, qos);
        self.set_link(b, a, qos);
    }

    /// Installs an outage plan on the directed link `from → to`.
    pub fn set_outages(&mut self, from: EndpointId, to: EndpointId, plan: OutagePlan) {
        self.outages.insert((from, to), plan);
    }

    /// The effective QoS of `from → to`.
    pub fn link_qos(&self, from: EndpointId, to: EndpointId) -> LinkQos {
        self.links.get(&(from, to)).copied().unwrap_or(self.default_qos)
    }

    /// Subscribes `endpoint` to `topic`.
    pub fn subscribe(&mut self, endpoint: EndpointId, topic: Topic) {
        self.subs.entry(topic).or_default().insert(endpoint);
    }

    /// Removes a subscription (no-op if absent).
    pub fn unsubscribe(&mut self, endpoint: EndpointId, topic: &Topic) {
        if let Some(set) = self.subs.get_mut(topic) {
            set.remove(&endpoint);
        }
    }

    /// Current subscribers of `topic` (empty if none).
    pub fn subscribers(&self, topic: &Topic) -> Vec<EndpointId> {
        self.subs.get(topic).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// Plans the transmission of one unicast message sent at `now`.
    /// Returns `None` if the message is lost (loss or outage);
    /// statistics are updated either way.
    pub fn unicast(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        now: SimTime,
        rng: &mut impl RngCore,
    ) -> Option<PlannedDelivery> {
        let stats = self.stats.entry((from, to)).or_default();
        stats.sent += 1;
        let down = self.outages.get(&(from, to)).is_some_and(|p| p.is_down(now));
        if down {
            stats.dropped += 1;
            return None;
        }
        let qos = self.links.get(&(from, to)).copied().unwrap_or(self.default_qos);
        match qos.sample(now, rng) {
            Delivery::Deliver { at } => {
                let stats = self.stats.entry((from, to)).or_default();
                stats.delivered += 1;
                stats.latency.push((at - now).as_secs_f64());
                Some(PlannedDelivery { to, at })
            }
            Delivery::Dropped => {
                self.stats.entry((from, to)).or_default().dropped += 1;
                None
            }
        }
    }

    /// Plans delivery of a published message to every subscriber of
    /// `topic` except the publisher itself. Each subscriber's link is
    /// sampled independently.
    pub fn publish(
        &mut self,
        from: EndpointId,
        topic: &Topic,
        now: SimTime,
        rng: &mut impl RngCore,
    ) -> Vec<PlannedDelivery> {
        let receivers: Vec<EndpointId> = self
            .subs
            .get(topic)
            .map(|s| s.iter().copied().filter(|&e| e != from).collect())
            .unwrap_or_default();
        receivers.into_iter().filter_map(|to| self.unicast(from, to, now, rng)).collect()
    }

    /// Statistics of the directed link `from → to`.
    pub fn link_stats(&self, from: EndpointId, to: EndpointId) -> LinkStats {
        self.stats.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Aggregate statistics over all links.
    pub fn total_stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for s in self.stats.values() {
            total.sent += s.sent;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
            total.latency.merge(&s.latency);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;
    use mcps_sim::time::SimDuration;

    fn rng() -> mcps_sim::rng::SimRng {
        RngFactory::new(8).stream("fabric")
    }

    fn two_endpoint_fabric() -> (Fabric, EndpointId, EndpointId) {
        let mut f = Fabric::new();
        let a = f.add_endpoint("oximeter");
        let b = f.add_endpoint("supervisor");
        (f, a, b)
    }

    #[test]
    fn unicast_uses_link_qos() {
        let (mut f, a, b) = two_endpoint_fabric();
        f.set_link(a, b, LinkQos::ideal().with_latency(SimDuration::from_millis(7)));
        let mut r = rng();
        let d = f.unicast(a, b, SimTime::from_secs(1), &mut r).unwrap();
        assert_eq!(d.to, b);
        assert_eq!(d.at, SimTime::from_secs(1) + SimDuration::from_millis(7));
        assert_eq!(f.link_stats(a, b).sent, 1);
        assert_eq!(f.link_stats(a, b).delivered, 1);
    }

    #[test]
    fn publish_reaches_all_subscribers_except_sender() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let pubr = f.add_endpoint("pub");
        let s1 = f.add_endpoint("s1");
        let s2 = f.add_endpoint("s2");
        let t = Topic::new("vitals/spo2");
        f.subscribe(s1, t.clone());
        f.subscribe(s2, t.clone());
        f.subscribe(pubr, t.clone()); // publisher also subscribed: must not self-deliver
        let mut r = rng();
        let out = f.publish(pubr, &t, SimTime::ZERO, &mut r);
        let mut tos: Vec<_> = out.iter().map(|d| d.to).collect();
        tos.sort();
        assert_eq!(tos, vec![s1, s2]);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let p = f.add_endpoint("p");
        let s = f.add_endpoint("s");
        let t = Topic::new("x");
        f.subscribe(s, t.clone());
        f.unsubscribe(s, &t);
        let mut r = rng();
        assert!(f.publish(p, &t, SimTime::ZERO, &mut r).is_empty());
        assert!(f.subscribers(&t).is_empty());
    }

    #[test]
    fn outage_drops_everything_in_window() {
        let (mut f, a, b) = two_endpoint_fabric();
        f.set_link(a, b, LinkQos::ideal());
        f.set_outages(
            a,
            b,
            OutagePlan::none().with_outage(SimTime::from_secs(10), SimTime::from_secs(20)),
        );
        let mut r = rng();
        assert!(f.unicast(a, b, SimTime::from_secs(5), &mut r).is_some());
        assert!(f.unicast(a, b, SimTime::from_secs(15), &mut r).is_none());
        assert!(f.unicast(a, b, SimTime::from_secs(25), &mut r).is_some());
        let s = f.link_stats(a, b);
        assert_eq!((s.sent, s.delivered, s.dropped), (3, 2, 1));
    }

    #[test]
    fn lossy_link_stats_accumulate() {
        let (mut f, a, b) = two_endpoint_fabric();
        f.set_link(a, b, LinkQos::ideal().with_loss(0.5));
        let mut r = rng();
        for _ in 0..1_000 {
            let _ = f.unicast(a, b, SimTime::ZERO, &mut r);
        }
        let s = f.link_stats(a, b);
        assert_eq!(s.sent, 1_000);
        assert!(s.delivery_ratio() > 0.4 && s.delivery_ratio() < 0.6, "{}", s.delivery_ratio());
        assert_eq!(s.delivered + s.dropped, s.sent);
    }

    #[test]
    fn total_stats_merge_links() {
        let mut f = Fabric::new();
        f.set_default_qos(LinkQos::ideal());
        let a = f.add_endpoint("a");
        let b = f.add_endpoint("b");
        let c = f.add_endpoint("c");
        let mut r = rng();
        f.unicast(a, b, SimTime::ZERO, &mut r);
        f.unicast(a, c, SimTime::ZERO, &mut r);
        assert_eq!(f.total_stats().sent, 2);
    }

    #[test]
    fn endpoint_names_roundtrip() {
        let (f, a, b) = two_endpoint_fabric();
        assert_eq!(f.endpoint_name(a), "oximeter");
        assert_eq!(f.endpoint_name(b), "supervisor");
        assert_eq!(f.endpoint_count(), 2);
        assert_eq!(a.to_string(), "ep#0");
    }

    #[test]
    #[should_panic(expected = "topic name")]
    fn empty_topic_rejected() {
        let _ = Topic::new("");
    }
}
