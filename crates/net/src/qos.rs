//! Link quality-of-service models.
//!
//! The paper's interoperability agenda hinges on the network between
//! devices and supervisor being an explicit, unreliable component whose
//! failure modes the system design must tolerate. [`LinkQos`] is a
//! parametric model of one directed link: base latency, jitter, loss
//! and scheduled outages.

use mcps_sim::rng::{bernoulli, normal};
use mcps_sim::time::{SimDuration, SimTime};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Stochastic delivery model of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQos {
    /// Median one-way latency.
    pub base_latency: SimDuration,
    /// Standard deviation of Gaussian jitter (truncated at zero delay).
    pub jitter: SimDuration,
    /// Independent per-message loss probability (0–1).
    pub loss_prob: f64,
}

impl LinkQos {
    /// A perfect link: zero latency, zero jitter, zero loss.
    pub const fn ideal() -> Self {
        LinkQos { base_latency: SimDuration::ZERO, jitter: SimDuration::ZERO, loss_prob: 0.0 }
    }

    /// A dedicated wired clinical network: 2 ms ± 0.5 ms, no loss.
    pub const fn wired() -> Self {
        LinkQos {
            base_latency: SimDuration::from_millis(2),
            jitter: SimDuration::from_micros(500),
            loss_prob: 0.0,
        }
    }

    /// Shared hospital Wi-Fi: 20 ms ± 10 ms, 1 % loss.
    pub const fn wifi() -> Self {
        LinkQos {
            base_latency: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(10),
            loss_prob: 0.01,
        }
    }

    /// A badly congested segment: 250 ms ± 120 ms, 10 % loss.
    pub const fn congested() -> Self {
        LinkQos {
            base_latency: SimDuration::from_millis(250),
            jitter: SimDuration::from_millis(120),
            loss_prob: 0.10,
        }
    }

    /// Builder-style latency override.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.base_latency = latency;
        self
    }

    /// Builder-style jitter override.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder-style loss override (clamped to `[0, 1]`).
    pub fn with_loss(mut self, loss_prob: f64) -> Self {
        self.loss_prob = loss_prob.clamp(0.0, 1.0);
        self
    }

    /// Samples the fate of one message sent at `now`.
    #[inline]
    pub fn sample(&self, now: SimTime, rng: &mut impl RngCore) -> Delivery {
        if bernoulli(rng, self.loss_prob) {
            return Delivery::Dropped;
        }
        let jitter_s =
            if self.jitter.is_zero() { 0.0 } else { normal(rng, 0.0, self.jitter.as_secs_f64()) };
        let delay_s = (self.base_latency.as_secs_f64() + jitter_s).max(0.0);
        Delivery::Deliver { at: now + SimDuration::from_secs_f64(delay_s) }
    }
}

impl Default for LinkQos {
    fn default() -> Self {
        LinkQos::wired()
    }
}

/// Outcome of one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delivery {
    /// The message arrives at the given instant.
    Deliver {
        /// Arrival time.
        at: SimTime,
    },
    /// The message is lost.
    Dropped,
}

/// Scheduled total outages of a link (maintenance, partition, roaming).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutagePlan {
    windows: Vec<(SimTime, SimTime)>,
}

impl OutagePlan {
    /// No outages.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an outage on `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn with_outage(mut self, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "outage window must have positive length");
        self.windows.push((from, to));
        self
    }

    /// Whether the link is down at `t`.
    #[inline]
    pub fn is_down(&self, t: SimTime) -> bool {
        self.windows.iter().any(|&(a, b)| a <= t && t < b)
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;

    fn rng() -> mcps_sim::rng::SimRng {
        RngFactory::new(5).stream("qos")
    }

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let mut r = rng();
        let q = LinkQos::ideal();
        for _ in 0..100 {
            assert_eq!(
                q.sample(SimTime::from_secs(1), &mut r),
                Delivery::Deliver { at: SimTime::from_secs(1) }
            );
        }
    }

    #[test]
    fn loss_rate_matches_config() {
        let mut r = rng();
        let q = LinkQos::ideal().with_loss(0.2);
        let n = 20_000;
        let dropped =
            (0..n).filter(|_| q.sample(SimTime::ZERO, &mut r) == Delivery::Dropped).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn latency_centres_on_base() {
        let mut r = rng();
        let q = LinkQos::wired();
        let mut total = 0.0;
        let n = 5_000;
        for _ in 0..n {
            match q.sample(SimTime::ZERO, &mut r) {
                Delivery::Deliver { at } => total += at.as_secs_f64(),
                Delivery::Dropped => panic!("wired link should not drop"),
            }
        }
        let mean_ms = total / n as f64 * 1e3;
        assert!((mean_ms - 2.0).abs() < 0.2, "mean latency {mean_ms} ms");
    }

    #[test]
    fn delay_never_negative() {
        let mut r = rng();
        let q = LinkQos::ideal()
            .with_latency(SimDuration::from_millis(1))
            .with_jitter(SimDuration::from_millis(50));
        let now = SimTime::from_secs(3);
        for _ in 0..2_000 {
            if let Delivery::Deliver { at } = q.sample(now, &mut r) {
                assert!(at >= now);
            }
        }
    }

    #[test]
    fn outage_plan_windows() {
        let plan = OutagePlan::none()
            .with_outage(SimTime::from_secs(10), SimTime::from_secs(20))
            .with_outage(SimTime::from_secs(30), SimTime::from_secs(31));
        assert!(!plan.is_down(SimTime::from_secs(9)));
        assert!(plan.is_down(SimTime::from_secs(10)));
        assert!(plan.is_down(SimTime::from_secs(19)));
        assert!(!plan.is_down(SimTime::from_secs(20)));
        assert!(plan.is_down(SimTime::from_secs(30)));
        assert_eq!(plan.windows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_outage_rejected() {
        let _ = OutagePlan::none().with_outage(SimTime::from_secs(5), SimTime::from_secs(5));
    }

    #[test]
    fn builder_clamps_loss() {
        assert_eq!(LinkQos::ideal().with_loss(7.0).loss_prob, 1.0);
        assert_eq!(LinkQos::ideal().with_loss(-1.0).loss_prob, 0.0);
    }
}
