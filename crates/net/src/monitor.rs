//! Stream-freshness and deadline monitoring.
//!
//! Safety interlocks must *know* when their inputs are stale: a pump
//! that keeps infusing while the oximeter's reports are stuck in a
//! partitioned network is exactly the failure the paper warns about.
//! [`FreshnessMonitor`] tracks per-stream arrival recency and
//! [`DeadlineTracker`] scores request/response latency against a
//! deadline.

use mcps_sim::stats::Welford;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tracks the last arrival time of named streams and flags staleness.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FreshnessMonitor {
    last_seen: BTreeMap<String, SimTime>,
    timeout: SimDuration,
}

impl FreshnessMonitor {
    /// Creates a monitor that deems a stream stale `timeout` after its
    /// last arrival.
    pub fn new(timeout: SimDuration) -> Self {
        FreshnessMonitor { last_seen: BTreeMap::new(), timeout }
    }

    /// The configured staleness timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Records an arrival on `stream` at `now`.
    pub fn observe(&mut self, stream: &str, now: SimTime) {
        // Steady state is a fresh timestamp on a known stream: update
        // in place and only allocate the owned key on first arrival.
        if let Some(t) = self.last_seen.get_mut(stream) {
            *t = now;
        } else {
            self.last_seen.insert(stream.to_owned(), now);
        }
    }

    /// Last arrival on `stream`, if any.
    pub fn last_seen(&self, stream: &str) -> Option<SimTime> {
        self.last_seen.get(stream).copied()
    }

    /// Whether `stream` is stale at `now`. A stream that has *never*
    /// arrived is always stale — absence of data must fail safe.
    pub fn is_stale(&self, stream: &str, now: SimTime) -> bool {
        match self.last_seen.get(stream) {
            Some(&t) => now.saturating_since(t) > self.timeout,
            None => true,
        }
    }

    /// Streams (of those ever observed) that are stale at `now`.
    pub fn stale_streams(&self, now: SimTime) -> Vec<&str> {
        self.last_seen
            .iter()
            .filter(|(_, &t)| now.saturating_since(t) > self.timeout)
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

/// Scores completed request/response (or command/acknowledgement)
/// round trips against a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlineTracker {
    deadline: SimDuration,
    met: u64,
    missed: u64,
    unanswered: u64,
    latency: Welford,
}

impl DeadlineTracker {
    /// Creates a tracker with the given deadline.
    pub fn new(deadline: SimDuration) -> Self {
        DeadlineTracker { deadline, met: 0, missed: 0, unanswered: 0, latency: Welford::new() }
    }

    /// The configured deadline.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Records a completed round trip that took `elapsed`.
    pub fn record(&mut self, elapsed: SimDuration) {
        self.latency.push(elapsed.as_secs_f64());
        if elapsed <= self.deadline {
            self.met += 1;
        } else {
            self.missed += 1;
        }
    }

    /// Records a request that never completed (counts as a miss of the
    /// worst kind).
    pub fn record_unanswered(&mut self) {
        self.unanswered += 1;
    }

    /// Round trips within the deadline.
    pub fn met(&self) -> u64 {
        self.met
    }

    /// Completed round trips that exceeded the deadline.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Requests that never completed.
    pub fn unanswered(&self) -> u64 {
        self.unanswered
    }

    /// Total observations (met + missed + unanswered).
    pub fn total(&self) -> u64 {
        self.met + self.missed + self.unanswered
    }

    /// Fraction of observations that met the deadline (1.0 if none).
    pub fn success_ratio(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.met as f64 / self.total() as f64
        }
    }

    /// Latency statistics over completed round trips.
    pub fn latency(&self) -> &Welford {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_seen_is_stale() {
        let m = FreshnessMonitor::new(SimDuration::from_secs(5));
        assert!(m.is_stale("spo2", SimTime::ZERO));
    }

    #[test]
    fn freshness_window() {
        let mut m = FreshnessMonitor::new(SimDuration::from_secs(5));
        m.observe("spo2", SimTime::from_secs(10));
        assert!(!m.is_stale("spo2", SimTime::from_secs(15)));
        assert!(m.is_stale("spo2", SimTime::from_secs(16)));
        assert_eq!(m.last_seen("spo2"), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn stale_streams_lists_only_stale() {
        let mut m = FreshnessMonitor::new(SimDuration::from_secs(5));
        m.observe("a", SimTime::from_secs(0));
        m.observe("b", SimTime::from_secs(9));
        let stale = m.stale_streams(SimTime::from_secs(10));
        assert_eq!(stale, vec!["a"]);
    }

    #[test]
    fn deadline_classification() {
        let mut d = DeadlineTracker::new(SimDuration::from_millis(100));
        d.record(SimDuration::from_millis(50));
        d.record(SimDuration::from_millis(100));
        d.record(SimDuration::from_millis(101));
        d.record_unanswered();
        assert_eq!(d.met(), 2);
        assert_eq!(d.missed(), 1);
        assert_eq!(d.unanswered(), 1);
        assert_eq!(d.total(), 4);
        assert!((d.success_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(d.latency().count(), 3);
    }

    #[test]
    fn empty_tracker_is_vacuously_successful() {
        let d = DeadlineTracker::new(SimDuration::from_millis(1));
        assert_eq!(d.success_ratio(), 1.0);
    }
}
