//! The reference routing implementation.
//!
//! [`ReferenceFabric`] is the original string-keyed, `BTreeMap`-routed
//! fabric, kept as the behavioural baseline for the dense-routed
//! [`Fabric`](crate::fabric::Fabric): same endpoints, links, outages,
//! topics and statistics, but every lookup walks an ordered tree
//! instead of indexing a packed table. Property tests
//! (`tests/dense_vs_reference.rs`) drive both implementations with
//! identical operation sequences and require identical planned
//! deliveries, identical RNG consumption and identical [`LinkStats`] —
//! the dense engine is an optimisation, never a behaviour change.
//!
//! Keep this module boring: it exists to be obviously correct, not
//! fast.

use crate::fabric::{EndpointId, LinkStats, PlannedDelivery, Topic};
use crate::qos::{Delivery, LinkQos, OutagePlan};
use mcps_sim::time::SimTime;
use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};

/// Tree-routed fabric: the pre-optimisation implementation.
#[derive(Debug, Clone, Default)]
pub struct ReferenceFabric {
    names: Vec<String>,
    default_qos: LinkQos,
    links: BTreeMap<(EndpointId, EndpointId), LinkQos>,
    outages: BTreeMap<(EndpointId, EndpointId), OutagePlan>,
    subs: BTreeMap<Topic, BTreeSet<EndpointId>>,
    stats: BTreeMap<(EndpointId, EndpointId), LinkStats>,
}

impl ReferenceFabric {
    /// An empty fabric whose unspecified links use [`LinkQos::wired`].
    pub fn new() -> Self {
        ReferenceFabric::default()
    }

    /// Sets the QoS used by links without an explicit override.
    pub fn set_default_qos(&mut self, qos: LinkQos) {
        self.default_qos = qos;
    }

    /// Registers an endpoint.
    pub fn add_endpoint(&mut self, name: &str) -> EndpointId {
        let id =
            EndpointId::from_index(u32::try_from(self.names.len()).expect("too many endpoints"));
        self.names.push(name.to_owned());
        id
    }

    /// Overrides QoS on the directed link `from → to`.
    pub fn set_link(&mut self, from: EndpointId, to: EndpointId, qos: LinkQos) {
        self.links.insert((from, to), qos);
    }

    /// Installs an outage plan on the directed link `from → to`.
    pub fn set_outages(&mut self, from: EndpointId, to: EndpointId, plan: OutagePlan) {
        self.outages.insert((from, to), plan);
    }

    /// The effective QoS of `from → to`.
    pub fn link_qos(&self, from: EndpointId, to: EndpointId) -> LinkQos {
        self.links.get(&(from, to)).copied().unwrap_or(self.default_qos)
    }

    /// Subscribes `endpoint` to `topic`.
    pub fn subscribe(&mut self, endpoint: EndpointId, topic: Topic) {
        self.subs.entry(topic).or_default().insert(endpoint);
    }

    /// Removes a subscription (no-op if absent).
    pub fn unsubscribe(&mut self, endpoint: EndpointId, topic: &Topic) {
        if let Some(set) = self.subs.get_mut(topic) {
            set.remove(&endpoint);
        }
    }

    /// Current subscribers of `topic` in ascending id order.
    pub fn subscribers(&self, topic: &Topic) -> impl Iterator<Item = EndpointId> + '_ {
        self.subs.get(topic).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Plans the transmission of one unicast message sent at `now`.
    /// Returns `None` if the message is lost (loss or outage);
    /// statistics are updated either way.
    pub fn unicast(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        now: SimTime,
        rng: &mut impl RngCore,
    ) -> Option<PlannedDelivery> {
        // One stats walk per message: the entry is fetched once and the
        // outcome recorded on it, instead of re-walking the tree per
        // counter. QoS resolution goes through the one `link_qos`
        // definition of the default fallback.
        let down = self.outages.get(&(from, to)).is_some_and(|p| p.is_down(now));
        let qos = self.links.get(&(from, to)).copied().unwrap_or(self.default_qos);
        let stats = self.stats.entry((from, to)).or_default();
        stats.sent += 1;
        if down {
            stats.dropped += 1;
            return None;
        }
        match qos.sample(now, rng) {
            Delivery::Deliver { at } => {
                stats.delivered += 1;
                stats.latency.push((at - now).as_secs_f64());
                Some(PlannedDelivery { to, at })
            }
            Delivery::Dropped => {
                stats.dropped += 1;
                None
            }
        }
    }

    /// Plans delivery of a published message to every subscriber of
    /// `topic` except the publisher itself.
    pub fn publish(
        &mut self,
        from: EndpointId,
        topic: &Topic,
        now: SimTime,
        rng: &mut impl RngCore,
    ) -> Vec<PlannedDelivery> {
        let receivers: Vec<EndpointId> = self
            .subs
            .get(topic)
            .map(|s| s.iter().copied().filter(|&e| e != from).collect())
            .unwrap_or_default();
        receivers.into_iter().filter_map(|to| self.unicast(from, to, now, rng)).collect()
    }

    /// Statistics of the directed link `from → to`.
    pub fn link_stats(&self, from: EndpointId, to: EndpointId) -> LinkStats {
        self.stats.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Aggregate statistics over all links, merged in ascending
    /// `(from, to)` order.
    pub fn total_stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for s in self.stats.values() {
            total.sent += s.sent;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
            total.latency.merge(&s.latency);
        }
        total
    }
}
