//! Property-based tests of the simulation kernel and statistics.

use mcps_sim::prelude::*;
use proptest::prelude::*;

/// Records every (time, tag) it receives, in delivery order.
struct Recorder {
    seen: Vec<(SimTime, u32)>,
}

impl Actor<u32> for Recorder {
    fn handle(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        self.seen.push((ctx.now(), msg));
    }
}

proptest! {
    /// Events are always delivered in nondecreasing time order, with
    /// FIFO tie-breaking at equal timestamps.
    #[test]
    fn delivery_order_is_time_then_fifo(
        events in proptest::collection::vec((0u64..1000, any::<u32>()), 1..100),
    ) {
        let mut sim: Simulation<u32> = Simulation::new(0);
        let r = sim.add_actor("rec", Recorder { seen: vec![] });
        for &(ms, tag) in &events {
            sim.schedule(SimTime::from_millis(ms), r, tag);
        }
        sim.run();
        let seen = &sim.actor_as::<Recorder>(r).unwrap().seen;
        prop_assert_eq!(seen.len(), events.len());
        // Nondecreasing times.
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        // FIFO within equal timestamps: the subsequence at each time
        // must match scheduling order.
        let mut expect = events.clone();
        expect.sort_by_key(|&(ms, _)| ms); // stable: preserves insert order per time
        let expect: Vec<(SimTime, u32)> =
            expect.into_iter().map(|(ms, tag)| (SimTime::from_millis(ms), tag)).collect();
        prop_assert_eq!(seen, &expect);
    }

    /// Splitting a run at an arbitrary deadline does not change what
    /// is delivered.
    #[test]
    fn run_until_is_composable(
        events in proptest::collection::vec((0u64..1000, any::<u32>()), 1..60),
        split in 0u64..1000,
    ) {
        let build = || {
            let mut sim: Simulation<u32> = Simulation::new(0);
            let r = sim.add_actor("rec", Recorder { seen: vec![] });
            for &(ms, tag) in &events {
                sim.schedule(SimTime::from_millis(ms), r, tag);
            }
            (sim, r)
        };
        let (mut whole, r1) = build();
        whole.run_until(SimTime::from_secs(2));
        let (mut split_sim, r2) = build();
        split_sim.run_until(SimTime::from_millis(split));
        split_sim.run_until(SimTime::from_secs(2));
        prop_assert_eq!(
            &whole.actor_as::<Recorder>(r1).unwrap().seen,
            &split_sim.actor_as::<Recorder>(r2).unwrap().seen
        );
        prop_assert_eq!(whole.now(), split_sim.now());
    }

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentile_monotone(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = mcps_sim::stats::percentile(&xs, lo);
        let b = mcps_sim::stats::percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        xs.sort_by(f64::total_cmp);
        prop_assert!(a >= xs[0] - 1e-9 && b <= xs[xs.len() - 1] + 1e-9);
    }

    /// Summary invariants hold for arbitrary samples.
    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_values(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.median && s.median <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Welford merge equals single-pass accumulation.
    #[test]
    fn welford_merge_is_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ys in proptest::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        use mcps_sim::stats::Welford;
        let mut a = Welford::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);
        let mut all = Welford::new();
        xs.iter().chain(&ys).for_each(|&x| all.push(x));
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - all.variance()).abs() < 1e-3);
    }

    /// Time arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!(time.saturating_add(dur).saturating_since(time), dur);
    }

    /// RNG streams: label-determined, order-independent.
    #[test]
    fn rng_streams_are_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::Rng;
        let f = RngFactory::new(seed);
        let mut a = f.stream(&label);
        let mut b = f.stream(&label);
        prop_assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
