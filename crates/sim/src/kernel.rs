//! The discrete-event simulation executive.
//!
//! [`Simulation`] owns a set of [`Actor`]s, a time-ordered event queue,
//! a [`TraceLog`] and a family of deterministic RNG streams. Events with
//! equal timestamps are delivered in scheduling order (FIFO), which —
//! together with seeded RNG streams — makes every run bit-reproducible.

use crate::actor::{Actor, ActorId};
use crate::rng::{RngFactory, SimRng};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    target: ActorId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    // Reversed so the BinaryHeap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The capabilities an [`Actor`] may use while handling a message.
///
/// A `Context` is handed to [`Actor::handle`] and borrows the mutable
/// pieces of the running [`Simulation`]: the event queue, the trace log
/// and the actor's own RNG stream.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ActorId,
    queue: &'a mut BinaryHeap<Scheduled<M>>,
    seq: &'a mut u64,
    trace: &'a mut TraceLog,
    rng: &'a mut SimRng,
    stop: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// The handling actor's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Delivers `msg` to `target` at the current time, after all events
    /// already queued for this instant.
    pub fn send(&mut self, target: ActorId, msg: M) {
        self.schedule_at(self.now, target, msg);
    }

    /// Delivers `msg` to `target` after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, target: ActorId, msg: M) {
        self.schedule_at(self.now.saturating_add(delay), target, msg);
    }

    /// Delivers `msg` to the handling actor itself after `delay`.
    pub fn schedule_self(&mut self, delay: SimDuration, msg: M) {
        self.schedule(delay, self.self_id, msg);
    }

    /// Delivers `msg` to `target` at absolute time `at` (clamped to the
    /// present if `at` is in the past).
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, msg: M) {
        let at = at.max(self.now);
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(Scheduled { at, seq, target, msg });
    }

    /// Appends a record to the simulation trace, attributed to this
    /// actor at the current time.
    pub fn trace(&mut self, category: &str, message: impl Into<String>) {
        self.trace.push(self.now, self.self_id, category, message);
    }

    /// Requests that the simulation stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic discrete-event simulation over message type `M`.
///
/// See the [`Actor`] docs for a complete usage example.
pub struct Simulation<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    names: Vec<String>,
    rngs: Vec<SimRng>,
    queue: BinaryHeap<Scheduled<M>>,
    seq: u64,
    now: SimTime,
    trace: TraceLog,
    rng_factory: RngFactory,
    stop: bool,
    events_processed: u64,
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("actors", &self.actors.len())
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation whose randomness derives from
    /// `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Simulation {
            actors: Vec::new(),
            names: Vec::new(),
            rngs: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            trace: TraceLog::default(),
            rng_factory: RngFactory::new(master_seed),
            stop: false,
            events_processed: 0,
        }
    }

    /// Registers an actor and returns its id. The actor's RNG stream is
    /// derived from the master seed and `name`, so renaming an actor —
    /// not reordering registration — is what changes its randomness.
    pub fn add_actor(&mut self, name: &str, actor: impl Actor<M>) -> ActorId {
        let id = ActorId::from_index(
            u32::try_from(self.actors.len()).expect("more than u32::MAX actors"),
        );
        self.actors.push(Some(Box::new(actor)));
        self.names.push(name.to_owned());
        self.rngs.push(self.rng_factory.stream(name));
        id
    }

    /// The registered name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulation.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.names[id.index() as usize]
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable access to an actor's concrete state.
    ///
    /// Returns `None` if the id is unknown, the actor is currently being
    /// dispatched, or the concrete type is not `T`.
    pub fn actor_as<T: 'static>(&self, id: ActorId) -> Option<&T> {
        self.actors
            .get(id.index() as usize)?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable access to an actor's concrete state (see [`Self::actor_as`]).
    pub fn actor_as_mut<T: 'static>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors
            .get_mut(id.index() as usize)?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Schedules `msg` for `target` at absolute time `at` (clamped to
    /// the present).
    pub fn schedule(&mut self, at: SimTime, target: ActorId, msg: M) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, target, msg });
    }

    /// Schedules `msg` for `target` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, target: ActorId, msg: M) {
        self.schedule(self.now.saturating_add(delay), target, msg);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable trace log (e.g. to disable recording for benchmarks).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// The RNG factory, for deriving extra streams outside the actors.
    pub fn rng_factory(&self) -> RngFactory {
        self.rng_factory
    }

    /// Whether an actor has requested a stop.
    pub fn is_stopped(&self) -> bool {
        self.stop
    }

    /// Dispatches the next event, if any. Returns `false` when the queue
    /// is empty or a stop was requested.
    pub fn step(&mut self) -> bool {
        if self.stop {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        let idx = ev.target.index() as usize;
        // Take the actor out of its slot so Context can borrow the rest
        // of the simulation mutably during dispatch.
        let mut actor = match self.actors.get_mut(idx).and_then(Option::take) {
            Some(a) => a,
            // Message to an unknown/busy actor: dropped silently. This
            // cannot happen through the public API (ids are only issued
            // by add_actor, and dispatch is not reentrant).
            None => return true,
        };
        let mut ctx = Context {
            now: self.now,
            self_id: ev.target,
            queue: &mut self.queue,
            seq: &mut self.seq,
            trace: &mut self.trace,
            rng: &mut self.rngs[idx],
            stop: &mut self.stop,
        };
        actor.handle(ev.msg, &mut ctx);
        self.actors[idx] = Some(actor);
        self.events_processed += 1;
        true
    }

    /// Runs until the queue drains or a stop is requested. Returns the
    /// number of events processed by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.events_processed;
        while self.step() {}
        self.events_processed - before
    }

    /// Runs until `deadline` (inclusive), the queue drains, or a stop is
    /// requested. On return, `now()` is exactly `deadline` unless the
    /// run stopped early. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.events_processed;
        while !self.stop {
            match self.queue.peek() {
                Some(ev) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if !self.stop && self.now < deadline {
            self.now = deadline;
        }
        self.events_processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping,
        Pong,
        Tick,
    }

    struct Pinger {
        peer: Option<ActorId>,
        sent: u32,
        limit: u32,
    }

    impl Actor<Msg> for Pinger {
        fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Pong | Msg::Tick => {
                    if self.sent < self.limit {
                        self.sent += 1;
                        ctx.schedule(SimDuration::from_millis(10), self.peer.unwrap(), Msg::Ping);
                    } else {
                        ctx.stop();
                    }
                }
                Msg::Ping => {}
            }
        }
    }

    struct Ponger {
        received: u32,
    }

    impl Actor<Msg> for Ponger {
        fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if msg == Msg::Ping {
                self.received += 1;
                ctx.trace("pong", format!("ping #{}", self.received));
                ctx.send(ActorId::from_index(0), Msg::Pong);
            }
        }
    }

    fn build() -> (Simulation<Msg>, ActorId, ActorId) {
        let mut sim = Simulation::new(1);
        let pinger = sim.add_actor("pinger", Pinger { peer: None, sent: 0, limit: 5 });
        let ponger = sim.add_actor("ponger", Ponger { received: 0 });
        sim.actor_as_mut::<Pinger>(pinger).unwrap().peer = Some(ponger);
        sim.schedule(SimTime::ZERO, pinger, Msg::Tick);
        (sim, pinger, ponger)
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let (mut sim, pinger, ponger) = build();
        sim.run();
        assert_eq!(sim.actor_as::<Pinger>(pinger).unwrap().sent, 5);
        assert_eq!(sim.actor_as::<Ponger>(ponger).unwrap().received, 5);
        assert!(sim.is_stopped());
        // 5 round trips of 10 ms each.
        assert_eq!(sim.now(), SimTime::from_millis(50));
        assert_eq!(sim.trace().by_category("pong").count(), 5);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let (mut sim, _, ponger) = build();
        sim.run_until(SimTime::from_millis(25));
        assert_eq!(sim.actor_as::<Ponger>(ponger).unwrap().received, 2);
        assert_eq!(sim.now(), SimTime::from_millis(25));
        // Remaining events still pending.
        assert!(sim.pending_events() > 0);
        sim.run();
        assert_eq!(sim.actor_as::<Ponger>(ponger).unwrap().received, 5);
    }

    #[test]
    fn fifo_order_at_equal_timestamps() {
        struct Recorder {
            seen: Vec<u32>,
        }
        impl Actor<u32> for Recorder {
            fn handle(&mut self, msg: u32, _ctx: &mut Context<'_, u32>) {
                self.seen.push(msg);
            }
        }
        let mut sim = Simulation::new(0);
        let r = sim.add_actor("rec", Recorder { seen: vec![] });
        for i in 0..10 {
            sim.schedule(SimTime::from_secs(1), r, i);
        }
        sim.run();
        assert_eq!(sim.actor_as::<Recorder>(r).unwrap().seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn determinism_across_runs() {
        let trace_a: Vec<String> = {
            let (mut sim, _, _) = build();
            sim.run();
            sim.trace().records().map(|r| r.to_string()).collect()
        };
        let trace_b: Vec<String> = {
            let (mut sim, _, _) = build();
            sim.run();
            sim.trace().records().map(|r| r.to_string()).collect()
        };
        assert_eq!(trace_a, trace_b);
    }

    #[test]
    fn rng_streams_depend_on_name_not_order() {
        use rand::Rng;
        struct Roller {
            value: u64,
        }
        impl Actor<()> for Roller {
            fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
                self.value = ctx.rng().gen();
            }
        }

        let roll = |names: &[&str], pick: &str| -> u64 {
            let mut sim = Simulation::new(7);
            let mut picked = None;
            for n in names {
                let id = sim.add_actor(n, Roller { value: 0 });
                if n == &pick {
                    picked = Some(id);
                }
            }
            let id = picked.unwrap();
            sim.schedule(SimTime::ZERO, id, ());
            sim.run();
            sim.actor_as::<Roller>(id).unwrap().value
        };

        let a = roll(&["x", "y"], "y");
        let b = roll(&["y", "x"], "y"); // registered first this time
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        struct Echo {
            at: Option<SimTime>,
        }
        impl Actor<u8> for Echo {
            fn handle(&mut self, msg: u8, ctx: &mut Context<'_, u8>) {
                if msg == 0 {
                    // Try to schedule "yesterday"; must arrive now, not panic.
                    ctx.schedule_at(SimTime::ZERO, ctx.self_id(), 1);
                } else {
                    self.at = Some(ctx.now());
                }
            }
        }
        let mut sim = Simulation::new(0);
        let e = sim.add_actor("echo", Echo { at: None });
        sim.schedule(SimTime::from_secs(5), e, 0);
        sim.run();
        assert_eq!(sim.actor_as::<Echo>(e).unwrap().at, Some(SimTime::from_secs(5)));
    }

    #[test]
    fn actor_as_wrong_type_is_none() {
        let (sim, pinger, _) = build();
        assert!(sim.actor_as::<Ponger>(pinger).is_none());
        assert!(sim.actor_as::<Pinger>(ActorId::from_index(99)).is_none());
    }
}
