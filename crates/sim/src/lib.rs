//! # mcps-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under every experiment in the `mcps` workspace: a
//! single-threaded, deterministic discrete-event executive with
//!
//! * integer-microsecond [`time`] (no floating-point drift
//!   in event ordering),
//! * an actor model ([`actor::Actor`] + [`kernel::Simulation`]) with
//!   FIFO tie-breaking at equal timestamps,
//! * reproducible per-actor randomness ([`rng::RngFactory`] — same
//!   master seed ⇒ bit-identical run),
//! * a bounded audit [`trace`] and metric collection
//!   ([`metrics`], [`stats`]).
//!
//! ## Example
//!
//! ```
//! use mcps_sim::prelude::*;
//!
//! struct Heartbeat { beats: u32 }
//!
//! impl Actor<()> for Heartbeat {
//!     fn handle(&mut self, _msg: (), ctx: &mut Context<'_, ()>) {
//!         self.beats += 1;
//!         ctx.trace("hb", format!("beat {}", self.beats));
//!         ctx.schedule_self(SimDuration::from_secs(1), ());
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let hb = sim.add_actor("heartbeat", Heartbeat { beats: 0 });
//! sim.schedule(SimTime::ZERO, hb, ());
//! sim.run_until(SimTime::from_secs(10));
//! assert_eq!(sim.actor_as::<Heartbeat>(hb).unwrap().beats, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod kernel;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenient glob-import of the kernel's everyday names.
pub mod prelude {
    pub use crate::actor::{Actor, ActorId};
    pub use crate::kernel::{Context, Simulation};
    pub use crate::rng::{RngFactory, SimRng};
    pub use crate::stats::Summary;
    pub use crate::time::{SimDuration, SimTime};
}

pub use actor::{Actor, ActorId};
pub use kernel::{Context, Simulation};
pub use time::{SimDuration, SimTime};
