//! # mcps-sim — deterministic discrete-event simulation kernel
//!
//! Facade over [`mcps_runtime`], the workspace's execution substrate.
//! Domain crates historically imported the kernel through `mcps_sim`
//! paths (`mcps_sim::kernel::Simulation`, `mcps_sim::stats::Summary`,
//! …); those paths keep working here while the implementation lives in
//! `mcps-runtime`, split into a scheduler, an executor and a telemetry
//! bus. New code that only needs the substrate can depend on
//! `mcps-runtime` directly.
//!
//! ## Example
//!
//! ```
//! use mcps_sim::prelude::*;
//!
//! struct Heartbeat { beats: u32 }
//!
//! impl Actor<()> for Heartbeat {
//!     fn handle(&mut self, _msg: (), ctx: &mut Context<'_, ()>) {
//!         self.beats += 1;
//!         ctx.trace("hb", format!("beat {}", self.beats));
//!         ctx.schedule_self(SimDuration::from_secs(1), ());
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let hb = sim.add_actor("heartbeat", Heartbeat { beats: 0 });
//! sim.schedule(SimTime::ZERO, hb, ());
//! sim.run_until(SimTime::from_secs(10));
//! assert_eq!(sim.actor_as::<Heartbeat>(hb).unwrap().beats, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mcps_runtime::{actor, kernel, rng, shard, time, trace};

/// Summary statistics (re-exported from the runtime telemetry bus).
pub mod stats {
    pub use mcps_runtime::telemetry::{percentile, Summary, Welford};
}

/// Metric collection (re-exported from the runtime telemetry bus).
pub mod metrics {
    pub use mcps_runtime::telemetry::{Histogram, MetricsHub, Telemetry, TimeSeries};
}

/// Convenient glob-import of the kernel's everyday names.
pub mod prelude {
    pub use mcps_runtime::actor::{Actor, ActorId};
    pub use mcps_runtime::kernel::{Context, Runtime, Simulation};
    pub use mcps_runtime::rng::{RngFactory, SimRng};
    pub use mcps_runtime::telemetry::Summary;
    pub use mcps_runtime::time::{SimDuration, SimTime};
}

pub use mcps_runtime::actor::{Actor, ActorId};
pub use mcps_runtime::kernel::{Context, Runtime, Simulation};
pub use mcps_runtime::time::{SimDuration, SimTime};
