//! Event scheduling: the time-ordered queue half of the kernel.
//!
//! [`Scheduler`] owns the event queue, the global sequence numbering
//! that breaks timestamp ties FIFO, the simulation clock and the stop
//! flag. It knows nothing about actors — delivering an event to one is
//! the [`Executor`](crate::executor::Executor)'s job.
//!
//! ## Hierarchical timer wheel + ready ring
//!
//! Delivery order is defined by the total order `(at, seq)` — earliest
//! time first, FIFO within an instant. The queue is a hierarchical
//! timer wheel: [`LEVELS`] levels of 64 slots each, where a level-`j`
//! slot spans `64^j` microseconds. An event due at `at` files into the
//! *highest* level at which `at` and `now` differ (the most significant
//! differing 6-bit digit of `at ^ now`), so near-term events land in
//! level 0 — whose slots are exactly one microsecond wide — and
//! far-future events (fault onsets, discharge times) land high up or,
//! beyond the ~51-day horizon, in an overflow list. Each level keeps a
//! 64-bit occupancy bitmap, so finding the next due slot is a couple of
//! `trailing_zeros` instructions: schedule and pop are `O(1)` in the
//! queue size, against the heap's `O(log n)` twice per event.
//!
//! When the earliest occupied slot sits at level `j > 0`, the clock
//! advances to that slot's start and its events *cascade*: each refiles
//! at a strictly lower level, so every event cascades at most
//! `LEVELS - 1` times over its whole life. When it sits at level 0, the
//! slot — all of whose events share one timestamp — drains into the
//! **ready ring**, a preallocated `VecDeque` of bare `(target, msg)`
//! pairs. While that instant is open, newly scheduled same-time events
//! append to the ring directly (their sequence numbers are globally
//! maximal, so appending preserves `(at, seq)` order) and the wheel is
//! never touched: same-instant cascades — device → network controller →
//! supervisor chains at one timestamp — cost a ring push and pop each,
//! with no per-event allocation in steady state.
//!
//! ## Sparse fast path
//!
//! Below [`SPARSE_MAX`] concurrent events the wheel machinery is pure
//! overhead: a ward's worth of self-rearming device timers pops one
//! event and schedules one replacement, never holding more than a few
//! dozen at once. While the stored population fits, events park in a
//! small cache-resident binary heap and the wheel is never touched;
//! the first event past the cap spills the heap into the wheel and the
//! dense regime takes over until the wheel drains empty again. Both
//! regimes implement the same `(at, seq)` total order, so the switch
//! is invisible to every observer (enforced by the lockstep suite and
//! the `bench_runtime` conformance hashes).
//!
//! ## Reference engine
//!
//! The original binary-heap engine survives as
//! [`reference::ReferenceScheduler`], the semantic oracle the wheel is
//! held to: the property suite in `tests/wheel_lockstep.rs` drives both
//! through random schedule/pop/advance interleavings and demands
//! identical clocks, lengths and pop sequences at every step.

use crate::actor::ActorId;
use crate::telemetry::Telemetry;
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

pub mod reference;

/// Bits per wheel digit: each level has `2^6 = 64` slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Low-6-bits mask, selecting a slot index within a level.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Number of wheel levels. Level `j` slots span `64^j` µs; seven
/// levels cover `64^7` µs ≈ 51 days, past which events overflow.
pub const LEVELS: usize = 7;
/// Bits of absolute time the wheel resolves (`6 * LEVELS`).
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Capacity of the sparse fast-path heap. While the queue holds at most
/// this many events (and the wheel proper is idle) they live in a small
/// binary heap instead: at this size the heap is entirely
/// cache-resident and its `O(log n)` sift is a handful of comparisons,
/// which beats the wheel's filing/cascade machinery for sparse periodic
/// workloads (a ward of self-rearming device timers). The 65th
/// concurrent event spills the heap into the wheel, whose `O(1)`
/// schedule/pop then wins at scale.
const SPARSE_MAX: usize = 64;

/// A queued event: deliver `msg` to `target` at time `at`.
#[derive(Debug)]
pub struct Scheduled<M> {
    /// Delivery time.
    pub at: SimTime,
    /// Global FIFO tie-break sequence number.
    pub(crate) seq: u64,
    /// Receiving actor.
    pub target: ActorId,
    /// The message itself.
    pub msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    // Reversed so the BinaryHeap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A sparse-heap element: `(at, seq)` packed into one 128-bit key —
/// `at` in the high 64 bits, `seq` in the low — so a heap sift
/// compares once where a `(at, seq)` tuple would compare twice and
/// branch in between.
struct SparseEv<M> {
    key: u128,
    target: ActorId,
    msg: M,
}

impl<M> SparseEv<M> {
    #[inline]
    fn new(at: SimTime, seq: u64, target: ActorId, msg: M) -> Self {
        SparseEv { key: (u128::from(at.as_micros()) << 64) | u128::from(seq), target, msg }
    }

    #[inline]
    fn at(&self) -> SimTime {
        SimTime::from_micros((self.key >> 64) as u64)
    }

    #[inline]
    fn into_scheduled(self) -> Scheduled<M> {
        Scheduled { at: self.at(), seq: self.key as u64, target: self.target, msg: self.msg }
    }
}

impl<M> PartialEq for SparseEv<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for SparseEv<M> {}
impl<M> PartialOrd for SparseEv<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for SparseEv<M> {
    // Reversed so the BinaryHeap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

/// One wheel level: 64 slot buckets plus an occupancy bitmap.
#[derive(Debug)]
struct Level<M> {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    /// Events currently resident at this level.
    events: u32,
    slots: Box<[Vec<Scheduled<M>>]>,
}

impl<M> Level<M> {
    fn new() -> Self {
        Level { occupied: 0, events: 0, slots: (0..SLOTS).map(|_| Vec::new()).collect() }
    }
}

/// Counters describing wheel behaviour, for telemetry and the
/// zero-allocation regression checks in `bench_runtime`.
///
/// `max_ready_depth` is sampled at dispatch boundaries (instant opens
/// and chain-head pops) rather than maintained per push, keeping the
/// ready-ring hot path bookkeeping-free; for batched workloads the
/// sample lands right after the burst, so it tracks the true peak
/// closely.
#[derive(Debug, Clone, Default)]
pub struct WheelStats {
    /// Events scheduled into the wheel/overflow (timed schedulings;
    /// open-instant fast-path sends bypass the counter and are counted
    /// by the kernel's `events_processed` instead).
    pub scheduled: u64,
    /// Slot cascades (one occupied slot refiled to lower levels).
    pub cascades: u64,
    /// Events moved by cascades and clock-advance refiles.
    pub refiled: u64,
    /// Events filed beyond the wheel horizon into the overflow list.
    pub overflow_filed: u64,
    /// Level-0 slot drains that needed a FIFO repair sort (possible
    /// only after interleaved cascades; counted to show how rare).
    pub sort_repairs: u64,
    /// High-water mark of the ready ring (sampled; see above).
    pub max_ready_depth: usize,
    /// Per-level high-water marks of resident events.
    pub level_high_water: [u32; LEVELS],
}

/// The event-queue half of the simulation kernel (see the module docs
/// for the wheel design).
///
/// Invariants between pops:
/// * every wheel event has `at > now`, except level-0 events sharing
///   the current instant while it is open — but those drain to the
///   ring when the instant opens, so in practice `at > now` wheel-wide;
/// * an event's slot index at its level differs from `now`'s digit at
///   that level (restored by [`Scheduler::advance_to`] after clock
///   jumps), which makes "earliest occupied slot of the lowest
///   non-empty level" the global minimum;
/// * everything due at `now` sits in the ready ring, in `(at, seq)`
///   order.
pub struct Scheduler<M> {
    levels: [Level<M>; LEVELS],
    /// Bit `j` set ⇔ `levels[j].occupied != 0`.
    nonempty: u8,
    /// The ready ring: events due at `now`, FIFO. Entries carry only
    /// `(target, msg)` — their time is `now` and their relative order
    /// is positional, so `at`/`seq` would be dead weight.
    ring: VecDeque<(ActorId, M)>,
    /// The sparse fast path: while at most [`SPARSE_MAX`] events are
    /// stored (and the wheel proper is empty) they park in this small
    /// `(at, seq)`-ordered heap and never touch the filing/cascade
    /// machinery. Invariant: `sparse` and the wheel/overflow are never
    /// simultaneously non-empty — event `SPARSE_MAX + 1` spills the
    /// whole heap into the wheel, and the heap stays unused until the
    /// wheel drains completely.
    sparse: BinaryHeap<SparseEv<M>>,
    /// Events beyond the wheel horizon (`at ^ now` ≥ 2^42 µs).
    overflow: Vec<Scheduled<M>>,
    /// Events stored in the wheel + overflow (the ready ring counts
    /// itself), so the ring hot path carries no length bookkeeping.
    stored: usize,
    /// Global sequence counter; doubles as the scheduled-events stat.
    seq: u64,
    now: SimTime,
    stop: bool,
    /// True while events for the instant `now` are being delivered,
    /// i.e. the level-0 slot has been drained for `now`.
    instant_open: bool,
    stats: WheelStats,
}

impl<M> std::fmt::Debug for Scheduler<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("ring_depth", &self.ring.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            levels: std::array::from_fn(|_| Level::new()),
            nonempty: 0,
            ring: VecDeque::new(),
            sparse: BinaryHeap::with_capacity(SPARSE_MAX),
            overflow: Vec::new(),
            stored: 0,
            seq: 0,
            now: SimTime::ZERO,
            stop: false,
            instant_open: false,
            stats: WheelStats::default(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events queued (wheel + sparse heap + ready ring +
    /// overflow).
    pub fn pending(&self) -> usize {
        self.stored + self.sparse.len() + self.ring.len()
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop
    }

    /// Requests that the run stop after the event being processed.
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    /// Wheel behaviour counters accumulated since creation/[`Self::reset`].
    pub fn stats(&self) -> WheelStats {
        let mut s = self.stats.clone();
        // Every accepted event bumps `seq` exactly once, so the
        // counter doubles as the scheduled-events stat without a
        // second hot-path increment.
        s.scheduled = self.seq;
        s
    }

    /// Files `ev` into the wheel (or overflow) relative to `now`.
    /// `ev.at` must not be in the past.
    fn file(&mut self, ev: Scheduled<M>) {
        let at = ev.at.as_micros();
        let now = self.now.as_micros();
        debug_assert!(at >= now, "filing an event into the past");
        let xor = at ^ now;
        if xor >> HORIZON_BITS != 0 {
            self.overflow.push(ev);
            self.stats.overflow_filed += 1;
            return;
        }
        // Highest differing 6-bit digit of `at` vs `now` picks the
        // level; the event's own digit there picks the slot.
        let level = if xor == 0 { 0 } else { ((63 - xor.leading_zeros()) / SLOT_BITS) as usize };
        let slot = ((at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let l = &mut self.levels[level];
        l.slots[slot].push(ev);
        l.occupied |= 1u64 << slot;
        l.events += 1;
        if l.events > self.stats.level_high_water[level] {
            self.stats.level_high_water[level] = l.events;
        }
        self.nonempty |= 1 << level;
    }

    /// The delivery time of the next queued event, if any. Does not
    /// advance the clock or cascade.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if !self.ring.is_empty() {
            return Some(self.now);
        }
        if let Some(ev) = self.sparse.peek() {
            return Some(ev.at());
        }
        let now = self.now.as_micros();
        for (level, l) in self.levels.iter().enumerate() {
            if l.occupied == 0 {
                continue;
            }
            let slot = u64::from(l.occupied.trailing_zeros());
            if level == 0 {
                // Level-0 slots are one microsecond wide: the slot
                // index *is* the low digit of the delivery time.
                return Some(SimTime::from_micros((now & !SLOT_MASK) | slot));
            }
            // Events in a coarser slot share only their upper digits;
            // the earliest must be found by inspection.
            return l.slots[slot as usize].iter().map(|e| e.at).min();
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// A lower bound on [`Self::next_event_time`] computable without
    /// inspecting any event: exact for ring, sparse-heap and level-0
    /// events; the containing slot's start for coarser slots; the next
    /// horizon window's base for overflow events. O(1) regardless of
    /// how many far-future events are parked.
    fn next_event_floor(&self) -> Option<SimTime> {
        if !self.ring.is_empty() {
            return Some(self.now);
        }
        if let Some(ev) = self.sparse.peek() {
            return Some(ev.at());
        }
        let now = self.now.as_micros();
        for (level, l) in self.levels.iter().enumerate() {
            if l.occupied == 0 {
                continue;
            }
            let slot = u64::from(l.occupied.trailing_zeros());
            if level == 0 {
                return Some(SimTime::from_micros((now & !SLOT_MASK) | slot));
            }
            let width_mask = (1u64 << (SLOT_BITS * (level as u32 + 1))) - 1;
            let slot_start = (now & !width_mask) | (slot << (SLOT_BITS * level as u32));
            return Some(SimTime::from_micros(slot_start.max(now)));
        }
        if self.overflow.is_empty() {
            None
        } else {
            Some(SimTime::from_micros(((now >> HORIZON_BITS) + 1) << HORIZON_BITS))
        }
    }

    /// Whether an event is due at or before `deadline`. The cheap floor
    /// answers most queries; only a deadline that lands inside the next
    /// occupied slot's window needs the exact (slot-scanning) time —
    /// this is what keeps deadline-bounded draining O(1) per call while
    /// thousands of far-future events sit parked in coarse slots.
    pub(crate) fn has_event_by(&self, deadline: SimTime) -> bool {
        match self.next_event_floor() {
            Some(floor) if floor <= deadline => {}
            _ => return false,
        }
        matches!(self.next_event_time(), Some(t) if t <= deadline)
    }

    /// Schedules `msg` for `target` at absolute time `at`, clamped to
    /// the present if `at` is already past.
    ///
    /// Kept small enough to inline into dispatch loops: the two hot
    /// outcomes (ring append, sparse-heap push) return directly and
    /// everything else tails into the outlined dense path.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, msg: M) {
        let at = at.max(self.now);
        if self.instant_open && at == self.now {
            // Appending preserves `(at, seq)` order: ring order is
            // positional and the wheel holds only later times.
            self.ring.push_back((target, msg));
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        if self.nonempty == 0 && self.overflow.is_empty() && self.sparse.len() < SPARSE_MAX {
            // `stored` deliberately not touched: the sparse heap counts
            // itself (see `pending`), keeping this path store-free.
            self.sparse.push(SparseEv::new(at, seq, target, msg));
            return;
        }
        self.schedule_dense(Scheduled { at, seq, target, msg });
    }

    /// The dense half of [`Self::schedule_at`]: spills the sparse heap
    /// into the wheel when it just overflowed, then files the event.
    /// Outlined so the sparse fast path stays inlinable.
    #[inline(never)]
    fn schedule_dense(&mut self, ev: Scheduled<M>) {
        if self.nonempty == 0 && self.overflow.is_empty() {
            // The sparse heap is full: spill it into the wheel and file
            // normally from here on. Runs once per transition from the
            // sparse to the dense regime.
            while let Some(prev) = self.sparse.pop() {
                self.stored += 1;
                self.file(prev.into_scheduled());
            }
        }
        self.stored += 1;
        self.file(ev);
    }

    /// Schedules `msg` for `target` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, target: ActorId, msg: M) {
        self.schedule_at(self.now.saturating_add(delay), target, msg);
    }

    /// Fast path for [`Context::send`](crate::executor::Context::send):
    /// appends straight to the ready ring. Valid only while an instant
    /// is open, which dispatch guarantees.
    #[inline]
    pub(crate) fn push_now(&mut self, target: ActorId, msg: M) {
        debug_assert!(self.instant_open, "push_now outside an open instant");
        // No seq: ring order is positional, and skipping the counter
        // keeps the send fast path to a single deque append.
        self.ring.push_back((target, msg));
    }

    /// Batch variant of [`Self::push_now`]: appends a run of messages
    /// for one target in a single extend, reserving once.
    #[inline]
    pub(crate) fn push_now_many<I>(&mut self, target: ActorId, msgs: I)
    where
        I: IntoIterator<Item = M>,
    {
        debug_assert!(self.instant_open, "push_now outside an open instant");
        self.ring.extend(msgs.into_iter().map(|msg| (target, msg)));
    }

    /// Whether the ready ring holds undelivered events for the open
    /// instant.
    #[inline]
    pub(crate) fn ready_is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Swaps the ready ring into `scratch` (which must be empty), so
    /// the kernel can drain an instant's events without per-event
    /// scheduler calls while sends still append to the (now empty)
    /// ring. The buffers trade places every batch, so both stay warm
    /// and steady state allocates nothing.
    #[inline]
    pub(crate) fn take_ready(&mut self, scratch: &mut VecDeque<(ActorId, M)>) {
        debug_assert!(scratch.is_empty(), "scratch buffer still holds events");
        self.sample_ready_depth();
        std::mem::swap(&mut self.ring, scratch);
    }

    /// Returns undelivered `scratch` events to the queue after a stop
    /// interrupted a batch. The scratch events are older than anything
    /// sent since the swap, so they go back in front. Cold path.
    pub(crate) fn put_back_ready(&mut self, scratch: &mut VecDeque<(ActorId, M)>) {
        scratch.extend(self.ring.drain(..));
        std::mem::swap(&mut self.ring, scratch);
    }

    /// Advances the clock to the next occupied instant and drains its
    /// events into the ready ring. Returns `false` if nothing is
    /// queued. On `true`, the ring is non-empty and `now` is the
    /// instant's timestamp.
    pub(crate) fn open_next_instant(&mut self) -> bool {
        loop {
            if self.nonempty == 0 {
                if let Some(ev) = self.sparse.pop() {
                    // Sparse regime: the heap holds every stored event,
                    // so its minimum opens the next instant. Drain the
                    // run sharing its timestamp — the heap yields equal
                    // times in ascending `seq`, so the ring stays FIFO.
                    debug_assert!(self.overflow.is_empty(), "sparse events beside overflow");
                    debug_assert!(ev.at() >= self.now, "event queue went backwards");
                    self.now = ev.at();
                    self.instant_open = true;
                    self.ring.push_back((ev.target, ev.msg));
                    while self.sparse.peek().is_some_and(|e| e.at() == self.now) {
                        let e = self.sparse.pop().expect("peeked event exists");
                        self.ring.push_back((e.target, e.msg));
                    }
                    self.sample_ready_depth();
                    return true;
                }
                // Wheel empty: jump the clock to the earliest overflow
                // event's horizon window and refile what fits.
                if self.overflow.is_empty() {
                    return false;
                }
                let min_at = self.overflow.iter().map(|e| e.at).min().expect("non-empty");
                let base = SimTime::from_micros(min_at.as_micros() & !((1u64 << HORIZON_BITS) - 1));
                debug_assert!(base > self.now, "overflow event inside the horizon");
                self.now = base;
                self.instant_open = false;
                self.refile_overflow_in_range();
                continue;
            }
            let level = self.nonempty.trailing_zeros() as usize;
            let slot = self.levels[level].occupied.trailing_zeros() as usize;
            let now = self.now.as_micros();
            if level == 0 {
                // All events in a level-0 slot share one timestamp.
                let t = (now & !SLOT_MASK) | slot as u64;
                debug_assert!(t >= now, "event queue went backwards");
                self.now = SimTime::from_micros(t);
                self.instant_open = true;
                let l = &mut self.levels[0];
                let v = &mut l.slots[slot];
                // Cascades can interleave arrivals; restore FIFO by seq
                // when (rarely) needed.
                if !v.windows(2).all(|w| w[0].seq < w[1].seq) {
                    v.sort_unstable_by_key(|e| e.seq);
                    self.stats.sort_repairs += 1;
                }
                l.events -= v.len() as u32;
                l.occupied &= !(1u64 << slot);
                if l.occupied == 0 {
                    self.nonempty &= !1;
                }
                self.stored -= v.len();
                for ev in v.drain(..) {
                    debug_assert!(ev.at == self.now, "level-0 slot mixes instants");
                    self.ring.push_back((ev.target, ev.msg));
                }
                self.sample_ready_depth();
                return true;
            }
            if self.levels[level].slots[slot].len() == 1 {
                // Singleton fast path — the dominant shape for sparse
                // periodic queues: the slot's lone event is the global
                // minimum (level invariant), so deliver it directly
                // instead of cascading it down level by level.
                let l = &mut self.levels[level];
                let ev = l.slots[slot].pop().expect("occupied slot is non-empty");
                l.events -= 1;
                l.occupied &= !(1u64 << slot);
                if l.occupied == 0 {
                    self.nonempty &= !(1 << level);
                }
                debug_assert!(ev.at.as_micros() > now, "stale slot survived advance_to");
                self.stored -= 1;
                self.now = ev.at;
                self.instant_open = true;
                self.ring.push_back((ev.target, ev.msg));
                return true;
            }
            // Coarser slot first: advance to its start and cascade its
            // events down. Each refiles at a strictly lower level (its
            // digit at `level` now matches the clock's), so this loop
            // terminates in at most LEVELS rounds.
            let width_mask = (1u64 << (SLOT_BITS * (level as u32 + 1))) - 1;
            let slot_start = (now & !width_mask) | ((slot as u64) << (SLOT_BITS * level as u32));
            debug_assert!(slot_start > now, "stale slot survived advance_to");
            self.now = SimTime::from_micros(slot_start);
            self.instant_open = false;
            self.cascade_slot(level, slot);
        }
    }

    /// Records the current ring depth into the high-water stat. Called
    /// at dispatch boundaries, not per push (see [`WheelStats`]).
    fn sample_ready_depth(&mut self) {
        if self.ring.len() > self.stats.max_ready_depth {
            self.stats.max_ready_depth = self.ring.len();
        }
    }

    /// Empties `slots[slot]` of `level`, refiling each event relative
    /// to the (already advanced) clock.
    fn cascade_slot(&mut self, level: usize, slot: usize) {
        let l = &mut self.levels[level];
        l.events -= l.slots[slot].len() as u32;
        l.occupied &= !(1u64 << slot);
        if l.occupied == 0 {
            self.nonempty &= !(1 << level);
        }
        // Take the bucket to appease the borrow checker; swap it back
        // afterwards so its capacity is never lost.
        let mut v = std::mem::take(&mut self.levels[level].slots[slot]);
        self.stats.cascades += 1;
        self.stats.refiled += v.len() as u64;
        for ev in v.drain(..) {
            self.file(ev);
        }
        self.levels[level].slots[slot] = v;
    }

    /// Refiles overflow events that the clock's horizon window now
    /// covers.
    fn refile_overflow_in_range(&mut self) {
        let now = self.now.as_micros();
        let mut i = 0;
        while i < self.overflow.len() {
            if (self.overflow[i].at.as_micros() ^ now) >> HORIZON_BITS == 0 {
                let ev = self.overflow.swap_remove(i);
                self.stats.refiled += 1;
                self.file(ev);
            } else {
                i += 1;
            }
        }
    }

    /// Removes and returns the next due event, advancing the clock to
    /// its timestamp. Returns `None` if the queue is empty or a stop was
    /// requested.
    ///
    /// Kept small enough to inline into dispatch loops: the two hot
    /// outcomes (ring pop, sparse-heap pop) return directly and
    /// everything else tails into the outlined wheel path.
    #[inline]
    pub fn pop_due(&mut self) -> Option<Scheduled<M>> {
        if self.stop {
            return None;
        }
        if let Some((target, msg)) = self.ring.pop_front() {
            return Some(Scheduled { at: self.now, seq: 0, target, msg });
        }
        if self.nonempty == 0 {
            if let Some(ev) = self.sparse.pop() {
                // Sparse direct delivery: hand the head back without a
                // ring round-trip; same-instant followers drain to the
                // ring so sends into the open instant order after them.
                self.now = ev.at();
                self.instant_open = true;
                if self.sparse.peek().is_some_and(|e| e.at() == self.now) {
                    self.drain_sparse_run();
                }
                return Some(ev.into_scheduled());
            }
        }
        self.pop_due_wheel()
    }

    /// Moves every sparse-heap event sharing the (just-opened) current
    /// instant into the ready ring, preserving `seq` order. Outlined:
    /// timer collisions are rare in sparse workloads.
    #[inline(never)]
    fn drain_sparse_run(&mut self) {
        while self.sparse.peek().is_some_and(|e| e.at() == self.now) {
            let e = self.sparse.pop().expect("peeked event exists");
            self.ring.push_back((e.target, e.msg));
        }
    }

    /// The wheel half of [`Self::pop_due`]: opens the next instant via
    /// the filing/cascade machinery. Outlined so the sparse fast path
    /// stays inlinable.
    #[inline(never)]
    fn pop_due_wheel(&mut self) -> Option<Scheduled<M>> {
        if !self.open_next_instant() {
            return None;
        }
        let (target, msg) = self.ring.pop_front().expect("opened instant is non-empty");
        Some(Scheduled { at: self.now, seq: 0, target, msg })
    }

    /// [`Self::pop_due`] bounded by `deadline`: returns `None` (without
    /// advancing the clock) when the next event is later than
    /// `deadline` or absent.
    pub fn pop_due_until(&mut self, deadline: SimTime) -> Option<Scheduled<M>> {
        if self.has_event_by(deadline) {
            self.pop_due()
        } else {
            None
        }
    }

    /// Advances the clock to `deadline` with no events to deliver (used
    /// by `run_until` when the queue holds nothing before the deadline).
    /// Closes the current instant: later same-time schedules go through
    /// the wheel again.
    pub fn advance_to(&mut self, deadline: SimTime) {
        debug_assert!(self.ring.is_empty(), "advancing over undelivered events");
        if deadline <= self.now {
            return;
        }
        self.now = deadline;
        self.instant_open = false;
        if self.stored == 0 {
            return;
        }
        // Restore the filing invariant: any slot whose index equals the
        // new clock's digit at that level holds events that belong at a
        // lower level now — left in place they would pop *after* nearer
        // events filed below them. (Delivery-driven advances can't
        // create this state; only jumps across idle time can.)
        let now = deadline.as_micros();
        for level in 1..LEVELS {
            let digit = ((now >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            if self.levels[level].occupied & (1u64 << digit) != 0 {
                self.cascade_slot(level, digit);
            }
        }
        self.refile_overflow_in_range();
    }

    /// Clears all state back to time zero while retaining every
    /// allocation (slot buckets, ready ring, overflow list), so a
    /// reused scheduler reaches steady state allocation-free.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            if l.occupied != 0 {
                for s in l.slots.iter_mut() {
                    s.clear();
                }
            }
            l.occupied = 0;
            l.events = 0;
        }
        self.nonempty = 0;
        self.ring.clear();
        self.sparse.clear();
        self.overflow.clear();
        self.stored = 0;
        self.seq = 0;
        self.now = SimTime::ZERO;
        self.stop = false;
        self.instant_open = false;
        self.stats = WheelStats::default();
    }

    /// Publishes the wheel counters onto a [`Telemetry`] bus under
    /// `prefix`. Monotone counts go out as counters (merge by
    /// addition); high-water marks as histogram observations, whose
    /// summary max survives cross-shard merges.
    pub fn export_telemetry(&self, bus: &mut Telemetry, prefix: &str) {
        bus.incr(&format!("{prefix}.events_scheduled"), self.seq);
        bus.incr(&format!("{prefix}.cascades"), self.stats.cascades);
        bus.incr(&format!("{prefix}.events_refiled"), self.stats.refiled);
        bus.incr(&format!("{prefix}.overflow_filed"), self.stats.overflow_filed);
        bus.incr(&format!("{prefix}.sort_repairs"), self.stats.sort_repairs);
        bus.observe(&format!("{prefix}.max_ready_depth"), self.stats.max_ready_depth as f64);
        for (level, &hw) in self.stats.level_high_water.iter().enumerate() {
            if hw > 0 {
                bus.observe(&format!("{prefix}.level{level}_peak_events"), f64::from(hw));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(sched: &mut Scheduler<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = sched.pop_due() {
            out.push((ev.at, ev.msg));
        }
        out
    }

    fn wheel_events<M>(s: &Scheduler<M>) -> usize {
        s.levels.iter().map(|l| l.events as usize).sum()
    }

    #[test]
    fn orders_by_time_then_fifo() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(2), a, 10);
        s.schedule_at(SimTime::from_secs(1), a, 20);
        s.schedule_at(SimTime::from_secs(2), a, 11);
        s.schedule_at(SimTime::from_secs(1), a, 21);
        assert_eq!(
            drain_order(&mut s),
            vec![
                (SimTime::from_secs(1), 20),
                (SimTime::from_secs(1), 21),
                (SimTime::from_secs(2), 10),
                (SimTime::from_secs(2), 11),
            ]
        );
    }

    #[test]
    fn same_instant_sends_go_to_open_ring() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(1), a, 1);
        s.schedule_at(SimTime::from_secs(1), a, 2);
        let first = s.pop_due().unwrap();
        assert_eq!(first.msg, 1);
        // A cascade send while instant 1s is open: must come after msg 2
        // but before any later event, without touching the wheel.
        s.schedule_at(s.now(), a, 3);
        assert_eq!(wheel_events(&s), 0);
        assert_eq!(s.pop_due().unwrap().msg, 2);
        assert_eq!(s.pop_due().unwrap().msg, 3);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(5), a, 1);
        let ev = s.pop_due().unwrap();
        assert_eq!(ev.at, SimTime::from_secs(5));
        s.schedule_at(SimTime::ZERO, a, 2);
        let ev = s.pop_due().unwrap();
        assert_eq!(ev.at, SimTime::from_secs(5), "past event clamps to now");
        assert_eq!(ev.msg, 2);
    }

    #[test]
    fn stop_halts_delivery() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::ZERO, a, 1);
        s.request_stop();
        assert!(s.pop_due().is_none());
        assert!(s.is_stopped());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn advance_to_closes_instant() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(1), a, 1);
        assert_eq!(s.pop_due().unwrap().msg, 1);
        s.advance_to(SimTime::from_secs(10));
        assert_eq!(s.now(), SimTime::from_secs(10));
        // A schedule at the (new) current time must still be delivered.
        s.schedule_at(SimTime::from_secs(10), a, 2);
        let ev = s.pop_due().unwrap();
        assert_eq!((ev.at, ev.msg), (SimTime::from_secs(10), 2));
    }

    #[test]
    fn next_event_time_sees_ring_and_wheel() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = ActorId::from_index(0);
        assert_eq!(s.next_event_time(), None);
        s.schedule_at(SimTime::from_secs(3), a, 1);
        assert_eq!(s.next_event_time(), Some(SimTime::from_secs(3)));
        s.schedule_at(SimTime::from_secs(3), a, 2);
        s.pop_due().unwrap();
        // msg 2 now sits in the open ring.
        assert_eq!(s.next_event_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn far_future_event_crosses_every_level() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        // ~48 days out: lands at the top wheel level, then cascades.
        // Two events in the same coarse slot defeat the singleton
        // direct-delivery fast path, and the filler events past the
        // sparse-heap capacity force everything through the wheel.
        let far = SimTime::from_micros(48 * 24 * 3600 * 1_000_000);
        let far2 = SimTime::from_micros(48 * 24 * 3600 * 1_000_000 + 7);
        s.schedule_at(far, a, 1);
        s.schedule_at(far2, a, 3);
        for i in 0..SPARSE_MAX as u32 {
            s.schedule_at(SimTime::from_micros(1), a, 100 + i);
        }
        assert_eq!(s.next_event_time(), Some(SimTime::from_micros(1)));
        let order = drain_order(&mut s);
        assert_eq!(order.len(), SPARSE_MAX + 2);
        assert!(order[..SPARSE_MAX].iter().all(|&(at, _)| at == SimTime::from_micros(1)));
        assert_eq!(&order[SPARSE_MAX..], &[(far, 1), (far2, 3)]);
        assert!(s.stats().cascades > 0, "co-sloted 48-day events must cascade");
    }

    #[test]
    fn beyond_horizon_goes_to_overflow_and_back() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        // 100 days: beyond the 64^7 µs ≈ 51-day horizon. Lone events
        // park in the sparse heap; filling past its capacity spills
        // them into the wheel, which banishes this one to overflow.
        let huge = SimTime::from_micros(100 * 24 * 3600 * 1_000_000);
        s.schedule_at(huge, a, 9);
        assert_eq!(s.stats().overflow_filed, 0, "a lone event parks in the sparse heap");
        for i in 0..SPARSE_MAX as u32 {
            s.schedule_at(SimTime::from_secs(1), a, 100 + i);
        }
        assert_eq!(s.stats().overflow_filed, 1);
        assert_eq!(s.next_event_time(), Some(SimTime::from_secs(1)));
        for i in 0..SPARSE_MAX as u32 {
            let ev = s.pop_due().unwrap();
            assert_eq!((ev.at, ev.msg), (SimTime::from_secs(1), 100 + i));
        }
        let ev = s.pop_due().unwrap();
        assert_eq!((ev.at, ev.msg), (huge, 9));
        assert_eq!(s.now(), huge);
    }

    #[test]
    fn advance_refiles_stale_slots() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        // Fill past the sparse-heap capacity so events actually file
        // into the wheel, then jump the clock so their slot index
        // equals the new clock digit at that level (the "stale slot"
        // hazard): a later-scheduled nearer event must still pop first.
        for i in 0..=SPARSE_MAX as u32 {
            s.schedule_at(SimTime::from_micros(0x125), a, i);
        }
        s.advance_to(SimTime::from_micros(0x121));
        s.schedule_at(SimTime::from_micros(0x123), a, 999);
        let order = drain_order(&mut s);
        assert_eq!(order[0], (SimTime::from_micros(0x123), 999));
        assert_eq!(order.len(), SPARSE_MAX + 2);
        let expect: Vec<(SimTime, u32)> =
            (0..=SPARSE_MAX as u32).map(|i| (SimTime::from_micros(0x125), i)).collect();
        assert_eq!(&order[1..], &expect[..], "stale-slot events must drain FIFO");
    }

    #[test]
    fn sparse_heap_spills_to_wheel_and_returns() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        // Pseudo-random times across the sparse/dense boundary: order
        // must be (at, seq) regardless of which regime holds an event.
        let times: Vec<u64> = (0..2 * SPARSE_MAX as u64).map(|i| (i * 2654435761) % 5000).collect();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_micros(t), a, i as u32);
        }
        assert!(wheel_events(&s) > 0, "spill must engage the wheel");
        let order = drain_order(&mut s);
        let mut expect: Vec<(SimTime, u32)> =
            times.iter().enumerate().map(|(i, &t)| (SimTime::from_micros(t), i as u32)).collect();
        expect.sort_by_key(|&(at, i)| (at, i));
        assert_eq!(order, expect);
        // The wheel has drained completely: the next schedule re-enters
        // the sparse regime and never touches the filing machinery.
        s.schedule_at(SimTime::from_secs(10), a, 7);
        assert_eq!(wheel_events(&s), 0, "post-drain schedules re-enter the sparse heap");
        assert_eq!(s.pop_due().unwrap().msg, 7);
    }

    #[test]
    fn reset_retains_capacity_and_restarts_clock() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        for i in 0..100u32 {
            s.schedule_at(SimTime::from_millis(u64::from(i)), a, i);
        }
        while s.pop_due().is_some() {}
        s.reset();
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.pending(), 0);
        s.schedule_at(SimTime::from_millis(1), a, 7);
        assert_eq!(s.pop_due().unwrap().msg, 7);
    }

    #[test]
    fn pop_due_until_respects_deadline() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(5), a, 1);
        assert!(s.pop_due_until(SimTime::from_secs(4)).is_none());
        assert_eq!(s.now(), SimTime::ZERO, "failed bounded pop must not move the clock");
        assert_eq!(s.pop_due_until(SimTime::from_secs(5)).unwrap().msg, 1);
    }

    #[test]
    fn telemetry_export_names_are_stable() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(1), a, 1u32);
        s.pop_due().unwrap();
        let mut bus = Telemetry::new();
        s.export_telemetry(&mut bus, "sched");
        assert_eq!(bus.counter("sched.events_scheduled"), 1);
        assert!(bus.histogram("sched.max_ready_depth").is_some());
    }
}
