//! Event scheduling: the time-ordered queue half of the kernel.
//!
//! [`Scheduler`] owns the event queue, the global sequence numbering
//! that breaks timestamp ties FIFO, the simulation clock and the stop
//! flag. It knows nothing about actors — delivering an event to one is
//! the [`Executor`](crate::executor::Executor)'s job.
//!
//! ## Batched same-instant delivery
//!
//! Delivery order is defined by the total order `(at, seq)` — earliest
//! time first, FIFO within an instant. A naive implementation pushes
//! every event through the binary heap, paying `O(log n)` twice per
//! event even for the very common case of same-instant cascades
//! (device → network controller → supervisor chains at one timestamp).
//!
//! The scheduler instead drains *all* events due at the current instant
//! from the heap into a FIFO batch (`VecDeque`) in one go. While that
//! instant is open, newly scheduled events that land on the current
//! time are appended to the batch directly: their sequence numbers are
//! globally maximal, so appending preserves exactly the `(at, seq)`
//! order, and the heap — which after the drain holds only strictly
//! later events — is never touched. Same-instant cascades therefore
//! cost `O(1)` per event instead of `O(log n)`.

use crate::actor::ActorId;
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A queued event: deliver `msg` to `target` at time `at`.
#[derive(Debug)]
pub struct Scheduled<M> {
    /// Delivery time.
    pub at: SimTime,
    /// Global FIFO tie-break sequence number.
    pub(crate) seq: u64,
    /// Receiving actor.
    pub target: ActorId,
    /// The message itself.
    pub msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    // Reversed so the BinaryHeap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event-queue half of the simulation kernel.
///
/// Invariant (between [`Scheduler::pop_due`] calls while an instant is
/// open): the heap contains only events with `at > now`; everything due
/// at `now` sits in the FIFO batch.
#[derive(Debug)]
pub struct Scheduler<M> {
    heap: BinaryHeap<Scheduled<M>>,
    batch: VecDeque<Scheduled<M>>,
    seq: u64,
    now: SimTime,
    stop: bool,
    /// True while events for the instant `now` are being delivered,
    /// i.e. the heap has been drained for `now`.
    instant_open: bool,
}

impl<M> Default for Scheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            batch: VecDeque::new(),
            seq: 0,
            now: SimTime::ZERO,
            stop: false,
            instant_open: false,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events queued (heap + current-instant batch).
    pub fn pending(&self) -> usize {
        self.heap.len() + self.batch.len()
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop
    }

    /// Requests that the run stop after the event being processed.
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    /// The delivery time of the next queued event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if !self.batch.is_empty() {
            return Some(self.now);
        }
        self.heap.peek().map(|ev| ev.at)
    }

    /// Schedules `msg` for `target` at absolute time `at`, clamped to
    /// the present if `at` is already past.
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, msg: M) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let ev = Scheduled { at, seq, target, msg };
        if self.instant_open && at == self.now {
            // `seq` is globally maximal, so appending keeps the batch in
            // `(at, seq)` order; the heap holds only later events.
            self.batch.push_back(ev);
        } else {
            self.heap.push(ev);
        }
    }

    /// Schedules `msg` for `target` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, target: ActorId, msg: M) {
        self.schedule_at(self.now.saturating_add(delay), target, msg);
    }

    /// Removes and returns the next due event, advancing the clock to
    /// its timestamp. Returns `None` if the queue is empty or a stop was
    /// requested.
    pub fn pop_due(&mut self) -> Option<Scheduled<M>> {
        if self.stop {
            return None;
        }
        if let Some(ev) = self.batch.pop_front() {
            return Some(ev);
        }
        // Open the next instant: advance to the earliest heap event and
        // drain everything that shares its timestamp into the batch.
        // The heap yields equal-time events in ascending `seq`, so the
        // batch comes out FIFO.
        let first = self.heap.pop()?;
        debug_assert!(first.at >= self.now, "event queue went backwards");
        self.now = first.at;
        self.instant_open = true;
        while let Some(next) = self.heap.peek() {
            if next.at != self.now {
                break;
            }
            let next = self.heap.pop().expect("peeked event exists");
            self.batch.push_back(next);
        }
        Some(first)
    }

    /// Advances the clock to `deadline` with no events to deliver (used
    /// by `run_until` when the queue holds nothing before the deadline).
    /// Closes the current instant: later same-time schedules go through
    /// the heap again.
    pub fn advance_to(&mut self, deadline: SimTime) {
        debug_assert!(self.batch.is_empty(), "advancing over undelivered events");
        if deadline > self.now {
            self.now = deadline;
            self.instant_open = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(sched: &mut Scheduler<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = sched.pop_due() {
            out.push((ev.at, ev.msg));
        }
        out
    }

    #[test]
    fn orders_by_time_then_fifo() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(2), a, 10);
        s.schedule_at(SimTime::from_secs(1), a, 20);
        s.schedule_at(SimTime::from_secs(2), a, 11);
        s.schedule_at(SimTime::from_secs(1), a, 21);
        assert_eq!(
            drain_order(&mut s),
            vec![
                (SimTime::from_secs(1), 20),
                (SimTime::from_secs(1), 21),
                (SimTime::from_secs(2), 10),
                (SimTime::from_secs(2), 11),
            ]
        );
    }

    #[test]
    fn same_instant_sends_go_to_open_batch() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(1), a, 1);
        s.schedule_at(SimTime::from_secs(1), a, 2);
        let first = s.pop_due().unwrap();
        assert_eq!(first.msg, 1);
        // A cascade send while instant 1s is open: must come after msg 2
        // but before any later event, without touching the heap.
        s.schedule_at(s.now(), a, 3);
        assert_eq!(s.heap.len(), 0);
        assert_eq!(s.pop_due().unwrap().msg, 2);
        assert_eq!(s.pop_due().unwrap().msg, 3);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(5), a, 1);
        let ev = s.pop_due().unwrap();
        assert_eq!(ev.at, SimTime::from_secs(5));
        s.schedule_at(SimTime::ZERO, a, 2);
        let ev = s.pop_due().unwrap();
        assert_eq!(ev.at, SimTime::from_secs(5), "past event clamps to now");
        assert_eq!(ev.msg, 2);
    }

    #[test]
    fn stop_halts_delivery() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::ZERO, a, 1);
        s.request_stop();
        assert!(s.pop_due().is_none());
        assert!(s.is_stopped());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn advance_to_closes_instant() {
        let mut s = Scheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(1), a, 1);
        assert_eq!(s.pop_due().unwrap().msg, 1);
        s.advance_to(SimTime::from_secs(10));
        assert_eq!(s.now(), SimTime::from_secs(10));
        // A schedule at the (new) current time must still be delivered.
        s.schedule_at(SimTime::from_secs(10), a, 2);
        let ev = s.pop_due().unwrap();
        assert_eq!((ev.at, ev.msg), (SimTime::from_secs(10), 2));
    }

    #[test]
    fn next_event_time_sees_batch_and_heap() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = ActorId::from_index(0);
        assert_eq!(s.next_event_time(), None);
        s.schedule_at(SimTime::from_secs(3), a, 1);
        assert_eq!(s.next_event_time(), Some(SimTime::from_secs(3)));
        s.schedule_at(SimTime::from_secs(3), a, 2);
        s.pop_due().unwrap();
        // msg 2 now sits in the open batch.
        assert_eq!(s.next_event_time(), Some(SimTime::from_secs(3)));
    }
}
