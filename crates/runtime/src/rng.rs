//! Deterministic random number streams.
//!
//! Every stochastic element of a simulation draws from a [`SimRng`]
//! stream derived from a single master seed plus a stream label. Streams
//! are statistically independent but fully reproducible: the same master
//! seed always yields the same experiment, regardless of how many other
//! streams exist or in which order they are created.
//!
//! ```
//! use mcps_runtime::rng::RngFactory;
//! use rand::Rng;
//!
//! let factory = RngFactory::new(42);
//! let mut a = factory.stream("patient-0");
//! let mut b = factory.stream("patient-0");
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same label ⇒ same stream
//! ```

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream (ChaCha8, seeded).
pub type SimRng = ChaCha8Rng;

/// Derives independent, reproducible [`SimRng`] streams from one master
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given master seed.
    pub const fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the stream for a string label. Equal labels always give
    /// identical streams; distinct labels give independent streams.
    pub fn stream(&self, label: &str) -> SimRng {
        ChaCha8Rng::seed_from_u64(self.master_seed ^ fnv1a(label.as_bytes()))
    }

    /// Returns the stream for a numeric index (e.g. an actor id).
    pub fn stream_idx(&self, idx: u64) -> SimRng {
        ChaCha8Rng::seed_from_u64(self.master_seed ^ splitmix64(idx.wrapping_add(0x9E37_79B9)))
    }
}

/// 64-bit FNV-1a hash, used only for seed derivation (stability matters
/// more than distribution quality here).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer, decorrelates consecutive indices.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws from a normal distribution via the Box–Muller transform.
///
/// `rand_distr` is not among the approved dependencies, so the few
/// distributions the simulators need are implemented here.
pub fn normal(rng: &mut impl RngCore, mean: f64, std_dev: f64) -> f64 {
    // Box–Muller: two uniforms -> one normal (the second is discarded to
    // keep the call stateless).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws from a log-normal distribution with the given *underlying*
/// normal parameters.
pub fn log_normal(rng: &mut impl RngCore, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws an exponentially distributed value with the given mean.
///
/// # Panics
///
/// Panics if `mean` is not finite and positive.
pub fn exponential(rng: &mut impl RngCore, mean: f64) -> f64 {
    assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli(rng: &mut impl RngCore, p: f64) -> bool {
    rng.gen_range(0.0..1.0) < p.clamp(0.0, 1.0)
}

/// Draws a value from a triangular distribution on `[low, high]` with
/// the given `mode`.
///
/// # Panics
///
/// Panics if the parameters do not satisfy `low <= mode <= high`.
pub fn triangular(rng: &mut impl RngCore, low: f64, mode: f64, high: f64) -> f64 {
    assert!(low <= mode && mode <= high, "triangular requires low <= mode <= high");
    if low == high {
        return low;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    let fc = (mode - low) / (high - low);
    if u < fc {
        low + ((high - low) * (mode - low) * u).sqrt()
    } else {
        high - ((high - low) * (high - mode) * (1.0 - u)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(7);
        let xs: Vec<u64> = (0..8).map(|_| 0).collect();
        let mut a = f.stream("x");
        let mut b = f.stream("x");
        for _ in xs {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        let mut a = f.stream("x");
        let mut b = f.stream("y");
        // Astronomically unlikely to collide on first draw if independent.
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngFactory::new(1).stream("x");
        let mut b = RngFactory::new(2).stream("x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn index_streams_are_reproducible() {
        let f = RngFactory::new(99);
        let mut a = f.stream_idx(3);
        let mut b = f.stream_idx(3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = f.stream_idx(4);
        assert_ne!(f.stream_idx(3).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn normal_moments() {
        let mut rng = RngFactory::new(5).stream("normal");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = RngFactory::new(5).stream("exp");
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = RngFactory::new(5).stream("bern");
        let n = 20_000;
        let hits = (0..n).filter(|_| bernoulli(&mut rng, 0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn triangular_bounds_and_degenerate() {
        let mut rng = RngFactory::new(5).stream("tri");
        for _ in 0..1_000 {
            let x = triangular(&mut rng, 1.0, 2.0, 4.0);
            assert!((1.0..=4.0).contains(&x));
        }
        assert_eq!(triangular(&mut rng, 3.0, 3.0, 3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "triangular")]
    fn triangular_rejects_bad_params() {
        let mut rng = RngFactory::new(5).stream("tri2");
        let _ = triangular(&mut rng, 2.0, 1.0, 4.0);
    }
}
