//! Summary statistics used by the experiment harnesses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 if n < 2).
    pub std_dev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary of `values`. Non-finite values are ignored.
    pub fn from_values(values: &[f64]) -> Self {
        let mut xs: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: xs[0],
            max: xs[n - 1],
            median: percentile_sorted(&xs, 50.0),
            p95: percentile_sorted(&xs, 95.0),
            p99: percentile_sorted(&xs, 99.0),
        }
    }

    /// Half-width of the ~95% normal-approximation confidence interval
    /// of the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3}±{:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.n,
            self.mean,
            self.ci95_half_width(),
            self.min,
            self.median,
            self.p95,
            self.p99,
            self.max
        )
    }
}

/// Percentile (0–100) of an unsorted sample by linear interpolation.
/// Non-finite values are ignored; returns 0 for an empty sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut xs: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    percentile_sorted(&xs, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Useful when an experiment streams millions of samples and storing
/// them for [`Summary::from_values`] would be wasteful.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 if n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let e = Summary::from_values(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::from_values(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!((s.median, s.p95, s.p99), (7.0, 7.0, 7.0));
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_ignores_nan() {
        let s = Summary::from_values(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&xs, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 40.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let s = Summary::from_values(&xs);
        assert!((w.mean() - s.mean).abs() < 1e-9);
        assert!((w.std_dev() - s.std_dev).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = (50..100).map(|i| i as f64 * 1.5).collect();
        let mut a = Welford::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);
        let mut all = Welford::new();
        xs.iter().chain(&ys).for_each(|&x| all.push(x));
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-6);
    }
}
