//! Run-time metric collection: counters and timestamped series.
//!
//! Actors record observations into a [`MetricsHub`] (usually owned by the
//! experiment harness and shared via `Rc<RefCell<_>>` or filled from
//! trace post-processing). Experiments then reduce series to
//! [`Summary`] rows.

use super::stats::Summary;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A timestamped scalar series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` precedes the last recorded point;
    /// series must be recorded in time order.
    pub fn record(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(t, _)| *t <= at),
            "time series recorded out of order"
        );
        self.points.push((at, value));
    }

    /// Inserts an observation that may precede already-recorded points,
    /// keeping the series sorted by time. Ties insert *after* existing
    /// equal-time points, so merging shard series is stable. Used by
    /// telemetry merge; prefer [`TimeSeries::record`] during a run.
    pub fn record_unordered(&mut self, at: SimTime, value: f64) {
        let idx = self.points.partition_point(|(t, _)| *t <= at);
        if idx == self.points.len() {
            self.points.push((at, value));
        } else {
            self.points.insert(idx, (at, value));
        }
    }

    /// All points in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Just the values, in time order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, v)| *v).collect()
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// The value in effect at time `at` under sample-and-hold semantics
    /// (i.e. the most recent point at or before `at`).
    pub fn sample_at(&self, at: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|(t, _)| t.cmp(&at)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Fraction of *time* (not samples) during which
    /// `predicate(value)` held, over `[start, end]`, under
    /// sample-and-hold semantics. Returns `None` for an empty window or
    /// series.
    pub fn time_fraction_where(
        &self,
        start: SimTime,
        end: SimTime,
        mut predicate: impl FnMut(f64) -> bool,
    ) -> Option<f64> {
        if end <= start || self.points.is_empty() {
            return None;
        }
        let total = (end - start).as_micros() as f64;
        let mut held = 0u64;
        let mut cur = start;
        let mut cur_val = self.sample_at(start);
        for &(t, v) in &self.points {
            if t <= start {
                continue;
            }
            if t >= end {
                break;
            }
            if let Some(val) = cur_val {
                if predicate(val) {
                    held += (t - cur).as_micros();
                }
            }
            cur = t;
            cur_val = Some(v);
        }
        if let Some(val) = cur_val {
            if predicate(val) {
                held += (end - cur).as_micros();
            }
        }
        Some(held as f64 / total)
    }

    /// Summary statistics of the values.
    pub fn summary(&self) -> Summary {
        Summary::from_values(&self.values())
    }
}

/// A named collection of counters and series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsHub {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends to the named series (creating it if needed).
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        self.series.entry(name.to_owned()).or_default().record(at, value);
    }

    /// The named series, if it exists.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Names of all series, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(points: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(sec, v) in points {
            s.record(SimTime::from_secs(sec), v);
        }
        s
    }

    #[test]
    fn sample_and_hold() {
        let s = ts(&[(10, 1.0), (20, 2.0)]);
        assert_eq!(s.sample_at(SimTime::from_secs(5)), None);
        assert_eq!(s.sample_at(SimTime::from_secs(10)), Some(1.0));
        assert_eq!(s.sample_at(SimTime::from_secs(15)), Some(1.0));
        assert_eq!(s.sample_at(SimTime::from_secs(20)), Some(2.0));
        assert_eq!(s.sample_at(SimTime::from_secs(99)), Some(2.0));
        assert_eq!(s.last(), Some(2.0));
    }

    #[test]
    fn time_fraction_basic() {
        // value 1.0 on [0,10), 3.0 on [10,20]
        let s = ts(&[(0, 1.0), (10, 3.0)]);
        let frac =
            s.time_fraction_where(SimTime::ZERO, SimTime::from_secs(20), |v| v > 2.0).unwrap();
        assert!((frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_fraction_window_inside_segment() {
        let s = ts(&[(0, 5.0)]);
        let frac = s
            .time_fraction_where(SimTime::from_secs(3), SimTime::from_secs(7), |v| v > 1.0)
            .unwrap();
        assert!((frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_fraction_empty_cases() {
        let s = TimeSeries::new();
        assert!(s.time_fraction_where(SimTime::ZERO, SimTime::from_secs(1), |_| true).is_none());
        let s = ts(&[(0, 1.0)]);
        assert!(s
            .time_fraction_where(SimTime::from_secs(2), SimTime::from_secs(2), |_| true)
            .is_none());
    }

    #[test]
    fn hub_counters_and_series() {
        let mut hub = MetricsHub::new();
        hub.incr("boluses", 1);
        hub.incr("boluses", 2);
        assert_eq!(hub.counter("boluses"), 3);
        assert_eq!(hub.counter("missing"), 0);
        hub.record("spo2", SimTime::from_secs(1), 97.0);
        hub.record("spo2", SimTime::from_secs(2), 95.0);
        assert_eq!(hub.series("spo2").unwrap().len(), 2);
        assert_eq!(hub.series_names().collect::<Vec<_>>(), vec!["spo2"]);
        assert_eq!(hub.counter_names().collect::<Vec<_>>(), vec!["boluses"]);
    }
}
