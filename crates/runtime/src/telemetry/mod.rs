//! Telemetry: the single sink for run statistics.
//!
//! Replaces the previously scattered stats facilities (simulation
//! summary stats, metrics hub, per-domain counters) with one bus that
//! domain crates write through:
//!
//! - **Counters** — monotonically increasing named `u64`s.
//! - **Histograms** — named collections of `f64` observations,
//!   summarized on demand ([`Summary`], [`percentile`]).
//! - **Time series** — named `(SimTime, f64)` tracks with
//!   sample-and-hold lookup ([`TimeSeries`]).
//! - **Manifest** — ordered key/value run metadata (seed, scenario,
//!   configuration), so an exported telemetry blob identifies the run
//!   that produced it.
//!
//! Everything is stored in `BTreeMap`s so serialization order — and
//! therefore exported JSON — is deterministic. [`Telemetry::merge`]
//! combines per-shard buses into one, which is what keeps
//! shard-parallel runs byte-identical to serial ones: each shard
//! writes into its own bus and the merged result is independent of
//! completion order.

mod series;
mod stats;

pub use series::{MetricsHub, TimeSeries};
pub use stats::{percentile, Summary, Welford};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named collection of observations, summarized on demand.
///
/// Kept as raw values (not pre-bucketed) so percentiles stay exact and
/// merging shards is lossless concatenation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    values: Vec<f64>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// The raw observations, in recording order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Summary statistics over all observations.
    pub fn summary(&self) -> Summary {
        Summary::from_values(&self.values)
    }

    /// Appends all of `other`'s observations.
    pub fn merge(&mut self, other: &Histogram) {
        self.values.extend_from_slice(&other.values);
    }

    /// Appends all of `other`'s observations by move. When `self` is
    /// empty this is a buffer swap, not a copy.
    pub fn merge_owned(&mut self, mut other: Histogram) {
        if self.values.is_empty() {
            std::mem::swap(&mut self.values, &mut other.values);
        } else {
            self.values.append(&mut other.values);
        }
    }
}

/// The telemetry bus: counters, histograms, time series and a run
/// manifest, all keyed by name with deterministic (sorted) ordering.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
    manifest: BTreeMap<String, String>,
}

impl Telemetry {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by `by` (creating it at zero).
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// The histogram named `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Appends `(at, value)` to time series `name`.
    pub fn record(&mut self, name: &str, at: crate::time::SimTime, value: f64) {
        self.series.entry(name.to_owned()).or_default().record(at, value);
    }

    /// The time series named `name`, if any point was recorded.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Sets manifest entry `key` to `value` (last write wins).
    pub fn annotate(&mut self, key: &str, value: impl Into<String>) {
        self.manifest.insert(key.to_owned(), value.into());
    }

    /// The run manifest.
    pub fn manifest(&self) -> &BTreeMap<String, String> {
        &self.manifest
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Folds `other` into `self`: counters add, histograms concatenate,
    /// series points interleave by time (stable for disjoint shards),
    /// manifest entries from `other` win on key collision.
    pub fn merge(&mut self, other: &Telemetry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.series {
            let dst = self.series.entry(k.clone()).or_default();
            for &(at, v) in s.points() {
                dst.record_unordered(at, v);
            }
        }
        for (k, v) in &other.manifest {
            self.manifest.insert(k.clone(), v.clone());
        }
    }

    /// [`Self::merge`] by move: consumes `other`, transferring its
    /// `String` keys and observation buffers instead of cloning and
    /// re-allocating them. Produces a bus identical to `merge` — the
    /// only difference is cost. This is the shard-merge hot path at
    /// campus cardinality, where tens of thousands of counter names
    /// would otherwise be re-allocated once per shard.
    pub fn merge_owned(&mut self, other: Telemetry) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in other.histograms {
            match self.histograms.entry(k) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge_owned(h),
            }
        }
        for (k, s) in other.series {
            match self.series.entry(k) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    // A shard's own series is recorded in time order, so
                    // moving it wholesale equals replaying its points
                    // through `record_unordered` into an empty series.
                    e.insert(s);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let dst = e.get_mut();
                    for &(at, v) in s.points() {
                        dst.record_unordered(at, v);
                    }
                }
            }
        }
        for (k, v) in other.manifest {
            self.manifest.insert(k, v);
        }
    }

    /// Deterministic k-way merge of per-shard buses, consuming them.
    /// Shard order is input order, so the result is byte-identical to
    /// folding the shards into an empty bus with [`Self::merge`] —
    /// verified by the `merge_many_matches_sequential_merge` test —
    /// while the first shard seeds the accumulator for free and every
    /// key/buffer moves instead of cloning.
    pub fn merge_many(shards: Vec<Telemetry>) -> Telemetry {
        let mut shards = shards.into_iter();
        let Some(mut acc) = shards.next() else {
            return Telemetry::new();
        };
        for shard in shards {
            acc.merge_owned(shard);
        }
        acc
    }

    /// A plain-text report of every counter and histogram summary, for
    /// experiment binaries that print to stdout.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        if !self.manifest.is_empty() {
            out.push_str("run manifest:\n");
            for (k, v) in &self.manifest {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!("  {k:<40} {}\n", h.summary()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn counters_accumulate() {
        let mut t = Telemetry::new();
        t.incr("alarms.raised", 1);
        t.incr("alarms.raised", 2);
        assert_eq!(t.counter("alarms.raised"), 3);
        assert_eq!(t.counter("never"), 0);
    }

    #[test]
    fn histogram_summary_and_merge() {
        let mut a = Histogram::default();
        for v in [1.0, 2.0, 3.0] {
            a.record(v);
        }
        let mut b = Histogram::default();
        b.record(4.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        let s = a.summary();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_all_channels() {
        let mut a = Telemetry::new();
        a.incr("n", 1);
        a.observe("lat", 5.0);
        a.record("hr", SimTime::from_secs(1), 70.0);
        a.annotate("seed", "1");

        let mut b = Telemetry::new();
        b.incr("n", 2);
        b.observe("lat", 7.0);
        b.record("hr", SimTime::from_secs(2), 72.0);
        b.annotate("shards", "2");

        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.series("hr").unwrap().len(), 2);
        assert_eq!(a.manifest().get("shards").map(String::as_str), Some("2"));
    }

    #[test]
    fn merge_is_order_independent_for_disjoint_series() {
        // Two shards recording interleaved timestamps must merge to the
        // same series regardless of merge order.
        let mut s1 = Telemetry::new();
        s1.record("x", SimTime::from_secs(1), 1.0);
        s1.record("x", SimTime::from_secs(3), 3.0);
        let mut s2 = Telemetry::new();
        s2.record("x", SimTime::from_secs(2), 2.0);

        let mut ab = Telemetry::new();
        ab.merge(&s1);
        ab.merge(&s2);
        let mut ba = Telemetry::new();
        ba.merge(&s2);
        ba.merge(&s1);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.series("x").unwrap().points(),
            &[
                (SimTime::from_secs(1), 1.0),
                (SimTime::from_secs(2), 2.0),
                (SimTime::from_secs(3), 3.0)
            ]
        );
    }

    #[test]
    fn merge_many_matches_sequential_merge() {
        // Build shards with overlapping and disjoint keys across every
        // channel, then check the owned k-way merge is byte-identical
        // (PartialEq and serialized JSON) to the clone-based fold.
        let mut shards = Vec::new();
        for i in 0..5u64 {
            let mut t = Telemetry::new();
            t.incr("events", i + 1);
            t.incr(&format!("shard.{i}.local"), 7);
            t.observe("lat", i as f64);
            t.observe(&format!("lat.{}", i % 2), i as f64 * 0.5);
            // Interleaved timestamps across shards, sorted within each.
            t.record("hr", SimTime::from_micros(i), 60.0 + i as f64);
            t.record("hr", SimTime::from_micros(i + 10), 70.0 + i as f64);
            t.annotate("seed", format!("{i}"));
            shards.push(t);
        }

        let mut folded = Telemetry::new();
        for s in &shards {
            folded.merge(s);
        }
        let kway = Telemetry::merge_many(shards);
        assert_eq!(kway, folded);
        assert_eq!(serde_json::to_string(&kway).unwrap(), serde_json::to_string(&folded).unwrap());
    }

    #[test]
    fn merge_many_of_empty_and_single() {
        assert_eq!(Telemetry::merge_many(Vec::new()), Telemetry::new());
        let mut t = Telemetry::new();
        t.incr("n", 3);
        assert_eq!(Telemetry::merge_many(vec![t.clone()]), t);
    }

    #[test]
    fn report_mentions_all_channels() {
        let mut t = Telemetry::new();
        t.annotate("scenario", "e1");
        t.incr("events", 10);
        t.observe("rtt_ms", 1.5);
        let report = t.render_report();
        assert!(report.contains("scenario = e1"));
        assert!(report.contains("events"));
        assert!(report.contains("rtt_ms"));
    }
}
