//! Actor storage and message dispatch: the delivery half of the kernel.
//!
//! [`Executor`] owns the actor slab, per-actor deterministic RNG
//! streams and the [`RngFactory`] they derive from. It delivers events
//! popped from a [`Scheduler`] by handing each actor a [`Context`]
//! scoped to the current instant.

use crate::actor::{Actor, ActorId};
use crate::rng::{RngFactory, SimRng};
use crate::scheduler::{Scheduled, Scheduler};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use std::collections::VecDeque;

/// The capabilities an [`Actor`] may use while handling a message.
///
/// A `Context` is handed to [`Actor::handle`] and borrows the mutable
/// pieces of the running kernel: the scheduler (for sends and stop
/// control), the trace log and the actor's own RNG stream.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ActorId,
    sched: &'a mut Scheduler<M>,
    trace: &'a mut TraceLog,
    rng: &'a mut SimRng,
}

impl<M> Context<'_, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// The handling actor's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Delivers `msg` to `target` at the current time, after all events
    /// already queued for this instant.
    pub fn send(&mut self, target: ActorId, msg: M) {
        // Dispatch always runs with the current instant open, so this
        // can append straight to the ready ring, skipping the clamp
        // and instant checks of the general scheduling path.
        self.sched.push_now(target, msg);
    }

    /// Delivers a run of messages to `target` at the current time, in
    /// iteration order, after all events already queued for this
    /// instant. Equivalent to calling [`Self::send`] per message, but
    /// the ready ring reserves space once for the whole run.
    pub fn send_many<I>(&mut self, target: ActorId, msgs: I)
    where
        I: IntoIterator<Item = M>,
    {
        self.sched.push_now_many(target, msgs);
    }

    /// Delivers `msg` to `target` after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, target: ActorId, msg: M) {
        self.schedule_at(self.now.saturating_add(delay), target, msg);
    }

    /// Delivers `msg` to the handling actor itself after `delay`.
    pub fn schedule_self(&mut self, delay: SimDuration, msg: M) {
        self.schedule(delay, self.self_id, msg);
    }

    /// Delivers `msg` to `target` at absolute time `at` (clamped to the
    /// present if `at` is in the past).
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, msg: M) {
        self.sched.schedule_at(at, target, msg);
    }

    /// Appends a record to the simulation trace, attributed to this
    /// actor at the current time.
    ///
    /// Prefer [`Self::trace_with`] when the message requires formatting:
    /// `trace` evaluates its message argument even when the log is
    /// disabled, while `trace_with` defers construction entirely.
    pub fn trace(&mut self, category: &str, message: impl Into<String>) {
        self.trace.push(self.now, self.self_id, category, message);
    }

    /// Whether the trace log currently records anything. Hot paths can
    /// gate expensive message construction on this.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Appends a lazily built record to the simulation trace. The
    /// closure runs only when the log is enabled, so disabled-trace runs
    /// pay no allocation or formatting cost for hot-path traces.
    pub fn trace_with(&mut self, category: &str, message: impl FnOnce() -> String) {
        if self.trace.is_enabled() {
            self.trace.push(self.now, self.self_id, category, message());
        }
    }

    /// Requests that the simulation stop after the current event.
    pub fn stop(&mut self) {
        self.sched.request_stop();
    }

    /// Whether a stop has been requested (by this actor or any other).
    pub fn stop_requested(&self) -> bool {
        self.sched.is_stopped()
    }
}

/// A run of same-instant messages addressed to one actor, consumed
/// front to back by [`Actor::handle_run`]. Wraps a drain of the
/// kernel's batch buffer, so pulling a message moves it out without
/// per-message queue bookkeeping.
pub struct MsgRun<'a, M> {
    inner: std::collections::vec_deque::Drain<'a, (ActorId, M)>,
}

impl<M> Iterator for MsgRun<'_, M> {
    type Item = M;

    /// The next message of the run, or `None` when the run is done.
    #[inline]
    fn next(&mut self) -> Option<M> {
        self.inner.next().map(|(_, msg)| msg)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<M> MsgRun<'_, M> {
    /// Messages not yet consumed.
    pub fn remaining(&self) -> usize {
        self.inner.len()
    }

    /// Consumes the run, returning the unhandled tail (empty unless a
    /// stop cut the run short). Allocation-free when nothing remains.
    fn into_leftover(self) -> Vec<(ActorId, M)> {
        self.inner.collect()
    }
}

/// The actor-slab half of the simulation kernel.
pub struct Executor<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    names: Vec<String>,
    rngs: Vec<SimRng>,
    rng_factory: RngFactory,
}

impl<M> std::fmt::Debug for Executor<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor").field("actors", &self.actors.len()).finish()
    }
}

impl<M: 'static> Executor<M> {
    /// Creates an empty executor whose randomness derives from
    /// `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Executor {
            actors: Vec::new(),
            names: Vec::new(),
            rngs: Vec::new(),
            rng_factory: RngFactory::new(master_seed),
        }
    }

    /// Registers an actor and returns its id. The actor's RNG stream is
    /// derived from the master seed and `name`, so renaming an actor —
    /// not reordering registration — is what changes its randomness.
    pub fn add_actor(&mut self, name: &str, actor: impl Actor<M>) -> ActorId {
        let id = ActorId::from_index(
            u32::try_from(self.actors.len()).expect("more than u32::MAX actors"),
        );
        self.actors.push(Some(Box::new(actor)));
        self.names.push(name.to_owned());
        self.rngs.push(self.rng_factory.stream(name));
        id
    }

    /// The registered name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this executor.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.names[id.index() as usize]
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable access to an actor's concrete state.
    ///
    /// Returns `None` if the id is unknown, the actor is currently being
    /// dispatched, or the concrete type is not `T`.
    pub fn actor_as<T: 'static>(&self, id: ActorId) -> Option<&T> {
        self.actors.get(id.index() as usize)?.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Mutable access to an actor's concrete state (see [`Self::actor_as`]).
    pub fn actor_as_mut<T: 'static>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors.get_mut(id.index() as usize)?.as_mut()?.as_any_mut().downcast_mut::<T>()
    }

    /// The RNG factory, for deriving extra streams outside the actors.
    pub fn rng_factory(&self) -> RngFactory {
        self.rng_factory
    }

    /// Delivers one event to its target actor, giving it a [`Context`]
    /// over `sched` and `trace`. Events addressed to unknown ids are
    /// dropped silently (unreachable through the public kernel API).
    pub fn dispatch(&mut self, ev: Scheduled<M>, sched: &mut Scheduler<M>, trace: &mut TraceLog) {
        let idx = ev.target.index() as usize;
        // Take the actor out of its slot so Context can borrow the rest
        // of the kernel mutably during dispatch.
        let Some(mut actor) = self.actors.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let mut ctx =
            Context { now: ev.at, self_id: ev.target, sched, trace, rng: &mut self.rngs[idx] };
        actor.handle(ev.msg, &mut ctx);
        self.actors[idx] = Some(actor);
    }

    /// Delivers every event in `batch` (one open instant's ready ring,
    /// swapped out by the kernel), chaining consecutive same-target
    /// runs: the actor stays checked out and the [`Context`] is built
    /// once per run, not once per event. Returns the number of events
    /// consumed.
    ///
    /// `batch` is private to this call — actor sends during delivery go
    /// to `sched`'s (empty) ring, never to `batch` — so a run's length
    /// can be counted up front and its events popped unconditionally.
    /// Delivery order is exactly the order a one-event-at-a-time loop
    /// would produce. A stop request halts delivery after the current
    /// event, leaving the remainder in `batch` for the kernel to
    /// return to the queue.
    pub fn dispatch_batch(
        &mut self,
        batch: &mut VecDeque<(ActorId, M)>,
        now: SimTime,
        sched: &mut Scheduler<M>,
        trace: &mut TraceLog,
    ) -> u64 {
        let mut delivered = 0u64;
        while !sched.is_stopped() {
            let Some(&(target, _)) = batch.front() else {
                break;
            };
            let idx = target.index() as usize;
            let Some(mut actor) = self.actors.get_mut(idx).and_then(Option::take) else {
                // Unknown target: drop the event, as `dispatch` does.
                batch.pop_front();
                delivered += 1;
                continue;
            };
            let run = batch.iter().take_while(|(t, _)| *t == target).count();
            let mut ctx = Context { now, self_id: target, sched, trace, rng: &mut self.rngs[idx] };
            if run == 1 {
                // Lone event (fan-out to distinct targets): a plain pop
                // beats the run machinery's setup and teardown.
                let (_, msg) = batch.pop_front().expect("front event is present");
                actor.handle(msg, &mut ctx);
                delivered += 1;
                self.actors[idx] = Some(actor);
                continue;
            }
            // One virtual `handle_run` call covers the whole run; the
            // per-message `handle` calls inside it are static.
            let mut msgs = MsgRun { inner: batch.drain(..run) };
            actor.handle_run(&mut msgs, &mut ctx);
            delivered += (run - msgs.remaining()) as u64;
            // Empty unless a stop interrupted the run — dropping the
            // drain would discard the unhandled tail, so collect it
            // and put it back in front.
            let rest = msgs.into_leftover();
            for e in rest.into_iter().rev() {
                batch.push_front(e);
            }
            self.actors[idx] = Some(actor);
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (Scheduler<()>, TraceLog, SimRng) {
        (Scheduler::new(), TraceLog::new(8), RngFactory::new(1).stream("t"))
    }

    #[test]
    fn trace_with_skips_closure_when_disabled() {
        let (mut sched, mut trace, mut rng) = ctx_parts();
        trace.set_enabled(false);
        let mut built = 0u32;
        {
            let mut ctx = Context {
                now: SimTime::ZERO,
                self_id: ActorId::from_index(0),
                sched: &mut sched,
                trace: &mut trace,
                rng: &mut rng,
            };
            assert!(!ctx.trace_enabled());
            ctx.trace_with("cat", || {
                built += 1;
                "expensive".to_owned()
            });
        }
        assert_eq!(built, 0, "disabled trace must not build the message");
        assert!(trace.is_empty());
    }

    #[test]
    fn trace_with_records_when_enabled() {
        let (mut sched, mut trace, mut rng) = ctx_parts();
        {
            let mut ctx = Context {
                now: SimTime::from_secs(2),
                self_id: ActorId::from_index(0),
                sched: &mut sched,
                trace: &mut trace,
                rng: &mut rng,
            };
            assert!(ctx.trace_enabled());
            ctx.trace_with("cat", || "built".to_owned());
        }
        let rec = trace.records().next().expect("one record");
        assert_eq!(rec.category, "cat");
        assert_eq!(rec.message, "built");
        assert_eq!(rec.at, SimTime::from_secs(2));
    }
}
