//! Actors: the unit of behaviour in a simulation.
//!
//! Every simulated component (a device, the patient, the supervisor, a
//! network link) is an [`Actor`]: it receives timestamped messages and
//! reacts by mutating its own state and scheduling further messages via
//! the [`Context`].

use crate::executor::MsgRun;
use crate::kernel::Context;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;

/// Identifies an actor within one [`Simulation`](crate::kernel::Simulation).
///
/// Ids are dense indices assigned in registration order; they are only
/// meaningful within the simulation that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorId(u32);

impl ActorId {
    /// Builds an id from a raw index. Normally ids come from
    /// [`Simulation::add_actor`](crate::kernel::Simulation::add_actor);
    /// this constructor exists for tests and deserialization.
    pub const fn from_index(index: u32) -> Self {
        ActorId(index)
    }

    /// The raw dense index of this actor.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Upcasting support so concrete actor state can be inspected after (or
/// during) a run via [`Simulation::actor_as`](crate::kernel::Simulation::actor_as).
///
/// This trait is blanket-implemented for every `'static` type; do not
/// implement it manually.
pub trait AsAny: Any {
    /// `self` as a dynamically-typed reference.
    fn as_any(&self) -> &dyn Any;
    /// `self` as a dynamically-typed mutable reference.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulation component that reacts to messages of type `M`.
///
/// Implementations mutate their own state and use the [`Context`] to
/// read the clock, draw randomness, emit trace records and schedule
/// messages (to themselves or to other actors).
///
/// ```
/// use mcps_runtime::prelude::*;
///
/// struct Counter { n: u64 }
///
/// impl Actor<u64> for Counter {
///     fn handle(&mut self, msg: u64, ctx: &mut Context<'_, u64>) {
///         self.n += msg;
///         if self.n < 3 {
///             ctx.schedule_self(SimDuration::from_secs(1), 1);
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(0);
/// let id = sim.add_actor("counter", Counter { n: 0 });
/// sim.schedule(SimTime::ZERO, id, 1);
/// sim.run();
/// assert_eq!(sim.actor_as::<Counter>(id).unwrap().n, 3);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
pub trait Actor<M>: AsAny {
    /// Handles one message delivered at the current simulation time.
    fn handle(&mut self, msg: M, ctx: &mut Context<'_, M>);

    /// Handles a run of same-instant messages addressed to this actor,
    /// in order. The kernel calls this once per run instead of once
    /// per message.
    ///
    /// The default forwards each message to [`Self::handle`] and stops
    /// early if the actor requests a stop — exactly what a
    /// message-at-a-time loop would do. Because default trait methods
    /// are monomorphized per implementation, those `handle` calls
    /// resolve statically and inline, so the dynamic dispatch cost is
    /// paid once per run, not once per message.
    ///
    /// Overrides must preserve those semantics: consume `msgs` front to
    /// back, treat each message exactly as `handle` would, and return
    /// early (leaving the rest unconsumed) once a stop is requested.
    fn handle_run(&mut self, msgs: &mut MsgRun<'_, M>, ctx: &mut Context<'_, M>) {
        for msg in msgs.by_ref() {
            self.handle(msg, ctx);
            if ctx.stop_requested() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_roundtrip_and_display() {
        let id = ActorId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "actor#7");
    }

    #[test]
    fn as_any_downcasts() {
        struct S(u32);
        let s = S(5);
        let any: &dyn AsAny = &s;
        assert_eq!(any.as_any().downcast_ref::<S>().unwrap().0, 5);
    }
}
