//! The discrete-event simulation executive.
//!
//! [`Simulation`] joins a [`Scheduler`] (event queue, clock, stop
//! control) and an [`Executor`] (actor slab, dispatch, RNG streams)
//! behind the classic kernel API. Events with equal timestamps are
//! delivered in scheduling order (FIFO), which — together with seeded
//! RNG streams — makes every run bit-reproducible. Same-instant
//! cascades are delivered through the scheduler's batch, avoiding
//! per-event heap churn on the hot path.

use crate::actor::{Actor, ActorId};
use crate::executor::Executor;
use crate::rng::RngFactory;
use crate::scheduler::Scheduler;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;

pub use crate::executor::Context;

/// The minimal surface a simulation driver needs: a clock, single-step
/// dispatch and bounded runs. [`Simulation`] is the standard
/// implementation; alternative runtimes (e.g. instrumented or
/// co-simulated kernels) can wrap one and interpose on `step`.
pub trait Runtime<M> {
    /// Current simulation time.
    fn now(&self) -> SimTime;

    /// Total events dispatched so far.
    fn events_processed(&self) -> u64;

    /// Dispatches the next event, if any. Returns `false` when the
    /// queue is empty or a stop was requested.
    fn step(&mut self) -> bool;

    /// Runs until the queue drains or a stop is requested. Returns the
    /// number of events processed by this call.
    fn run(&mut self) -> u64 {
        let before = self.events_processed();
        while self.step() {}
        self.events_processed() - before
    }

    /// Runs until `deadline` (inclusive), the queue drains, or a stop
    /// is requested. On return, `now()` is exactly `deadline` unless
    /// the run stopped early. Returns the number of events processed.
    fn run_until(&mut self, deadline: SimTime) -> u64;
}

/// A deterministic discrete-event simulation over message type `M`.
///
/// See the [`Actor`] docs for a complete usage example.
pub struct Simulation<M> {
    scheduler: Scheduler<M>,
    executor: Executor<M>,
    trace: TraceLog,
    events_processed: u64,
    /// Batch-dispatch scratch: the ready ring is swapped in here one
    /// instant at a time, so steady-state runs reuse the same two
    /// buffers with zero allocation.
    scratch: std::collections::VecDeque<(ActorId, M)>,
}

impl<M: 'static> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("actors", &self.executor.actor_count())
            .field("now", &self.scheduler.now())
            .field("pending", &self.scheduler.pending())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation whose randomness derives from
    /// `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Simulation {
            scheduler: Scheduler::new(),
            executor: Executor::new(master_seed),
            trace: TraceLog::default(),
            events_processed: 0,
            scratch: std::collections::VecDeque::new(),
        }
    }

    /// Registers an actor and returns its id. The actor's RNG stream is
    /// derived from the master seed and `name`, so renaming an actor —
    /// not reordering registration — is what changes its randomness.
    pub fn add_actor(&mut self, name: &str, actor: impl Actor<M>) -> ActorId {
        self.executor.add_actor(name, actor)
    }

    /// The registered name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulation.
    pub fn actor_name(&self, id: ActorId) -> &str {
        self.executor.actor_name(id)
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.executor.actor_count()
    }

    /// Immutable access to an actor's concrete state.
    ///
    /// Returns `None` if the id is unknown, the actor is currently being
    /// dispatched, or the concrete type is not `T`.
    pub fn actor_as<T: 'static>(&self, id: ActorId) -> Option<&T> {
        self.executor.actor_as(id)
    }

    /// Mutable access to an actor's concrete state (see [`Self::actor_as`]).
    pub fn actor_as_mut<T: 'static>(&mut self, id: ActorId) -> Option<&mut T> {
        self.executor.actor_as_mut(id)
    }

    /// The scheduler half of the kernel.
    pub fn scheduler(&self) -> &Scheduler<M> {
        &self.scheduler
    }

    /// The executor half of the kernel.
    pub fn executor(&self) -> &Executor<M> {
        &self.executor
    }

    /// Schedules `msg` for `target` at absolute time `at` (clamped to
    /// the present).
    pub fn schedule(&mut self, at: SimTime, target: ActorId, msg: M) {
        self.scheduler.schedule_at(at, target, msg);
    }

    /// Schedules `msg` for `target` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, target: ActorId, msg: M) {
        self.scheduler.schedule_after(delay, target, msg);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.scheduler.pending()
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable trace log (e.g. to disable recording for benchmarks).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// The RNG factory, for deriving extra streams outside the actors.
    pub fn rng_factory(&self) -> RngFactory {
        self.executor.rng_factory()
    }

    /// Whether an actor has requested a stop.
    pub fn is_stopped(&self) -> bool {
        self.scheduler.is_stopped()
    }

    /// Dispatches the next event, if any. Returns `false` when the queue
    /// is empty or a stop was requested.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.scheduler.pop_due() else {
            return false;
        };
        self.executor.dispatch(ev, &mut self.scheduler, &mut self.trace);
        self.events_processed += 1;
        true
    }

    /// Runs until the queue drains or a stop is requested. Returns the
    /// number of events processed by this call.
    ///
    /// Unlike [`Self::step`] in a loop, each open instant's ready ring
    /// is swapped into a reusable scratch buffer and delivered as one
    /// batch, with consecutive same-target events chained through a
    /// single checked-out actor and context. Delivery order is
    /// identical to stepping.
    pub fn run(&mut self) -> u64 {
        let before = self.events_processed;
        while !self.scheduler.is_stopped() {
            if self.scheduler.ready_is_empty() && !self.scheduler.open_next_instant() {
                break;
            }
            self.dispatch_ready_batch();
        }
        self.events_processed - before
    }

    /// Runs until `deadline` (inclusive), the queue drains, or a stop is
    /// requested. On return, `now()` is exactly `deadline` unless the
    /// run stopped early. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.events_processed;
        while !self.scheduler.is_stopped() {
            if self.scheduler.ready_is_empty() {
                if !self.scheduler.has_event_by(deadline) {
                    break;
                }
                let opened = self.scheduler.open_next_instant();
                debug_assert!(opened, "has_event_by promised an event");
            }
            self.dispatch_ready_batch();
        }
        if !self.scheduler.is_stopped() && self.now() < deadline {
            self.scheduler.advance_to(deadline);
        }
        self.events_processed - before
    }

    /// Swaps the open instant's ready events into the scratch buffer
    /// and delivers them as one batch. If a stop interrupts the batch,
    /// the undelivered remainder goes back to the queue.
    fn dispatch_ready_batch(&mut self) {
        self.scheduler.take_ready(&mut self.scratch);
        self.events_processed += self.executor.dispatch_batch(
            &mut self.scratch,
            self.scheduler.now(),
            &mut self.scheduler,
            &mut self.trace,
        );
        if !self.scratch.is_empty() {
            self.scheduler.put_back_ready(&mut self.scratch);
        }
    }
}

impl<M: 'static> Runtime<M> for Simulation<M> {
    fn now(&self) -> SimTime {
        Simulation::now(self)
    }

    fn events_processed(&self) -> u64 {
        Simulation::events_processed(self)
    }

    fn step(&mut self) -> bool {
        Simulation::step(self)
    }

    fn run(&mut self) -> u64 {
        Simulation::run(self)
    }

    fn run_until(&mut self, deadline: SimTime) -> u64 {
        Simulation::run_until(self, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping,
        Pong,
        Tick,
    }

    struct Pinger {
        peer: Option<ActorId>,
        sent: u32,
        limit: u32,
    }

    impl Actor<Msg> for Pinger {
        fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Pong | Msg::Tick => {
                    if self.sent < self.limit {
                        self.sent += 1;
                        ctx.schedule(SimDuration::from_millis(10), self.peer.unwrap(), Msg::Ping);
                    } else {
                        ctx.stop();
                    }
                }
                Msg::Ping => {}
            }
        }
    }

    struct Ponger {
        received: u32,
    }

    impl Actor<Msg> for Ponger {
        fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if msg == Msg::Ping {
                self.received += 1;
                ctx.trace("pong", format!("ping #{}", self.received));
                ctx.send(ActorId::from_index(0), Msg::Pong);
            }
        }
    }

    fn build() -> (Simulation<Msg>, ActorId, ActorId) {
        let mut sim = Simulation::new(1);
        let pinger = sim.add_actor("pinger", Pinger { peer: None, sent: 0, limit: 5 });
        let ponger = sim.add_actor("ponger", Ponger { received: 0 });
        sim.actor_as_mut::<Pinger>(pinger).unwrap().peer = Some(ponger);
        sim.schedule(SimTime::ZERO, pinger, Msg::Tick);
        (sim, pinger, ponger)
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let (mut sim, pinger, ponger) = build();
        sim.run();
        assert_eq!(sim.actor_as::<Pinger>(pinger).unwrap().sent, 5);
        assert_eq!(sim.actor_as::<Ponger>(ponger).unwrap().received, 5);
        assert!(sim.is_stopped());
        // 5 round trips of 10 ms each.
        assert_eq!(sim.now(), SimTime::from_millis(50));
        assert_eq!(sim.trace().by_category("pong").count(), 5);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let (mut sim, _, ponger) = build();
        sim.run_until(SimTime::from_millis(25));
        assert_eq!(sim.actor_as::<Ponger>(ponger).unwrap().received, 2);
        assert_eq!(sim.now(), SimTime::from_millis(25));
        // Remaining events still pending.
        assert!(sim.pending_events() > 0);
        sim.run();
        assert_eq!(sim.actor_as::<Ponger>(ponger).unwrap().received, 5);
    }

    #[test]
    fn fifo_order_at_equal_timestamps() {
        struct Recorder {
            seen: Vec<u32>,
        }
        impl Actor<u32> for Recorder {
            fn handle(&mut self, msg: u32, _ctx: &mut Context<'_, u32>) {
                self.seen.push(msg);
            }
        }
        let mut sim = Simulation::new(0);
        let r = sim.add_actor("rec", Recorder { seen: vec![] });
        for i in 0..10 {
            sim.schedule(SimTime::from_secs(1), r, i);
        }
        sim.run();
        assert_eq!(sim.actor_as::<Recorder>(r).unwrap().seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_cascade_preserves_fifo_across_batch() {
        // A forwarder that re-sends each message to a sink at the *same*
        // instant: forwarded copies must land after every pre-queued
        // event for that instant, in original order.
        struct Forwarder {
            sink: ActorId,
        }
        impl Actor<u32> for Forwarder {
            fn handle(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                ctx.send(self.sink, msg + 100);
            }
        }
        struct Sink {
            seen: Vec<u32>,
        }
        impl Actor<u32> for Sink {
            fn handle(&mut self, msg: u32, _ctx: &mut Context<'_, u32>) {
                self.seen.push(msg);
            }
        }
        let mut sim = Simulation::new(0);
        let sink = sim.add_actor("sink", Sink { seen: vec![] });
        let fwd = sim.add_actor("fwd", Forwarder { sink });
        sim.schedule(SimTime::from_secs(1), fwd, 1);
        sim.schedule(SimTime::from_secs(1), sink, 2);
        sim.schedule(SimTime::from_secs(1), fwd, 3);
        sim.run();
        assert_eq!(sim.actor_as::<Sink>(sink).unwrap().seen, vec![2, 101, 103]);
    }

    #[test]
    fn determinism_across_runs() {
        let trace_a: Vec<String> = {
            let (mut sim, _, _) = build();
            sim.run();
            sim.trace().records().map(|r| r.to_string()).collect()
        };
        let trace_b: Vec<String> = {
            let (mut sim, _, _) = build();
            sim.run();
            sim.trace().records().map(|r| r.to_string()).collect()
        };
        assert_eq!(trace_a, trace_b);
    }

    #[test]
    fn rng_streams_depend_on_name_not_order() {
        use rand::Rng;
        struct Roller {
            value: u64,
        }
        impl Actor<()> for Roller {
            fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
                self.value = ctx.rng().gen();
            }
        }

        let roll = |names: &[&str], pick: &str| -> u64 {
            let mut sim = Simulation::new(7);
            let mut picked = None;
            for n in names {
                let id = sim.add_actor(n, Roller { value: 0 });
                if n == &pick {
                    picked = Some(id);
                }
            }
            let id = picked.unwrap();
            sim.schedule(SimTime::ZERO, id, ());
            sim.run();
            sim.actor_as::<Roller>(id).unwrap().value
        };

        let a = roll(&["x", "y"], "y");
        let b = roll(&["y", "x"], "y"); // registered first this time
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        struct Echo {
            at: Option<SimTime>,
        }
        impl Actor<u8> for Echo {
            fn handle(&mut self, msg: u8, ctx: &mut Context<'_, u8>) {
                if msg == 0 {
                    // Try to schedule "yesterday"; must arrive now, not panic.
                    ctx.schedule_at(SimTime::ZERO, ctx.self_id(), 1);
                } else {
                    self.at = Some(ctx.now());
                }
            }
        }
        let mut sim = Simulation::new(0);
        let e = sim.add_actor("echo", Echo { at: None });
        sim.schedule(SimTime::from_secs(5), e, 0);
        sim.run();
        assert_eq!(sim.actor_as::<Echo>(e).unwrap().at, Some(SimTime::from_secs(5)));
    }

    #[test]
    fn actor_as_wrong_type_is_none() {
        let (sim, pinger, _) = build();
        assert!(sim.actor_as::<Ponger>(pinger).is_none());
        assert!(sim.actor_as::<Pinger>(ActorId::from_index(99)).is_none());
    }

    #[test]
    fn runtime_trait_object_drives_the_sim() {
        let (mut sim, _, ponger) = build();
        {
            let rt: &mut dyn Runtime<Msg> = &mut sim;
            rt.run_until(SimTime::from_millis(25));
            assert_eq!(rt.now(), SimTime::from_millis(25));
            assert!(rt.events_processed() > 0);
        }
        assert_eq!(sim.actor_as::<Ponger>(ponger).unwrap().received, 2);
    }
}
