//! # mcps-runtime — execution substrate for the `mcps` workspace
//!
//! The lowest layer of the workspace: a deterministic discrete-event
//! kernel split into its two halves, a telemetry bus, and a
//! shard-parallel runner. Domain crates (`mcps-sim` and everything
//! above it) build on these primitives.
//!
//! * [`scheduler`] — hierarchical timer wheel with O(1) scheduling and
//!   dispatch, FIFO tie-breaking within an instant, and a ready ring
//!   for batched same-instant delivery (the binary-heap engine it
//!   replaced survives as [`scheduler::reference`], the lockstep
//!   conformance oracle).
//! * [`executor`] — actor slab, per-actor deterministic RNG streams,
//!   message dispatch ([`executor::Context`]).
//! * [`kernel`] — [`kernel::Simulation`] joins the two behind the
//!   classic API; [`kernel::Runtime`] is the trait drivers program
//!   against.
//! * [`telemetry`] — counters, histograms, time series and run
//!   manifests; the single sink for run statistics, mergeable across
//!   shards.
//! * [`shard`] — [`shard::run_shards`] and [`shard::run_shards_with`],
//!   a deterministic parallel map (optionally with per-worker reusable
//!   state) whose merged output is byte-identical to a serial run.
//! * [`time`], [`rng`], [`trace`], [`actor`] — the supporting
//!   vocabulary types.
//!
//! ## Example
//!
//! ```
//! use mcps_runtime::prelude::*;
//!
//! struct Heartbeat { beats: u32 }
//!
//! impl Actor<()> for Heartbeat {
//!     fn handle(&mut self, _msg: (), ctx: &mut Context<'_, ()>) {
//!         self.beats += 1;
//!         ctx.schedule_self(SimDuration::from_secs(1), ());
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let hb = sim.add_actor("heartbeat", Heartbeat { beats: 0 });
//! sim.schedule(SimTime::ZERO, hb, ());
//! sim.run_until(SimTime::from_secs(10));
//! assert_eq!(sim.actor_as::<Heartbeat>(hb).unwrap().beats, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod executor;
pub mod kernel;
pub mod rng;
pub mod scheduler;
pub mod shard;
pub mod telemetry;
pub mod time;
pub mod trace;

/// Convenient glob-import of the runtime's everyday names.
pub mod prelude {
    pub use crate::actor::{Actor, ActorId};
    pub use crate::kernel::{Context, Runtime, Simulation};
    pub use crate::rng::{RngFactory, SimRng};
    pub use crate::shard::{
        run_shards, run_shards_costed, run_shards_costed_in, run_shards_with, ShardStats,
    };
    pub use crate::telemetry::{Summary, Telemetry};
    pub use crate::time::{SimDuration, SimTime};
}

pub use actor::{Actor, ActorId};
pub use kernel::{Context, Runtime, Simulation};
pub use telemetry::Telemetry;
pub use time::{SimDuration, SimTime};
