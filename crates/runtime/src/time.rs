//! Simulation time types.
//!
//! All simulation time is measured in integer **microseconds** from the
//! start of the simulation. Integer time keeps the kernel deterministic
//! (no floating-point drift in event ordering) while being fine enough to
//! express network jitter and device sampling offsets.
//!
//! Two newtypes are provided ([C-NEWTYPE]):
//! * [`SimTime`] — an absolute instant.
//! * [`SimDuration`] — a span between instants.
//!
//! ```
//! use mcps_runtime::time::{SimTime, SimDuration};
//!
//! let t = SimTime::ZERO + SimDuration::from_secs(2);
//! assert_eq!(t + SimDuration::from_millis(500), SimTime::from_millis(2500));
//! assert_eq!(t - SimTime::from_secs(1), SimDuration::from_secs(1));
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation instant, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// This instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// This duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a floating factor, rounding; factors ≤ 0 give zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000;
        let (h, rem) = (total_ms / 3_600_000, total_ms % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let (s, ms) = (rem / 1_000, rem % 1_000);
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else if self.0 < 60_000_000 {
            write!(f, "{:.2}s", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.1}min", self.0 as f64 / 6e7)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_micros(1_000_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.1), SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_723_004).to_string(), "01:02:03.004");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.5ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.50s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.5min");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
